//! Basic-block-vector phase detection (Sherwood et al.).
//!
//! Each interval is fingerprinted by a fixed-dimension vector of basic
//! block execution weights: every sample is attributed to the basic block
//! containing its PC, and the block (identified by its start address) is
//! hashed into one of `dims` buckets. The vector is normalized to sum to
//! 1 and compared against the previous stable fingerprint with Manhattan
//! (L1) distance, which ranges over `[0, 2]`. Distance below the
//! threshold means "same phase"; a small hysteresis state machine
//! mirrors the one used for the centroid detector so stable-time numbers
//! are comparable.

use regmon_binary::{Binary, BlockId, ProcId};
use regmon_gpd::PhaseStats;
use regmon_sampling::PcSample;

/// Configuration of the BBV detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BbvConfig {
    /// Fingerprint dimensionality (Sherwood's hardware proposal used a
    /// small accumulator table; 32 buckets is the common software
    /// setting).
    pub dims: usize,
    /// Manhattan distance (in `[0, 2]`) at or above which two
    /// fingerprints are considered different phases.
    pub threshold: f64,
    /// Consecutive similar intervals required before the phase counts as
    /// stable.
    pub stable_timer: usize,
}

impl Default for BbvConfig {
    fn default() -> Self {
        Self {
            dims: 32,
            threshold: 0.5,
            stable_timer: 2,
        }
    }
}

/// What one interval looked like to the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BbvObservation {
    /// Manhattan distance to the previous interval's fingerprint
    /// (0 for the first interval).
    pub distance: f64,
    /// `true` when the phase is stable after this interval.
    pub stable: bool,
    /// `true` when stability flipped this interval.
    pub phase_changed: bool,
}

/// The basic-block-vector detector.
#[derive(Debug, Clone)]
pub struct BbvDetector {
    config: BbvConfig,
    prev: Option<Vec<f64>>,
    current: Vec<f64>,
    streak: usize,
    stable: bool,
    stats: PhaseStats,
}

impl BbvDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(config: BbvConfig) -> Self {
        assert!(config.dims > 0, "fingerprint needs at least one bucket");
        Self {
            config,
            prev: None,
            current: vec![0.0; config.dims],
            streak: 0,
            stable: false,
            stats: PhaseStats::default(),
        }
    }

    /// `true` while the detector considers the phase stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> PhaseStats {
        self.stats
    }

    /// Fingerprints one interval and updates the phase state.
    ///
    /// Returns `None` for an empty interval.
    pub fn observe(&mut self, binary: &Binary, samples: &[PcSample]) -> Option<BbvObservation> {
        if samples.is_empty() {
            return None;
        }
        self.current.fill(0.0);
        let mut total = 0.0;
        for s in samples {
            let Some(proc) = binary.procedure_at(s.addr) else {
                continue;
            };
            let Some(block) = proc.block_at(s.addr) else {
                continue;
            };
            let bucket = bucket_of(proc.id(), block.id(), self.config.dims);
            self.current[bucket] += 1.0;
            total += 1.0;
        }
        if total == 0.0 {
            return None; // every sample outside the image
        }
        for v in &mut self.current {
            *v /= total;
        }

        let distance = match &self.prev {
            Some(prev) => manhattan(prev, &self.current),
            None => 0.0,
        };
        let similar = self.prev.is_some() && distance < self.config.threshold;

        let was_stable = self.stable;
        if similar {
            self.streak += 1;
            if self.streak >= self.config.stable_timer {
                self.stable = true;
            }
        } else {
            self.streak = 0;
            self.stable = false;
        }

        // The fingerprint history: always compare to the latest interval
        // (Sherwood compares consecutive signatures).
        match &mut self.prev {
            Some(prev) => prev.copy_from_slice(&self.current),
            None => self.prev = Some(self.current.clone()),
        }

        let phase_changed = was_stable != self.stable;
        self.stats.intervals += 1;
        if self.stable {
            self.stats.stable_intervals += 1;
        }
        if phase_changed {
            self.stats.phase_changes += 1;
        }
        Some(BbvObservation {
            distance,
            stable: self.stable,
            phase_changed,
        })
    }
}

/// Deterministic bucket for a block (SplitMix64 of proc/block ids).
fn bucket_of(proc: ProcId, block: BlockId, dims: usize) -> usize {
    let mut z = (proc.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(block.0 as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % dims as u64) as usize
}

/// L1 distance between two normalized vectors (range `[0, 2]`).
fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::{Addr, BinaryBuilder};

    fn binary() -> Binary {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.loop_(|l| {
                l.straight(15);
            });
        });
        b.procedure("g", |p| {
            p.loop_(|l| {
                l.straight(15);
            });
        });
        b.build(Addr::new(0x1000))
    }

    fn samples_in(bin: &Binary, proc: &str, n: u64) -> Vec<PcSample> {
        let r = bin.procedure_by_name(proc).unwrap().loops()[0].range();
        (0..n)
            .map(|k| PcSample {
                addr: r.start() + (k % (r.len() / 4)) * 4,
                cycle: k,
            })
            .collect()
    }

    #[test]
    fn identical_intervals_stabilize() {
        let bin = binary();
        let mut det = BbvDetector::new(BbvConfig::default());
        let s = samples_in(&bin, "f", 256);
        for _ in 0..3 {
            det.observe(&bin, &s);
        }
        assert!(det.is_stable());
        assert_eq!(det.stats().phase_changes, 1); // entering stable
    }

    #[test]
    fn working_set_change_is_detected() {
        let bin = binary();
        let mut det = BbvDetector::new(BbvConfig::default());
        let f = samples_in(&bin, "f", 256);
        let g = samples_in(&bin, "g", 256);
        for _ in 0..3 {
            det.observe(&bin, &f);
        }
        let obs = det.observe(&bin, &g).unwrap();
        assert!(obs.distance > 0.5, "distance {}", obs.distance);
        assert!(obs.phase_changed);
        assert!(!det.is_stable());
    }

    #[test]
    fn uniform_scaling_is_not_a_change() {
        let bin = binary();
        let mut det = BbvDetector::new(BbvConfig::default());
        for _ in 0..3 {
            det.observe(&bin, &samples_in(&bin, "f", 256));
        }
        // Same distribution, different total count.
        let obs = det.observe(&bin, &samples_in(&bin, "f", 1024)).unwrap();
        assert!(!obs.phase_changed);
        assert!(obs.distance < 0.1, "distance {}", obs.distance);
    }

    #[test]
    fn empty_interval_returns_none() {
        let bin = binary();
        let mut det = BbvDetector::new(BbvConfig::default());
        assert!(det.observe(&bin, &[]).is_none());
        let stray = vec![PcSample {
            addr: Addr::new(0x9999_0000),
            cycle: 0,
        }];
        assert!(det.observe(&bin, &stray).is_none());
        assert_eq!(det.stats().intervals, 0);
    }

    #[test]
    fn alternating_working_sets_thrash() {
        // The global blind spot the paper targets: a program merely
        // ping-ponging between sets looks permanently unstable.
        let bin = binary();
        let mut det = BbvDetector::new(BbvConfig::default());
        let f = samples_in(&bin, "f", 256);
        let g = samples_in(&bin, "g", 256);
        for i in 0..32 {
            let s = if (i / 4) % 2 == 0 { &f } else { &g };
            det.observe(&bin, s);
        }
        assert!(det.stats().stable_fraction() < 0.8);
        assert!(det.stats().phase_changes >= 4);
    }

    #[test]
    fn bucket_is_deterministic_and_in_range() {
        for p in 0..8 {
            for b in 0..64 {
                let x = bucket_of(ProcId(p), BlockId(b), 32);
                assert!(x < 32);
                assert_eq!(x, bucket_of(ProcId(p), BlockId(b), 32));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_dims_panics() {
        let _ = BbvDetector::new(BbvConfig {
            dims: 0,
            ..BbvConfig::default()
        });
    }
}
