//! Related-work global phase detectors, for comparison.
//!
//! The paper's §4 discusses two influential alternatives to the centroid
//! scheme, both *global* (one verdict for the whole program per
//! interval):
//!
//! * **Basic-block vectors** (Sherwood et al., PACT'01 / ASPLOS'02 /
//!   ISCA'03): fingerprint each interval by the execution frequencies of
//!   its basic blocks, hashed into a fixed-size vector; compare
//!   consecutive fingerprints with Manhattan distance. Implemented in
//!   [`bbv`].
//! * **Working-set signatures** (Dhodapkar & Smith, ISCA'02 / MICRO'03):
//!   fingerprint each interval by the *set* of blocks touched (a hashed
//!   bit signature, no frequencies); compare with relative signature
//!   distance (Jaccard). Implemented in [`wss`].
//!
//! Both consume the same PC-sample buffers as the centroid detector, so
//! the three global schemes and per-region local detection can be swept
//! side by side (`ext_baselines` binary in `regmon-bench`). As the paper
//! notes, these schemes detect *working-set* changes well — and, being
//! global, they inherit the same blind spot the paper diagnoses in the
//! centroid scheme: a program that merely oscillates between two region
//! sets looks like it changes phase constantly even though no region's
//! behaviour changed.
//!
//! # Example
//!
//! ```
//! use regmon_baselines::{BbvConfig, BbvDetector};
//! use regmon_sampling::PcSample;
//! use regmon_binary::{Addr, BinaryBuilder};
//!
//! let mut b = BinaryBuilder::new("toy");
//! b.procedure("f", |p| { p.loop_(|l| { l.straight(9); }); });
//! let bin = b.build(Addr::new(0x1000));
//!
//! let mut det = BbvDetector::new(BbvConfig::default());
//! let samples: Vec<PcSample> = (0..256)
//!     .map(|k| PcSample { addr: Addr::new(0x1000 + (k % 10) * 4), cycle: k })
//!     .collect();
//! for _ in 0..4 {
//!     det.observe(&bin, &samples);
//! }
//! assert!(det.is_stable()); // identical fingerprints every interval
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bbv;
pub mod predictor;
pub mod wss;

pub use bbv::{BbvConfig, BbvDetector, BbvObservation};
pub use predictor::{PhaseClassifier, PhaseId, PhasePredictor, PredictionStats};
pub use wss::{WssConfig, WssDetector, WssObservation};

/// Re-export: all global schemes share the same stats shape.
pub use regmon_gpd::PhaseStats;
