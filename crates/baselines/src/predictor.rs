//! Phase classification and prediction (Sherwood et al., ISCA'03).
//!
//! The paper's related work (§4) covers Sherwood's *phase tracking and
//! prediction*: intervals are classified into recurring phase ids by
//! matching their fingerprints against a table of known phases, and a
//! Markov predictor guesses the next interval's phase — letting a runtime
//! optimizer prepare for a phase *before* it arrives (e.g. the paper's
//! footnote about prefetching the next phase's instructions).
//!
//! [`PhaseClassifier`] assigns ids by nearest-fingerprint match (new
//! phases allocate new ids); [`PhasePredictor`] layers a last-transition
//! Markov table on top.

use regmon_binary::Binary;
use regmon_sampling::PcSample;

/// Identifier of a recurring phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaseId(pub usize);

/// Classifies intervals into recurring phases by basic-block-vector
/// fingerprint proximity.
#[derive(Debug, Clone)]
pub struct PhaseClassifier {
    /// Match threshold: Manhattan distance (in `[0, 2]`) below which an
    /// interval belongs to an existing phase.
    threshold: f64,
    /// One representative fingerprint per known phase.
    leaders: Vec<Vec<f64>>,
    scratch: Vec<f64>,
}

impl PhaseClassifier {
    /// Creates a classifier with `dims`-bucket fingerprints and the given
    /// match threshold.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `threshold` is not in `(0, 2]`.
    #[must_use]
    pub fn new(dims: usize, threshold: f64) -> Self {
        assert!(dims > 0, "fingerprint needs at least one bucket");
        assert!(
            threshold > 0.0 && threshold <= 2.0,
            "threshold must be in (0, 2]"
        );
        Self {
            threshold,
            leaders: Vec::new(),
            scratch: vec![0.0; dims],
        }
    }

    /// Number of distinct phases seen so far.
    #[must_use]
    pub fn phases(&self) -> usize {
        self.leaders.len()
    }

    /// Classifies one interval; allocates a new phase id when nothing in
    /// the table is close enough. Returns `None` for an interval with no
    /// attributable samples.
    pub fn classify(&mut self, binary: &Binary, samples: &[PcSample]) -> Option<PhaseId> {
        fingerprint(binary, samples, &mut self.scratch)?;
        let mut best: Option<(usize, f64)> = None;
        for (i, leader) in self.leaders.iter().enumerate() {
            let d: f64 = leader
                .iter()
                .zip(&self.scratch)
                .map(|(a, b)| (a - b).abs())
                .sum();
            if best.map_or(true, |(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, d)) if d < self.threshold => Some(PhaseId(i)),
            _ => {
                self.leaders.push(self.scratch.clone());
                Some(PhaseId(self.leaders.len() - 1))
            }
        }
    }
}

/// Builds a normalized block fingerprint into `out`; `None` when no
/// sample hits the image.
fn fingerprint(binary: &Binary, samples: &[PcSample], out: &mut [f64]) -> Option<()> {
    out.fill(0.0);
    let mut total = 0.0;
    for s in samples {
        let proc = binary.procedure_at(s.addr)?;
        let block = proc.block_at(s.addr)?;
        let mut z = (proc.id().0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(block.id().0 as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let bucket = ((z ^ (z >> 31)) % out.len() as u64) as usize;
        out[bucket] += 1.0;
        total += 1.0;
    }
    if total == 0.0 {
        return None;
    }
    for v in out.iter_mut() {
        *v /= total;
    }
    Some(())
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictionStats {
    /// Predictions made (intervals after the first).
    pub predictions: usize,
    /// Predictions that matched the observed next phase.
    pub correct: usize,
}

impl PredictionStats {
    /// Prediction accuracy in `[0, 1]` (0 before any prediction).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            return 0.0;
        }
        self.correct as f64 / self.predictions as f64
    }
}

/// Last-transition Markov predictor over phase ids.
///
/// Predicts that phase `a` is followed by whatever followed `a` last
/// time (defaulting to "same phase again" for unseen transitions — the
/// *last phase* predictor that Sherwood uses as the baseline).
#[derive(Debug, Clone, Default)]
pub struct PhasePredictor {
    transitions: std::collections::HashMap<PhaseId, PhaseId>,
    previous: Option<PhaseId>,
    pending: Option<PhaseId>,
    stats: PredictionStats,
}

impl PhasePredictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime accuracy statistics.
    #[must_use]
    pub fn stats(&self) -> PredictionStats {
        self.stats
    }

    /// Feeds the current interval's phase; returns the prediction for the
    /// *next* interval.
    pub fn observe(&mut self, phase: PhaseId) -> PhaseId {
        // Score the pending prediction.
        if let Some(predicted) = self.pending {
            self.stats.predictions += 1;
            if predicted == phase {
                self.stats.correct += 1;
            }
        }
        // Learn the transition.
        if let Some(prev) = self.previous {
            self.transitions.insert(prev, phase);
        }
        self.previous = Some(phase);
        let next = self.transitions.get(&phase).copied().unwrap_or(phase);
        self.pending = Some(next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::{Addr, BinaryBuilder};

    fn binary() -> Binary {
        let mut b = BinaryBuilder::new("t");
        for name in ["f", "g", "h"] {
            b.procedure(name, |p| {
                p.straight(3);
                p.loop_(|l| {
                    l.straight(15);
                });
                p.straight(2);
            });
        }
        b.build(Addr::new(0x1000))
    }

    /// Samples spread over the whole procedure so fingerprints cover
    /// several blocks (single-block fingerprints can collide in the
    /// hashed buckets).
    fn samples_in(bin: &Binary, proc: &str) -> Vec<PcSample> {
        let r = bin.procedure_by_name(proc).unwrap().range();
        (0..128u64)
            .map(|k| PcSample {
                addr: r.start() + (k % (r.len() / 4)) * 4,
                cycle: k,
            })
            .collect()
    }

    #[test]
    fn recurring_phases_reuse_ids() {
        let bin = binary();
        let mut c = PhaseClassifier::new(32, 0.5);
        let f = samples_in(&bin, "f");
        let g = samples_in(&bin, "g");
        let id_f1 = c.classify(&bin, &f).unwrap();
        let id_g = c.classify(&bin, &g).unwrap();
        let id_f2 = c.classify(&bin, &f).unwrap();
        assert_ne!(id_f1, id_g);
        assert_eq!(id_f1, id_f2, "recurring phase must reuse its id");
        assert_eq!(c.phases(), 2);
    }

    #[test]
    fn empty_interval_classifies_as_none() {
        let bin = binary();
        let mut c = PhaseClassifier::new(32, 0.5);
        assert!(c.classify(&bin, &[]).is_none());
    }

    #[test]
    fn markov_predictor_learns_alternation() {
        let bin = binary();
        let mut c = PhaseClassifier::new(32, 0.5);
        let mut p = PhasePredictor::new();
        let f = samples_in(&bin, "f");
        let g = samples_in(&bin, "g");
        // Strict alternation f, g, f, g, ...
        for i in 0..32 {
            let s = if i % 2 == 0 { &f } else { &g };
            let id = c.classify(&bin, s).unwrap();
            p.observe(id);
        }
        // After warm-up the alternation is fully predictable.
        let acc = p.stats().accuracy();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn last_phase_fallback_predicts_steady_streams_perfectly() {
        let bin = binary();
        let mut c = PhaseClassifier::new(32, 0.5);
        let mut p = PhasePredictor::new();
        let f = samples_in(&bin, "f");
        for _ in 0..16 {
            let id = c.classify(&bin, &f).unwrap();
            p.observe(id);
        }
        assert_eq!(p.stats().accuracy(), 1.0);
    }

    #[test]
    fn three_phase_cycle_is_learned() {
        let bin = binary();
        let mut c = PhaseClassifier::new(32, 0.5);
        let mut p = PhasePredictor::new();
        let seqs = ["f", "g", "h"];
        for i in 0..60 {
            let s = samples_in(&bin, seqs[i % 3]);
            let id = c.classify(&bin, &s).unwrap();
            p.observe(id);
        }
        assert!(p.stats().accuracy() > 0.8);
        assert_eq!(c.phases(), 3);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let _ = PhaseClassifier::new(32, 0.0);
    }
}
