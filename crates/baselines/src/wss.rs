//! Working-set-signature phase detection (Dhodapkar & Smith).
//!
//! Each interval is fingerprinted by the *set* of basic blocks it touched
//! — a bit signature of `bits` positions, one hash per touched block —
//! with no frequency information (the key difference from basic-block
//! vectors, as the paper's related-work section notes). Consecutive
//! signatures are compared with the *relative signature distance*
//! `|A Δ B| / |A ∪ B|` (Jaccard distance); below the threshold means the
//! working set, and hence the phase, is unchanged.

use regmon_binary::{Binary, BlockId, ProcId};
use regmon_gpd::PhaseStats;
use regmon_sampling::PcSample;

/// Configuration of the working-set-signature detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WssConfig {
    /// Signature width in bits (Dhodapkar & Smith used 32–1024-bit
    /// signatures; 256 keeps hash collisions rare at our block counts).
    pub bits: usize,
    /// Relative signature distance (in `[0, 1]`) at or above which the
    /// working set counts as changed.
    pub threshold: f64,
    /// Consecutive similar intervals required before the phase counts as
    /// stable.
    pub stable_timer: usize,
}

impl Default for WssConfig {
    fn default() -> Self {
        Self {
            bits: 256,
            threshold: 0.5,
            stable_timer: 2,
        }
    }
}

/// What one interval looked like to the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WssObservation {
    /// Relative signature distance to the previous interval (0 for the
    /// first).
    pub distance: f64,
    /// `true` when the phase is stable after this interval.
    pub stable: bool,
    /// `true` when stability flipped this interval.
    pub phase_changed: bool,
}

/// The working-set-signature detector.
#[derive(Debug, Clone)]
pub struct WssDetector {
    config: WssConfig,
    prev: Option<Vec<u64>>,
    current: Vec<u64>,
    streak: usize,
    stable: bool,
    stats: PhaseStats,
}

impl WssDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    #[must_use]
    pub fn new(config: WssConfig) -> Self {
        assert!(config.bits > 0, "signature needs at least one bit");
        Self {
            config,
            prev: None,
            current: vec![0; config.bits.div_ceil(64)],
            streak: 0,
            stable: false,
            stats: PhaseStats::default(),
        }
    }

    /// `true` while the detector considers the phase stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> PhaseStats {
        self.stats
    }

    /// Fingerprints one interval and updates the phase state.
    ///
    /// Returns `None` for an empty interval (or one whose samples all
    /// miss the program image).
    pub fn observe(&mut self, binary: &Binary, samples: &[PcSample]) -> Option<WssObservation> {
        if samples.is_empty() {
            return None;
        }
        self.current.fill(0);
        let mut touched = false;
        for s in samples {
            let Some(proc) = binary.procedure_at(s.addr) else {
                continue;
            };
            let Some(block) = proc.block_at(s.addr) else {
                continue;
            };
            let bit = bit_of(proc.id(), block.id(), self.config.bits);
            self.current[bit / 64] |= 1u64 << (bit % 64);
            touched = true;
        }
        if !touched {
            return None;
        }

        let distance = match &self.prev {
            Some(prev) => relative_distance(prev, &self.current),
            None => 0.0,
        };
        let similar = self.prev.is_some() && distance < self.config.threshold;

        let was_stable = self.stable;
        if similar {
            self.streak += 1;
            if self.streak >= self.config.stable_timer {
                self.stable = true;
            }
        } else {
            self.streak = 0;
            self.stable = false;
        }

        match &mut self.prev {
            Some(prev) => prev.copy_from_slice(&self.current),
            None => self.prev = Some(self.current.clone()),
        }

        let phase_changed = was_stable != self.stable;
        self.stats.intervals += 1;
        if self.stable {
            self.stats.stable_intervals += 1;
        }
        if phase_changed {
            self.stats.phase_changes += 1;
        }
        Some(WssObservation {
            distance,
            stable: self.stable,
            phase_changed,
        })
    }
}

/// Deterministic bit position for a block.
fn bit_of(proc: ProcId, block: BlockId, bits: usize) -> usize {
    let mut z = (proc.0 as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(block.0 as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % bits as u64) as usize
}

/// Relative signature distance `|A Δ B| / |A ∪ B|` (0 when both empty).
fn relative_distance(a: &[u64], b: &[u64]) -> f64 {
    let mut sym = 0u32;
    let mut union = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        sym += (x ^ y).count_ones();
        union += (x | y).count_ones();
    }
    if union == 0 {
        return 0.0;
    }
    f64::from(sym) / f64::from(union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::{Addr, BinaryBuilder};

    fn binary() -> Binary {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.loop_(|l| {
                l.straight(15);
            });
        });
        b.procedure("g", |p| {
            p.loop_(|l| {
                l.straight(15);
            });
        });
        b.build(Addr::new(0x1000))
    }

    fn samples_in(bin: &Binary, proc: &str, n: u64) -> Vec<PcSample> {
        let r = bin.procedure_by_name(proc).unwrap().loops()[0].range();
        (0..n)
            .map(|k| PcSample {
                addr: r.start() + (k % (r.len() / 4)) * 4,
                cycle: k,
            })
            .collect()
    }

    #[test]
    fn identical_working_sets_stabilize() {
        let bin = binary();
        let mut det = WssDetector::new(WssConfig::default());
        let s = samples_in(&bin, "f", 128);
        for _ in 0..3 {
            det.observe(&bin, &s);
        }
        assert!(det.is_stable());
    }

    #[test]
    fn frequency_changes_are_invisible_to_wss() {
        // The defining property vs BBV: only *membership* matters. Shift
        // most samples to one block of the same loop: same working set.
        let bin = binary();
        let mut det = WssDetector::new(WssConfig::default());
        let r = bin.procedure_by_name("f").unwrap().loops()[0].range();
        let uniform = samples_in(&bin, "f", 128);
        // 90% on the first instruction but still touching every block.
        let skewed: Vec<PcSample> = (0..128u64)
            .map(|k| PcSample {
                addr: if k % 10 == 0 {
                    r.start() + (k % (r.len() / 4)) * 4
                } else {
                    r.start()
                },
                cycle: k,
            })
            .collect();
        for _ in 0..3 {
            det.observe(&bin, &uniform);
        }
        let obs = det.observe(&bin, &skewed).unwrap();
        assert!(!obs.phase_changed, "distance {}", obs.distance);
    }

    #[test]
    fn working_set_change_is_detected() {
        let bin = binary();
        let mut det = WssDetector::new(WssConfig::default());
        for _ in 0..3 {
            det.observe(&bin, &samples_in(&bin, "f", 128));
        }
        let obs = det.observe(&bin, &samples_in(&bin, "g", 128)).unwrap();
        assert!(obs.distance > 0.9, "distance {}", obs.distance);
        assert!(obs.phase_changed);
    }

    #[test]
    fn empty_or_stray_interval_is_ignored() {
        let bin = binary();
        let mut det = WssDetector::new(WssConfig::default());
        assert!(det.observe(&bin, &[]).is_none());
        let stray = vec![PcSample {
            addr: Addr::new(0x9999_0000),
            cycle: 0,
        }];
        assert!(det.observe(&bin, &stray).is_none());
    }

    #[test]
    fn distance_properties() {
        assert_eq!(relative_distance(&[0], &[0]), 0.0);
        assert_eq!(relative_distance(&[0b1010], &[0b1010]), 0.0);
        assert_eq!(relative_distance(&[0b1100], &[0b0011]), 1.0);
        let half = relative_distance(&[0b11], &[0b10]);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bit_positions_in_range() {
        for p in 0..4 {
            for b in 0..64 {
                assert!(bit_of(ProcId(p), BlockId(b), 256) < 256);
            }
        }
    }
}
