//! Criterion bench behind Figure 16, extended into the attribution
//! matrix: index kind (`list` / `tree` / `flat`) × region count ×
//! samples-per-interval × sample locality, all running the arena batch
//! path (`RegionMonitor::attribute`).
//!
//! `locality` distinguishes the two PC streams a PMU actually produces:
//! `random` jumps across the whole text segment every interrupt (worst
//! case for the last-hit cache), `local` walks loop bodies the way real
//! execution does — long runs of consecutive samples inside one region,
//! which the validity-window cache turns into O(1) lookups.
//!
//! `cargo run --release -p regmon-bench --bin attribution_matrix` emits
//! the same matrix as machine-readable JSON (plus the legacy per-sample
//! baseline) for the committed `BENCH_attribution.json` snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use regmon::regions::{IndexKind, RegionKind, RegionMonitor};
use regmon::sampling::PcSample;
use regmon_binary::{Addr, AddrRange};

const BASE: u64 = 0x10000;

/// A monitor with `n` disjoint 128-byte regions spaced 256 bytes apart.
fn monitor(n: usize, kind: IndexKind) -> RegionMonitor {
    let mut monitor = RegionMonitor::new(kind);
    for i in 0..n {
        let start = BASE + (i as u64) * 0x100;
        monitor.add_region(
            AddrRange::new(Addr::new(start), Addr::new(start + 0x80)),
            RegionKind::Loop { depth: 0 },
            0,
        );
    }
    monitor
}

/// `count` samples spread pseudo-randomly over the monitored span
/// (~50% land inside regions — every lookup misses the locality cache).
fn random_samples(n: usize, count: usize) -> Vec<PcSample> {
    let span = n as u64 * 0x100;
    (0..count as u64)
        .map(|k| {
            let x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) % span;
            PcSample {
                addr: Addr::new(BASE + (x & !3)),
                cycle: k,
            }
        })
        .collect()
}

/// `count` samples walking loop bodies: long consecutive runs inside one
/// region before hopping to the next, the way real PMU streams look.
fn local_samples(n: usize, count: usize) -> Vec<PcSample> {
    (0..count as u64)
        .map(|k| {
            let region = (k / 97) % n as u64; // ~97-sample dwell per region
            let offset = (k % 32) * 4; // walk the loop body
            PcSample {
                addr: Addr::new(BASE + region * 0x100 + offset),
                cycle: k,
            }
        })
        .collect()
}

fn bench_attribution(c: &mut Criterion) {
    let kinds = [
        ("list", IndexKind::Linear),
        ("tree", IndexKind::IntervalTree),
        ("flat", IndexKind::FlatSorted),
    ];
    for (locality, gen) in [
        (
            "random",
            random_samples as fn(usize, usize) -> Vec<PcSample>,
        ),
        ("local", local_samples as fn(usize, usize) -> Vec<PcSample>),
    ] {
        for &count in &[508usize, 2032] {
            let mut group = c.benchmark_group(format!("attribution/{locality}/{count}"));
            group.throughput(Throughput::Elements(count as u64));
            for &n in &[4usize, 16, 64, 256] {
                let samples = gen(n, count);
                for (label, kind) in kinds {
                    let mut monitor = monitor(n, kind);
                    group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                        b.iter(|| {
                            monitor.attribute(black_box(&samples));
                            black_box(monitor.report().total_samples())
                        });
                    });
                }
            }
            group.finish();
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_attribution
}
criterion_main!(benches);
