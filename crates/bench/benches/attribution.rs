//! Criterion bench behind Figure 16: sample attribution with the O(n)
//! list vs the O(log n + k) interval tree, as the region count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use regmon::regions::{IndexKind, RegionKind, RegionMonitor};
use regmon::sampling::PcSample;
use regmon_binary::{Addr, AddrRange};

/// Builds a monitor with `n` disjoint 128-byte regions and a sample
/// stream spread over them (plus 20% UCR misses).
fn setup(n: usize, kind: IndexKind) -> (RegionMonitor, Vec<PcSample>) {
    let mut monitor = RegionMonitor::new(kind);
    let base = 0x10000u64;
    for i in 0..n {
        let start = base + (i as u64) * 0x100;
        monitor.add_region(
            AddrRange::new(Addr::new(start), Addr::new(start + 0x80)),
            RegionKind::Loop { depth: 0 },
            0,
        );
    }
    let span = n as u64 * 0x100;
    let samples: Vec<PcSample> = (0..2032u64)
        .map(|k| {
            // Deterministic pseudo-random spread; ~50% land inside regions.
            let x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) % span;
            PcSample {
                addr: Addr::new(base + (x & !3)),
                cycle: k,
            }
        })
        .collect();
    (monitor, samples)
}

fn bench_attribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("attribution");
    for &n in &[4usize, 16, 64, 256] {
        group.throughput(Throughput::Elements(2032));
        for (label, kind) in [
            ("list", IndexKind::Linear),
            ("tree", IndexKind::IntervalTree),
        ] {
            let (mut monitor, samples) = setup(n, kind);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(monitor.distribute(black_box(&samples))));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_attribution
}
criterion_main!(benches);
