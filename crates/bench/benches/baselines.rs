//! Criterion bench: per-interval cost of every global detector (centroid,
//! BBV, WSS, phase classifier) side by side.
//!
//! The centroid's selling point is cost: one mean per interval. The
//! fingerprint schemes pay a per-sample block lookup; this bench
//! quantifies the gap on a real suite interval.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use regmon::gpd::{CentroidDetector, GpdConfig};
use regmon::sampling::{Interval, Sampler, SamplingConfig};
use regmon::workload::suite;
use regmon_baselines::{BbvConfig, BbvDetector, PhaseClassifier, WssConfig, WssDetector};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_detectors");
    for name in ["172.mgrid", "186.crafty"] {
        let w = suite::by_name(name).expect("suite name");
        let config = SamplingConfig::new(45_000);
        let intervals: Vec<Interval> = Sampler::new(&w, config).take(16).collect();

        group.bench_with_input(BenchmarkId::new("centroid", name), name, |b, _| {
            let mut det = CentroidDetector::new(GpdConfig::default());
            let mut i = 0;
            b.iter(|| {
                let iv = &intervals[i % intervals.len()];
                i += 1;
                black_box(det.observe(black_box(&iv.samples)))
            });
        });

        group.bench_with_input(BenchmarkId::new("bbv", name), name, |b, _| {
            let mut det = BbvDetector::new(BbvConfig::default());
            let mut i = 0;
            b.iter(|| {
                let iv = &intervals[i % intervals.len()];
                i += 1;
                black_box(det.observe(w.binary(), black_box(&iv.samples)))
            });
        });

        group.bench_with_input(BenchmarkId::new("wss", name), name, |b, _| {
            let mut det = WssDetector::new(WssConfig::default());
            let mut i = 0;
            b.iter(|| {
                let iv = &intervals[i % intervals.len()];
                i += 1;
                black_box(det.observe(w.binary(), black_box(&iv.samples)))
            });
        });

        group.bench_with_input(BenchmarkId::new("classifier", name), name, |b, _| {
            let mut det = PhaseClassifier::new(64, 0.5);
            let mut i = 0;
            b.iter(|| {
                let iv = &intervals[i % intervals.len()];
                i += 1;
                black_box(det.classify(w.binary(), black_box(&iv.samples)))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_baselines
}
criterion_main!(benches);
