//! Criterion bench behind Figure 15: per-interval cost of the global
//! (centroid) detector vs full region monitoring (distribution + local
//! detection), on representative benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use regmon::gpd::{CentroidDetector, GpdConfig};
use regmon::lpd::{LpdConfig, LpdManager};
use regmon::regions::{FormationConfig, IndexKind, RegionFormation, RegionMonitor};
use regmon::sampling::{Interval, Sampler, SamplingConfig};
use regmon::workload::suite;

/// Pre-sampled intervals plus a warmed-up monitor for a benchmark.
fn setup(name: &str) -> (Vec<Interval>, RegionMonitor) {
    let w = suite::by_name(name).expect("suite name");
    let config = SamplingConfig::new(45_000);
    let intervals: Vec<Interval> = Sampler::new(&w, config).take(64).collect();
    let mut monitor = RegionMonitor::new(IndexKind::IntervalTree);
    let formation = RegionFormation::new(FormationConfig::default());
    for interval in &intervals {
        let report = monitor.distribute(&interval.samples);
        if formation.should_trigger(report.ucr_fraction()) {
            formation.form(
                w.binary(),
                report.unattributed_samples(),
                &mut monitor,
                interval.index,
            );
        }
    }
    (intervals, monitor)
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_interval_cost");
    for name in ["172.mgrid", "181.mcf", "186.crafty"] {
        let (intervals, mut monitor) = setup(name);

        group.bench_with_input(BenchmarkId::new("gpd_centroid", name), name, |b, _| {
            let mut gpd = CentroidDetector::new(GpdConfig::default());
            let mut i = 0;
            b.iter(|| {
                let interval = &intervals[i % intervals.len()];
                i += 1;
                black_box(gpd.observe(black_box(&interval.samples)))
            });
        });

        group.bench_with_input(BenchmarkId::new("region_monitoring", name), name, |b, _| {
            let mut lpd = LpdManager::new(LpdConfig::default());
            let mut i = 0;
            b.iter(|| {
                let interval = &intervals[i % intervals.len()];
                i += 1;
                let report = monitor.distribute(black_box(&interval.samples));
                black_box(lpd.observe_interval(&monitor, &report))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_detectors
}
criterion_main!(benches);
