//! Criterion bench of the multi-tenant fleet engine: full fleet runs at
//! several tenant/shard scales (throughput in intervals/sec), a shard
//! scaling sweep at fixed fleet size, and the queue-policy ablation
//! under a deliberately tiny queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use regmon::workload::suite;
use regmon::SessionConfig;
use regmon_fleet::{run_fleet, FleetConfig, Pacing, QueuePolicy, Schedule, TenantSpec};

const INTERVALS: usize = 12;

fn specs(tenants: usize) -> Vec<TenantSpec> {
    let names = suite::names();
    (0..tenants)
        .map(|i| {
            let name = names[i % names.len()];
            TenantSpec::new(
                format!("{name}#{i}"),
                suite::by_name(name).expect("suite name"),
                SessionConfig::new(45_000),
                INTERVALS,
            )
        })
        .collect()
}

fn bench_fleet(c: &mut Criterion) {
    // Fleet size scaling at 4 shards.
    let mut group = c.benchmark_group("fleet_scale");
    for tenants in [8usize, 32, 96] {
        let specs = specs(tenants);
        group.throughput(Throughput::Elements((tenants * INTERVALS) as u64));
        group.bench_with_input(BenchmarkId::new("tenants", tenants), &tenants, |b, _| {
            let config = FleetConfig::new(4, 16).with_policy(QueuePolicy::Block);
            b.iter(|| black_box(run_fleet(&config, black_box(&specs), &Schedule::new())));
        });
    }
    group.finish();

    // Shard scaling at a fixed 32-tenant fleet (freerun so the workers
    // genuinely overlap; lockstep pacing serialises rounds).
    let mut group = c.benchmark_group("fleet_shards");
    let fixed = specs(32);
    for shards in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((32 * INTERVALS) as u64));
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let config = FleetConfig::new(shards, 16)
                .with_policy(QueuePolicy::Block)
                .with_pacing(Pacing::Freerun);
            b.iter(|| black_box(run_fleet(&config, black_box(&fixed), &Schedule::new())));
        });
    }
    group.finish();

    // Ingestion fast path: batching factor sweep and the stealing
    // ablation on the freerun path (PR 3). Same fleet, same work; only
    // the transport changes.
    let mut group = c.benchmark_group("fleet_ingest");
    let fixed = specs(32);
    for batch in [1usize, 8, 32] {
        group.throughput(Throughput::Elements((32 * INTERVALS) as u64));
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            let config = FleetConfig::new(4, 16)
                .with_policy(QueuePolicy::Block)
                .with_pacing(Pacing::Freerun)
                .with_batch(batch);
            b.iter(|| black_box(run_fleet(&config, black_box(&fixed), &Schedule::new())));
        });
    }
    for steal in [false, true] {
        group.throughput(Throughput::Elements((32 * INTERVALS) as u64));
        group.bench_with_input(
            BenchmarkId::new("steal", usize::from(steal)),
            &steal,
            |b, &steal| {
                let config = FleetConfig::new(4, 16)
                    .with_policy(QueuePolicy::Block)
                    .with_pacing(Pacing::Freerun)
                    .with_batch(8)
                    .with_steal(steal);
                b.iter(|| black_box(run_fleet(&config, black_box(&fixed), &Schedule::new())));
            },
        );
    }
    group.finish();

    // Queue-policy ablation under a depth-1 queue: lossless blocking vs
    // lossy drop-oldest.
    let mut group = c.benchmark_group("fleet_queue_policy");
    let tiny = specs(16);
    for (label, policy) in [
        ("block", QueuePolicy::Block),
        ("drop_oldest", QueuePolicy::DropOldest),
    ] {
        group.bench_function(label, |b| {
            let config = FleetConfig::new(2, 1).with_policy(policy);
            b.iter(|| black_box(run_fleet(&config, black_box(&tiny), &Schedule::new())));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
