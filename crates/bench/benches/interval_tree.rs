//! Criterion micro-bench of the interval tree itself: insert, remove and
//! stabbing queries against the linear baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use regmon::regions::{IntervalTree, LinearIndex, RegionId, RegionIndex};
use regmon_binary::{Addr, AddrRange};

fn ranges(n: usize) -> Vec<(RegionId, AddrRange)> {
    (0..n)
        .map(|i| {
            let start = 0x1000 + (i as u64).wrapping_mul(0x9E37) % 0x40000;
            (
                RegionId(i as u64),
                AddrRange::new(
                    Addr::new(start),
                    Addr::new(start + 0x80 + (i as u64 % 7) * 0x20),
                ),
            )
        })
        .collect()
}

fn bench_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_tree");
    for &n in &[16usize, 128, 1024] {
        let items = ranges(n);

        group.bench_with_input(BenchmarkId::new("insert_remove_all", n), &n, |b, _| {
            b.iter(|| {
                let mut t = IntervalTree::new();
                for (id, r) in &items {
                    t.insert(*id, *r);
                }
                for (id, r) in &items {
                    black_box(t.remove(*id, *r));
                }
            });
        });

        let mut tree = IntervalTree::new();
        let mut list = LinearIndex::new();
        for (id, r) in &items {
            tree.insert(*id, *r);
            list.insert(*id, *r);
        }
        let probes: Vec<Addr> = (0..512u64)
            .map(|k| Addr::new(0x1000 + k.wrapping_mul(0x2545F491) % 0x41000))
            .collect();

        group.bench_with_input(BenchmarkId::new("stab512_tree", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                for &p in &probes {
                    out.clear();
                    tree.stab(p, &mut out);
                    black_box(&out);
                }
            });
        });

        group.bench_with_input(BenchmarkId::new("stab512_list", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                for &p in &probes {
                    out.clear();
                    list.stab(p, &mut out);
                    black_box(&out);
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tree_ops
}
criterion_main!(benches);
