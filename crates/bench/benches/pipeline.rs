//! Criterion bench of the whole pipeline: one sampling interval through
//! sampling + distribution + formation + both detectors, per benchmark
//! archetype (steady / switching / region-heavy / UCR-heavy), plus an
//! ablation of the adaptive-threshold extension on 188.ammp.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use regmon::lpd::ThresholdPolicy;
use regmon::sampling::{Interval, Sampler};
use regmon::workload::suite;
use regmon::{MonitoringSession, SessionConfig};

fn intervals_of(name: &str, n: usize) -> (regmon::workload::Workload, Vec<Interval>) {
    let w = suite::by_name(name).expect("suite name");
    let config = SessionConfig::new(45_000);
    let intervals = Sampler::new(&w, config.sampling).take(n).collect();
    (w, intervals)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_interval");
    for name in ["172.mgrid", "187.facerec", "176.gcc", "254.gap"] {
        let (w, intervals) = intervals_of(name, 48);
        group.bench_with_input(BenchmarkId::new("process", name), name, |b, _| {
            let config = SessionConfig::new(45_000);
            let mut session = MonitoringSession::new(config);
            session.attach_binary(&w);
            let mut i = 0;
            b.iter(|| {
                let interval = &intervals[i % intervals.len()];
                i += 1;
                black_box(session.process_interval(black_box(interval)))
            });
        });
    }
    group.finish();

    // Ablation: fixed vs adaptive threshold on the big-region benchmark.
    let mut group = c.benchmark_group("ammp_threshold_ablation");
    let (w, intervals) = intervals_of("188.ammp", 48);
    for (label, policy) in [
        ("fixed_rt", ThresholdPolicy::Fixed(0.8)),
        ("adaptive_rt", ThresholdPolicy::adaptive()),
    ] {
        group.bench_function(label, |b| {
            let mut config = SessionConfig::new(45_000);
            config.lpd.threshold = policy;
            let mut session = MonitoringSession::new(config);
            session.attach_binary(&w);
            let mut i = 0;
            b.iter(|| {
                let interval = &intervals[i % intervals.len()];
                i += 1;
                black_box(session.process_interval(black_box(interval)))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
}
criterion_main!(benches);
