//! Criterion bench for the paper's future-work question (§5): cheaper
//! similarity metrics than Pearson's coefficient of correlation.
//!
//! Compares Pearson against cosine, normalized-Manhattan and rank
//! correlation on histograms of the sizes real regions have.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use regmon::lpd::{Similarity, SimilarityKind};
use regmon::stats::CountHistogram;

fn histogram(slots: usize, seed: u64) -> CountHistogram {
    let counts: Vec<u64> = (0..slots)
        .map(|i| {
            let x = (i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56;
            // A peaked shape plus noise, like a real region histogram.
            let peak = slots / 3;
            let d = (i as i64 - peak as i64).unsigned_abs();
            (200 / (1 + d * d / 4)) + x % 8
        })
        .collect();
    CountHistogram::from_counts(counts)
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    for &slots in &[16usize, 64, 256] {
        let a = histogram(slots, 1);
        let b = histogram(slots, 2);
        for kind in [
            SimilarityKind::Pearson,
            SimilarityKind::Cosine,
            SimilarityKind::Manhattan,
            SimilarityKind::Rank,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), slots),
                &slots,
                |bench, _| {
                    bench.iter(|| black_box(kind.score(black_box(&a), black_box(&b))));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_similarity
}
criterion_main!(benches);
