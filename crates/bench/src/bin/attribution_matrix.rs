//! Emits the attribution-engine benchmark matrix as JSON.
//!
//! Cells: attribution path × index kind × region count × samples per
//! interval × sample locality, each measured as **median ns/sample**
//! over repeated full-interval attributions. Two paths are timed:
//!
//! * `legacy` — the seed's per-sample algorithm, reconstructed here
//!   exactly as `RegionMonitor::distribute` used to work: one `stab`
//!   call per sample and a *fresh* `BTreeMap<RegionId, CountHistogram>`
//!   allocated per interval. This is the baseline the ISSUE's ≥3×
//!   acceptance criterion is measured against.
//! * `batch` — today's engine: `stab_batch` with the validity-window
//!   locality cache feeding the monitor's epoch-reset arena.
//!
//! Usage: `attribution_matrix [OUTPUT.json]` (default
//! `BENCH_attribution.json` in the current directory). The `headline`
//! object compares legacy/tree against batch/flat at the reference cell
//! (64 regions, 2032-sample interval — one paper interval at the 45K
//! period) and is what CI's regression guard reads.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use regmon::regions::{IndexKind, RegionId, RegionIndex, RegionKind, RegionMonitor};
use regmon::sampling::PcSample;
use regmon_binary::{Addr, AddrRange, INST_BYTES};
use regmon_stats::{simd, CountHistogram, SimdLevel};

const BASE: u64 = 0x10000;
const REGION_COUNTS: [usize; 4] = [4, 16, 64, 256];
const SAMPLE_COUNTS: [usize; 2] = [508, 2032];
const HEADLINE_REGIONS: usize = 64;
const HEADLINE_SAMPLES: usize = 2032;

fn region_table(n: usize) -> Vec<AddrRange> {
    (0..n)
        .map(|i| {
            let start = BASE + (i as u64) * 0x100;
            AddrRange::new(Addr::new(start), Addr::new(start + 0x80))
        })
        .collect()
}

fn random_samples(n: usize, count: usize) -> Vec<PcSample> {
    let span = n as u64 * 0x100;
    (0..count as u64)
        .map(|k| {
            let x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) % span;
            PcSample {
                addr: Addr::new(BASE + (x & !3)),
                cycle: k,
            }
        })
        .collect()
}

fn local_samples(n: usize, count: usize) -> Vec<PcSample> {
    (0..count as u64)
        .map(|k| {
            let region = (k / 97) % n as u64;
            let offset = (k % 32) * 4;
            PcSample {
                addr: Addr::new(BASE + region * 0x100 + offset),
                cycle: k,
            }
        })
        .collect()
}

/// The seed's attribution loop, preserved for baseline measurement: a
/// per-sample stab and per-interval histogram map allocation.
struct LegacyDistributor {
    index: Box<dyn RegionIndex + Send + Sync>,
    meta: BTreeMap<RegionId, (u64, usize)>, // region id -> (start, slots)
}

impl LegacyDistributor {
    fn new(kind: IndexKind, regions: &[AddrRange]) -> Self {
        let mut index = kind.make();
        let mut meta = BTreeMap::new();
        for (i, r) in regions.iter().enumerate() {
            let id = RegionId(i as u64);
            index.insert(id, *r);
            meta.insert(id, (r.start().get(), (r.len() / INST_BYTES) as usize));
        }
        Self { index, meta }
    }

    fn distribute(
        &self,
        samples: &[PcSample],
    ) -> (BTreeMap<RegionId, CountHistogram>, Vec<PcSample>) {
        let mut histograms: BTreeMap<RegionId, CountHistogram> = BTreeMap::new();
        let mut unattributed = Vec::new();
        let mut hits = Vec::new();
        for sample in samples {
            hits.clear();
            self.index.stab(sample.addr, &mut hits);
            if hits.is_empty() {
                unattributed.push(*sample);
                continue;
            }
            for &id in &hits {
                let (start, slots) = self.meta[&id];
                let hist = histograms
                    .entry(id)
                    .or_insert_with(|| CountHistogram::new(slots));
                hist.record(((sample.addr.get() - start) / INST_BYTES) as usize);
            }
        }
        (histograms, unattributed)
    }
}

/// Median of `reps` timed runs of `f`, in ns per sample.
fn median_ns_per_sample<F: FnMut()>(samples: usize, reps: usize, mut f: F) -> f64 {
    // Warmup: populate arenas / caches / allocator pools.
    for _ in 0..3 {
        f();
    }
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64 / samples as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Cell {
    path: &'static str,
    index: &'static str,
    regions: usize,
    samples: usize,
    locality: &'static str,
    ns_per_sample: f64,
}

fn fmt_cell(c: &Cell) -> String {
    format!(
        "    {{\"path\": \"{}\", \"index\": \"{}\", \"regions\": {}, \"samples\": {}, \
         \"locality\": \"{}\", \"ns_per_sample\": {:.2}}}",
        c.path, c.index, c.regions, c.samples, c.locality, c.ns_per_sample
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_attribution.json".to_string());
    let reps: usize = if std::env::var_os("QUICK_BENCH").is_some() {
        5
    } else {
        31
    };

    type SampleGen = fn(usize, usize) -> Vec<PcSample>;
    let localities: [(&str, SampleGen); 2] = [("random", random_samples), ("local", local_samples)];
    let kinds = [
        ("list", IndexKind::Linear),
        ("tree", IndexKind::IntervalTree),
        ("flat", IndexKind::FlatSorted),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for &n in &REGION_COUNTS {
        let regions = region_table(n);
        for &count in &SAMPLE_COUNTS {
            for (locality, gen) in localities {
                let samples = gen(n, count);

                // Baseline: the legacy per-sample path over the seed's
                // default index (interval tree).
                let legacy = LegacyDistributor::new(IndexKind::IntervalTree, &regions);
                let ns = median_ns_per_sample(count, reps, || {
                    black_box(legacy.distribute(black_box(&samples)));
                });
                cells.push(Cell {
                    path: "legacy",
                    index: "tree",
                    regions: n,
                    samples: count,
                    locality,
                    ns_per_sample: ns,
                });

                // Today's engine: batch stab + arena, per index kind.
                for (label, kind) in kinds {
                    let mut monitor = RegionMonitor::new(kind);
                    for r in &regions {
                        monitor.add_region(*r, RegionKind::Loop { depth: 0 }, 0);
                    }
                    // Cross-check before timing: the batch path must
                    // reproduce the legacy histograms exactly.
                    monitor.attribute(&samples);
                    let (legacy_hists, legacy_unattr) = legacy.distribute(&samples);
                    let report = monitor.report();
                    assert_eq!(report.unattributed_samples().len(), legacy_unattr.len());
                    for (id, hist) in report.histograms() {
                        assert_eq!(Some(hist), legacy_hists.get(&id), "{id:?}");
                    }

                    let ns = median_ns_per_sample(count, reps, || {
                        monitor.attribute(black_box(&samples));
                        black_box(monitor.report().total_samples());
                    });
                    cells.push(Cell {
                        path: "batch",
                        index: label,
                        regions: n,
                        samples: count,
                        locality,
                        ns_per_sample: ns,
                    });
                }
            }
        }
    }

    // ------------------------------------------------------- SIMD rows
    // The headline cell again, but re-measured under every dispatch
    // level this host supports (`simd::force`), at both localities.
    // The guard reads the within-run scalar/vector ratio, so the ≥2x
    // claim is compared against a scalar row produced in the same
    // process on the same machine — robust to slow CI hosts. The
    // representative row is the `local` stream (the paper's observed
    // sample locality, where the 8-wide window fast path answers whole
    // blocks); the uniform-random stream — the adversarial worst case,
    // where every block resolves through the bucket table — is reported
    // and floored separately.
    let regions = region_table(HEADLINE_REGIONS);
    let restore = simd::active();
    let mut simd_rows: Vec<(&'static str, SimdLevel, f64)> = Vec::new();
    for (locality, gen) in localities {
        let samples = gen(HEADLINE_REGIONS, HEADLINE_SAMPLES);
        for level in SimdLevel::ALL {
            if simd::force(level) != level {
                continue; // unsupported on this host
            }
            let mut monitor = RegionMonitor::new(IndexKind::FlatSorted);
            for r in &regions {
                monitor.add_region(*r, RegionKind::Loop { depth: 0 }, 0);
            }
            let ns = median_ns_per_sample(HEADLINE_SAMPLES, reps, || {
                monitor.attribute(black_box(&samples));
                black_box(monitor.report().total_samples());
            });
            simd_rows.push((locality, level, ns));
        }
    }
    simd::force(restore);
    let simd_pick = |locality: &str, level: SimdLevel| -> f64 {
        simd_rows
            .iter()
            .find(|&&(l, lv, _)| l == locality && lv == level)
            .expect("measured above")
            .2
    };
    // `SimdLevel::ALL` is ordered, so the last supported level is the
    // widest vector path this host has (what auto-detect dispatches to).
    let simd_level = simd_rows.last().expect("at least the scalar rows").1;
    let scalar_ns = simd_pick("local", SimdLevel::Scalar);
    let simd_ns = simd_pick("local", simd_level);
    let simd_speedup = scalar_ns / simd_ns;
    let scalar_random_ns = simd_pick("random", SimdLevel::Scalar);
    let simd_random_ns = simd_pick("random", simd_level);
    let simd_speedup_random = scalar_random_ns / simd_random_ns;

    let pick = |path: &str, index: &str| -> f64 {
        cells
            .iter()
            .find(|c| {
                c.path == path
                    && c.index == index
                    && c.regions == HEADLINE_REGIONS
                    && c.samples == HEADLINE_SAMPLES
                    && c.locality == "random"
            })
            .expect("headline cell measured")
            .ns_per_sample
    };
    let legacy_ns = pick("legacy", "tree");
    let flat_ns = pick("batch", "flat");
    let speedup = legacy_ns / flat_ns;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"regmon-attribution-matrix-v1\",\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(
        "  \"note\": \"median ns/sample; legacy = per-sample stab + fresh per-interval \
         BTreeMap histograms (the seed's distribute), batch = stab_batch + epoch-reset \
         arena (today's attribute)\",\n",
    );
    json.push_str("  \"headline\": {\n");
    json.push_str(&format!("    \"regions\": {HEADLINE_REGIONS},\n"));
    json.push_str(&format!("    \"samples\": {HEADLINE_SAMPLES},\n"));
    json.push_str("    \"locality\": \"random\",\n");
    json.push_str(&format!(
        "    \"legacy_tree_ns_per_sample\": {legacy_ns:.2},\n"
    ));
    json.push_str(&format!(
        "    \"flat_batch_ns_per_sample\": {flat_ns:.2},\n"
    ));
    json.push_str(&format!("    \"speedup\": {speedup:.2},\n"));
    json.push_str(&format!(
        "    \"flat_batch_scalar_ns_per_sample\": {scalar_ns:.2},\n"
    ));
    json.push_str(&format!(
        "    \"flat_batch_simd_ns_per_sample\": {simd_ns:.2},\n"
    ));
    json.push_str(&format!(
        "    \"simd_level\": \"{}\",\n",
        simd_level.label()
    ));
    json.push_str(&format!("    \"simd_speedup\": {simd_speedup:.2},\n"));
    json.push_str(&format!(
        "    \"flat_batch_scalar_random_ns_per_sample\": {scalar_random_ns:.2},\n"
    ));
    json.push_str(&format!(
        "    \"flat_batch_simd_random_ns_per_sample\": {simd_random_ns:.2},\n"
    ));
    json.push_str(&format!(
        "    \"simd_speedup_random\": {simd_speedup_random:.2}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"simd\": [\n");
    let simd_rendered: Vec<String> = simd_rows
        .iter()
        .map(|(locality, level, ns)| {
            format!(
                "    {{\"kernel\": \"attribution_flat_batch\", \"level\": \"{}\", \
                 \"regions\": {HEADLINE_REGIONS}, \"samples\": {HEADLINE_SAMPLES}, \
                 \"locality\": \"{locality}\", \"ns_per_sample\": {ns:.2}}}",
                level.label()
            )
        })
        .collect();
    json.push_str(&simd_rendered.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"cells\": [\n");
    let rendered: Vec<String> = cells.iter().map(fmt_cell).collect();
    json.push_str(&rendered.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write matrix json");
    eprintln!(
        "attribution matrix: {} cells -> {out_path} (headline speedup {speedup:.2}x: \
         legacy/tree {legacy_ns:.1} ns/sample vs batch/flat {flat_ns:.1} ns/sample; \
         simd {} vs forced scalar: local {simd_speedup:.2}x ({scalar_ns:.1} -> {simd_ns:.1} \
         ns/sample), random {simd_speedup_random:.2}x ({scalar_random_ns:.1} -> \
         {simd_random_ns:.1} ns/sample))",
        cells.len(),
        simd_level.label(),
    );
}
