//! Calibration console: per-benchmark, per-period detector behaviour.
//!
//! Not a paper figure — a development tool that prints, for the chosen
//! benchmarks and sampling periods, everything the models are calibrated
//! against: GPD changes and stable time, UCR, region counts and the
//! per-region LPD picture.
//!
//! ```text
//! cargo run --release -p regmon-bench --bin calibrate [-- name...]
//! REGMON_INTERVALS=400 cargo run ... # cap the interval budget
//! ```

use regmon::workload::suite;
use regmon::{MonitoringSession, SessionConfig};
use regmon_bench::SWEEP_PERIODS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        suite::names()
    } else {
        suite::names()
            .into_iter()
            .filter(|n| args.iter().any(|a| n.contains(a.as_str())))
            .collect()
    };
    let cap: usize = std::env::var("REGMON_INTERVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);

    for name in names {
        let w = suite::by_name(name).unwrap();
        println!("== {name} ==");
        for period in SWEEP_PERIODS {
            let config = SessionConfig::new(period);
            let full = (w.total_cycles() / config.sampling.interval_cycles()) as usize;
            let budget = full.min(cap);
            let s = MonitoringSession::run_limited(&w, &config, budget);
            println!(
                "  p={period:>7} intervals={:>5} | GPD changes={:>5} stable={:>5.1}% | UCR med={:>5.1}% | regions={}",
                s.intervals,
                s.gpd.phase_changes,
                s.gpd.stable_fraction() * 100.0,
                s.ucr_median * 100.0,
                s.regions_formed,
            );
            let mut regs: Vec<_> = s.lpd.iter().collect();
            regs.sort_by_key(|(_, st)| std::cmp::Reverse(st.active_intervals));
            for (id, st) in regs.iter().take(5) {
                println!(
                    "      {id}: active={:>5} stable={:>5.1}% changes={:>4}",
                    st.active_intervals,
                    st.stable_fraction() * 100.0,
                    st.phase_changes,
                );
            }
        }
    }
}
