//! Extension figure (not in the paper): adaptive analysis-window
//! resizing for the centroid detector (Nagpurkar et al., cited in the
//! paper's §4) vs the fixed-window detector, across the paper's sampling
//! period sweep.
//!
//! Expectation: the adaptive window rescues some of the fixed detector's
//! short-period thrash (its grown window averages fast switching the way
//! a longer sampling period would) while responding just as fast to real
//! changes — but it remains a *global* scheme and cannot match per-region
//! detection on the switchers.

use regmon::gpd::adaptive::{AdaptiveWindowConfig, AdaptiveWindowDetector};
use regmon::gpd::{CentroidDetector, GpdConfig};
use regmon::sampling::{Sampler, SamplingConfig};
use regmon::workload::suite;
use regmon_bench::{figure_header, interval_budget, SWEEP_PERIODS};

fn main() {
    figure_header(
        "Extension: adaptive window",
        "fixed vs adaptive-window centroid detection (phase changes, %stable)",
    );
    println!("benchmark,period,fixed_changes,fixed_stable_pct,adaptive_changes,adaptive_stable_pct,final_window");
    for name in ["187.facerec", "178.galgel", "181.mcf", "254.gap"] {
        let w = suite::by_name(name).expect("suite name");
        for &period in &SWEEP_PERIODS {
            let sampling = SamplingConfig::new(period);
            let budget = interval_budget(&w, period).min(2000);
            let mut fixed = CentroidDetector::new(GpdConfig::default());
            let mut adaptive = AdaptiveWindowDetector::new(AdaptiveWindowConfig::default());
            for interval in Sampler::new(&w, sampling).take(budget) {
                fixed.observe(&interval.samples);
                adaptive.observe_buffer(&interval.samples);
            }
            let f = fixed.stats();
            let a = adaptive.stats();
            println!(
                "{name},{period},{},{:.1},{},{:.1},{}",
                f.phase_changes,
                f.stable_fraction() * 100.0,
                a.phase_changes,
                a.stable_fraction() * 100.0,
                adaptive.window_buffers(),
            );
        }
    }
    println!("# observed: the adaptive window cuts change counts (gap 180->122 @45K, mcf 18->12 @900K) but");
    println!(
        "# cannot fix the global blind spot: on fast switchers its grown windows straddle switch"
    );
    println!("# boundaries, so stable time does not improve the way per-region detection does");
}
