//! Extension figure (not in the paper): the paper's related-work global
//! detectors — basic-block vectors (Sherwood et al.) and working-set
//! signatures (Dhodapkar & Smith) — swept alongside the centroid scheme
//! and local phase detection on the paper's headline benchmarks.
//!
//! The point the paper argues in §4 quantified: *any* global scheme,
//! however it fingerprints an interval, mistakes inter-region switching
//! for phase changes; only per-region detection sees that the regions
//! never changed.

use regmon::sampling::{Sampler, SamplingConfig};
use regmon::workload::suite;
use regmon::{MonitoringSession, SessionConfig};
use regmon_baselines::{BbvConfig, BbvDetector, WssConfig, WssDetector};
use regmon_bench::{figure_header, interval_budget};

fn main() {
    figure_header(
        "Extension: global baselines",
        "phase changes and %stable for centroid / BBV / WSS / LPD at 45K cycles/interrupt",
    );
    println!("benchmark,detector,phase_changes,stable_pct");
    for name in ["187.facerec", "178.galgel", "181.mcf", "172.mgrid"] {
        let w = suite::by_name(name).expect("suite name");
        let sampling = SamplingConfig::new(45_000);
        let budget = interval_budget(&w, 45_000).min(1500);

        let config = SessionConfig::new(45_000);
        let mut session = MonitoringSession::new(config.clone());
        session.attach_binary(&w);
        let mut bbv = BbvDetector::new(BbvConfig::default());
        let mut wss = WssDetector::new(WssConfig::default());
        for interval in Sampler::new(&w, sampling).take(budget) {
            bbv.observe(w.binary(), &interval.samples);
            wss.observe(w.binary(), &interval.samples);
            session.process_interval(&interval);
        }
        let summary = session.summary(w.name());

        let rows = [
            (
                "centroid",
                summary.gpd.phase_changes,
                summary.gpd.stable_fraction(),
            ),
            (
                "bbv",
                bbv.stats().phase_changes,
                bbv.stats().stable_fraction(),
            ),
            (
                "wss",
                wss.stats().phase_changes,
                wss.stats().stable_fraction(),
            ),
            {
                // LPD over *hot* regions (≥200 samples/interval, ≈10% of the buffer, on
                // average): cold-region flapping is sampling noise that
                // neither optimizer would ever act on.
                let hot: Vec<_> = summary
                    .lpd
                    .values()
                    .filter(|s| s.mean_samples() >= 200.0)
                    .collect();
                let changes: usize = hot.iter().map(|s| s.phase_changes).sum();
                let stable = if hot.is_empty() {
                    0.0
                } else {
                    hot.iter().map(|s| s.stable_fraction()).sum::<f64>() / hot.len() as f64
                };
                ("lpd (hot regions)", changes, stable)
            },
        ];
        for (det, changes, frac) in rows {
            println!("{name},{det},{changes},{:.1}", frac * 100.0);
        }
    }
    println!(
        "# expectation: on switchers (facerec, galgel) every global scheme thrashes; LPD does not;"
    );
    println!("# on steady mgrid all four agree");
}
