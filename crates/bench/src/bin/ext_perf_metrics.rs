//! Extension figure: the CPI/DPI leg of global phase detection (paper
//! §1) on a workload whose *performance* changes while its *code* does
//! not.
//!
//! Mid-run, the hot loop's data outgrows the cache: its miss rate jumps
//! from 10% to 50% of cycles. The sampled PC distribution is identical
//! before and after — the centroid detector and every working-set scheme
//! see nothing — but CPI and DPI shift immediately, which is exactly why
//! the paper's systems track them: "to detect change in performance
//! characteristics that can affect optimization strategy".

use regmon::binary::{Addr, BinaryBuilder};
use regmon::gpd::perf::{PerfConfig, PerfDetector};
use regmon::gpd::{CentroidDetector, GpdConfig};
use regmon::sampling::{Sampler, SamplingConfig};
use regmon::workload::activity::{loop_range, Activity};
use regmon::workload::{Behavior, InstProfile, Mix, PhaseScript, Segment, Workload};
use regmon_bench::figure_header;

/// Miss-stall penalty (cycles per data-cache miss) for the DPI model.
const MISS_PENALTY: f64 = 100.0;

fn cache_blowup_workload() -> Workload {
    let mut b = BinaryBuilder::new("cache-blowup");
    b.procedure("kernel", |p| {
        p.straight(4);
        p.loop_(|l| {
            l.straight(31);
        });
    });
    let bin = b.build(Addr::new(0x20000));
    let r = loop_range(&bin, "kernel", 0);
    let mix = |miss: f64| {
        Mix::new(vec![Activity::new(
            r,
            1.0,
            InstProfile::peaked(10, 3.0),
            miss,
        )])
    };
    let total = 40_000_000_000u64;
    let script = PhaseScript::new(vec![Segment::new(
        total,
        Behavior::BottleneckShift {
            before: mix(0.10),
            after: mix(0.50),
            at_fraction: 0.5,
        },
    )]);
    Workload::new("cache-blowup", bin, script, 77)
}

fn main() {
    figure_header(
        "Extension: CPI/DPI phase signals",
        "a performance-only phase change: code unchanged, miss rate steps 10%→50% mid-run",
    );
    let w = cache_blowup_workload();
    let sampling = SamplingConfig::new(45_000);
    let mut centroid = CentroidDetector::new(GpdConfig::default());
    let mut perf = PerfDetector::new(PerfConfig::default());

    println!("interval,cpi,dpi,centroid_stable,perf_stable");
    let cap = if std::env::var_os("REGMON_FAST").is_some() {
        60
    } else {
        usize::MAX
    };
    let mut perf_change_at = None;
    let mut processed = 0usize;
    for interval in Sampler::new(&w, sampling).take(cap) {
        processed += 1;
        centroid.observe(&interval.samples);
        let p = w.window_perf(interval.start_cycle, interval.end_cycle, MISS_PENALTY);
        let obs = perf.observe(p.cpi(), p.dpi());
        if obs.phase_changed && !obs.stable && perf_change_at.is_none() {
            perf_change_at = Some(interval.index);
        }
        if interval.index % 16 == 0 {
            println!(
                "{},{:.3},{:.5},{},{}",
                interval.index,
                p.cpi(),
                p.dpi(),
                u8::from(centroid.is_stable()),
                u8::from(obs.stable),
            );
        }
    }
    println!(
        "# centroid detector: {} phase changes ({}% stable) — blind to the miss-rate step",
        centroid.stats().phase_changes,
        (centroid.stats().stable_fraction() * 100.0).round(),
    );
    println!(
        "# CPI/DPI detector: {} phase changes, first change flagged at interval {:?} (the 50% mark is interval {})",
        perf.stats().phase_changes,
        perf_change_at,
        centroid.stats().intervals / 2,
    );
    assert!(
        centroid.stats().phase_changes <= 2,
        "the centroid must not see the performance change"
    );
    // The step lands at 50% of the run; a REGMON_FAST prefix may end
    // before it.
    if processed > 250 {
        assert!(perf_change_at.is_some(), "the CPI/DPI detector must see it");
    }
}
