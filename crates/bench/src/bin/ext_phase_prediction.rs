//! Extension figure: phase classification and prediction (Sherwood et
//! al., cited in the paper's §4) over the suite.
//!
//! Intervals are classified into recurring phase ids by basic-block
//! fingerprint; a last-transition Markov predictor guesses the next
//! interval's phase. The paper's footnote motivates this: with a
//! prediction of the *incoming* phase, a dynamic optimizer could e.g.
//! prefetch its instructions before it arrives.
//!
//! Expectation: periodic programs (facerec, galgel) resolve into a small
//! set of recurring phases predicted with near-perfect accuracy; steady
//! programs are one phase; drifting mcf accumulates more phases yet stays
//! predictable because its alternations are regular.

use regmon::sampling::{Sampler, SamplingConfig};
use regmon::workload::suite;
use regmon_baselines::{PhaseClassifier, PhasePredictor};
use regmon_bench::{figure_header, interval_budget};

fn main() {
    figure_header(
        "Extension: phase classification + prediction",
        "recurring phases and Markov next-phase accuracy at 45K cycles/interrupt",
    );
    println!("benchmark,intervals,distinct_phases,prediction_accuracy_pct");
    for name in [
        "172.mgrid",
        "187.facerec",
        "178.galgel",
        "181.mcf",
        "254.gap",
    ] {
        let w = suite::by_name(name).expect("suite name");
        let sampling = SamplingConfig::new(45_000);
        let budget = interval_budget(&w, 45_000).min(1500);
        let mut classifier = PhaseClassifier::new(64, 0.5);
        let mut predictor = PhasePredictor::new();
        let mut intervals = 0;
        for interval in Sampler::new(&w, sampling).take(budget) {
            if let Some(id) = classifier.classify(w.binary(), &interval.samples) {
                predictor.observe(id);
                intervals += 1;
            }
        }
        println!(
            "{name},{intervals},{},{:.1}",
            classifier.phases(),
            predictor.stats().accuracy() * 100.0
        );
    }
    println!(
        "# expectation: steady programs = 1 phase; periodic switchers = few recurring phases at"
    );
    println!(
        "# high accuracy; the phase *sequence* is predictable even where interval-to-interval"
    );
    println!("# comparison (Figure 3) thrashes");
}
