//! Extension ablation: how sensitive is the Figure-17 result to the
//! optimization cost model?
//!
//! The paper's speedups come from real prefetching; ours come from an
//! explicit model (a patched region recovers `prefetch_efficiency` of its
//! miss-stall cycles, each deployment costs `patch_overhead_cycles`).
//! This ablation sweeps both knobs on the headline 181.mcf @ 800K point
//! to show the LPD-over-ORIG conclusion is not an artifact of the chosen
//! constants: the *advantage* scales with efficiency (there is simply
//! more to lose while unpatched) and is insensitive to overhead until
//! overhead dwarfs the savings.

use regmon::rto::{simulate, speedup_percent, RtoConfig, RtoMode};
use regmon::workload::suite;
use regmon_bench::figure_header;

fn main() {
    figure_header(
        "Extension: RTO cost-model sensitivity",
        "LPD-over-ORIG speedup on 181.mcf @ 800K vs prefetch efficiency and patch overhead",
    );
    let w = suite::by_name("181.mcf").expect("suite name");
    let fast = std::env::var_os("REGMON_FAST").is_some();
    let cap = if fast { Some(40) } else { Some(250) };

    println!("sweep,value,lpd_over_orig_pct,lpd_over_baseline_pct");
    for eff in [0.2, 0.4, 0.6, 0.8] {
        let mut config = RtoConfig::new(800_000);
        config.max_intervals = cap;
        config.model.prefetch_efficiency = eff;
        let orig = simulate(&w, &config, RtoMode::Global);
        let lpd = simulate(&w, &config, RtoMode::Local);
        println!(
            "efficiency,{eff},{:.2},{:.2}",
            speedup_percent(&orig, &lpd),
            lpd.speedup_over_baseline_percent()
        );
    }
    for overhead in [0.0, 2e6, 2e7, 2e8] {
        let mut config = RtoConfig::new(800_000);
        config.max_intervals = cap;
        config.model.patch_overhead_cycles = overhead;
        let orig = simulate(&w, &config, RtoMode::Global);
        let lpd = simulate(&w, &config, RtoMode::Local);
        println!(
            "overhead,{overhead},{:.2},{:.2}",
            speedup_percent(&orig, &lpd),
            lpd.speedup_over_baseline_percent()
        );
    }
    println!(
        "# expectation: advantage grows monotonically with efficiency; flat in overhead until"
    );
    println!("# the per-patch cost approaches the per-interval savings");
}
