//! Extension study: seed robustness of the headline figures.
//!
//! Every workload model is seeded; this study re-runs the Figure 3/4
//! anchors under five different sampling seeds to show the reproduction's
//! shape does not hinge on one lucky draw: the thrashy benchmarks thrash
//! under every seed, the quiet ones stay quiet, and the spread is small
//! relative to the effects (orders of magnitude).

use regmon::workload::suite;
use regmon::{MonitoringSession, SessionConfig};
use regmon_bench::{figure_header, interval_budget};

fn main() {
    figure_header(
        "Extension: seed robustness",
        "GPD phase changes @45K across five sampling seeds (mean, min, max)",
    );
    println!("benchmark,mean_changes,min,max,mean_stable_pct");
    for name in [
        "178.galgel",
        "187.facerec",
        "254.gap",
        "181.mcf",
        "172.mgrid",
    ] {
        let base = suite::by_name(name).expect("suite name");
        let budget = interval_budget(&base, 45_000).min(2000);
        let mut changes = Vec::new();
        let mut stable = Vec::new();
        for k in 0..5u64 {
            let w = base.clone().with_seed(base.seed().wrapping_add(k * 7919));
            let config = SessionConfig::new(45_000);
            let s = MonitoringSession::run_limited(&w, &config, budget);
            changes.push(s.gpd.phase_changes as f64);
            stable.push(s.gpd.stable_fraction() * 100.0);
        }
        let mean = changes.iter().sum::<f64>() / changes.len() as f64;
        let min = changes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = changes.iter().cloned().fold(0.0f64, f64::max);
        let mean_stable = stable.iter().sum::<f64>() / stable.len() as f64;
        println!("{name},{mean:.0},{min:.0},{max:.0},{mean_stable:.1}");
    }
    println!("# expectation: per-benchmark spread ≪ the between-benchmark differences the figures rest on");
}
