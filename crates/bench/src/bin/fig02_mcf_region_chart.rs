//! Figure 2: region chart for 181.mcf at the 45K-cycle sampling period.
//!
//! The paper plots, per interval, the number of PC samples landing in each
//! code region (stacked area; overlapping regions double-count so the
//! stack can exceed the 2032-sample buffer) plus a thick line that is high
//! while the *global* detector reports an unstable phase. The reproduction
//! target: phase tracking works early, but the periodic region switching
//! towards the end leaves the detector unstable for a long stretch.

use regmon::workload::suite::{self, mcf};
use regmon_bench::{downsample, figure_header, region_chart, row};

fn main() {
    figure_header(
        "Figure 2",
        "181.mcf per-region samples per interval + GPD phase line (45K cycles/interrupt)",
    );
    let w = suite::by_name("181.mcf").expect("mcf is in the suite");
    let ranges = mcf::tracked_regions(&w);
    let max = regmon_bench::interval_budget(&w, 45_000);
    let chart = region_chart(&w, 45_000, &ranges, max);

    const COLS: usize = 160;
    println!(
        "# columns: {COLS} buckets over {} intervals",
        chart.gpd_unstable.len()
    );
    for (i, range) in chart.ranges.iter().enumerate() {
        let series: Vec<f64> = chart.samples[i].iter().map(|&c| c as f64).collect();
        println!(
            "{}",
            row(&format!("samples {range}"), &downsample(&series, COLS))
        );
    }
    println!(
        "{}",
        row("gpd_unstable", &downsample(&chart.gpd_unstable, COLS))
    );

    // The paper's qualitative claim: the tail (periodic phase) is far less
    // stable than the head.
    let n = chart.gpd_unstable.len();
    let head: f64 = chart.gpd_unstable[..n / 3].iter().sum::<f64>() / (n / 3) as f64;
    let tail: f64 = chart.gpd_unstable[2 * n / 3..].iter().sum::<f64>() / (n - 2 * n / 3) as f64;
    println!("# unstable fraction: first third {head:.3}, last third {tail:.3}");
    println!(
        "# paper: phase tracking works, but \"the phase remains unstable for quite some time towards the end of execution\""
    );
}
