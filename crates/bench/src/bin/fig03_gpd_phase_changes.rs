//! Figure 3: number of global (centroid) phase changes per benchmark at
//! sampling periods 45K / 450K / 900K cycles per interrupt.
//!
//! Reproduction target (shape, not absolute counts): a handful of
//! benchmarks — galgel, facerec, mcf, gap, wupwise — show hundreds to
//! thousands of phase changes at 45K, collapsing to almost none at 900K;
//! the rest sit near zero at every period. Short-running gzip and gcc are
//! excluded, as in the paper.

use regmon::workload::suite;
use regmon_bench::{figure_header, row, run_session, SWEEP_PERIODS};

fn main() {
    figure_header(
        "Figure 3",
        "GPD phase changes per benchmark and sampling period",
    );
    println!("benchmark,pc45k,pc450k,pc900k");
    for name in suite::fig3_names() {
        let counts: Vec<f64> = SWEEP_PERIODS
            .iter()
            .map(|&p| run_session(name, p).gpd.phase_changes as f64)
            .collect();
        println!("{}", row(name, &counts));
    }
    println!("# paper shape: thrashy set {{galgel, facerec, gap, mcf, wupwise}} large at 45K, ~0 at 900K");
}
