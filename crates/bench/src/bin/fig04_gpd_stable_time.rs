//! Figure 4: percentage of time spent in a GPD-stable phase per benchmark
//! at sampling periods 45K / 450K / 900K cycles per interrupt.
//!
//! Reproduction target: most benchmarks spend the vast majority of their
//! time stable at every period; the periodic switchers (facerec, galgel)
//! lose a large share of stable time at 45K. Stable time does *not*
//! correlate with the number of phase changes (mcf has many changes *and*
//! high stable time at 45K — fast response).

use regmon::workload::suite;
use regmon_bench::{figure_header, row, run_session, SWEEP_PERIODS};

fn main() {
    figure_header(
        "Figure 4",
        "% of intervals in GPD-stable phase per benchmark and sampling period",
    );
    println!("benchmark,stable45k_pct,stable450k_pct,stable900k_pct");
    let mut mcf_changes_45k = 0;
    let mut mcf_stable_45k = 0.0;
    for name in suite::fig3_names() {
        let fractions: Vec<f64> = SWEEP_PERIODS
            .iter()
            .map(|&p| {
                let s = run_session(name, p);
                if name == "181.mcf" && p == 45_000 {
                    mcf_changes_45k = s.gpd.phase_changes;
                    mcf_stable_45k = s.gpd.stable_fraction() * 100.0;
                }
                s.gpd.stable_fraction() * 100.0
            })
            .collect();
        println!("{}", row(name, &fractions));
    }
    println!(
        "# paper: stable time does not correlate with change count; mcf@45K has {mcf_changes_45k} changes yet {mcf_stable_45k:.1}% stable time"
    );
}
