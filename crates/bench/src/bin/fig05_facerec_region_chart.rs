//! Figure 5: region chart for 187.facerec.
//!
//! The paper's chart shows facerec ping-ponging between two sets of
//! regions for the whole run, with the GPD phase line flagging changes at
//! nearly every switch — despite there being *no* real phase changes
//! ("looking at the region chart for facerec, we see that there are few
//! actual phase changes").

use regmon::workload::activity::loop_range;
use regmon::workload::suite;
use regmon_bench::{downsample, figure_header, region_chart, row};

fn main() {
    figure_header(
        "Figure 5",
        "187.facerec per-region samples per interval + GPD phase line (45K cycles/interrupt)",
    );
    let w = suite::by_name("187.facerec").expect("facerec is in the suite");
    let ranges: Vec<_> = (0..4)
        .map(|i| loop_range(w.binary(), &format!("hot{i}"), 0))
        .collect();
    let max = regmon_bench::interval_budget(&w, 45_000).min(600);
    let chart = region_chart(&w, 45_000, &ranges, max);

    const COLS: usize = 160;
    println!(
        "# columns: {COLS} buckets over {} intervals",
        chart.gpd_unstable.len()
    );
    for (i, range) in chart.ranges.iter().enumerate() {
        let set = if i < 2 { "setX" } else { "setY" };
        let series: Vec<f64> = chart.samples[i].iter().map(|&c| c as f64).collect();
        println!(
            "{}",
            row(
                &format!("samples {set} {range}"),
                &downsample(&series, COLS)
            )
        );
    }
    println!(
        "{}",
        row("gpd_unstable", &downsample(&chart.gpd_unstable, COLS))
    );
    let unstable: f64 = chart.gpd_unstable.iter().sum::<f64>() / chart.gpd_unstable.len() as f64;
    println!("# GPD unstable fraction over the window: {unstable:.3}");
    println!("# paper: periodic switching between 2 region sets causes frequent (spurious) phase changes");
}
