//! Figure 6: median percentage of samples in the unmonitored code region
//! (UCR) per benchmark, against the 30% formation threshold.
//!
//! Reproduction target: most benchmarks sit well below 30%; 254.gap and
//! 186.crafty sit above it — their hot code is called from loops in other
//! procedures, so loop-only region formation can never cover it. The
//! extra column shows the paper's proposed fix (inter-procedural region
//! formation, §3.1) collapsing those medians.

use regmon::workload::suite;
use regmon::{MonitoringSession, SessionConfig};
use regmon_bench::{figure_header, interval_budget, row};

fn main() {
    figure_header(
        "Figure 6",
        "median %UCR per benchmark (45K cycles/interrupt); threshold = 30%",
    );
    println!("benchmark,median_ucr_pct,median_ucr_interproc_pct");
    let mut above = Vec::new();
    for name in suite::names() {
        let w = suite::by_name(name).expect("suite name");
        let budget = interval_budget(&w, 45_000);
        let config = SessionConfig::new(45_000);
        let base = MonitoringSession::run_limited(&w, &config, budget);
        let mut ip_config = config.clone();
        ip_config.formation.interprocedural = true;
        let interproc = MonitoringSession::run_limited(&w, &ip_config, budget);
        println!(
            "{}",
            row(
                name,
                &[base.ucr_median * 100.0, interproc.ucr_median * 100.0]
            )
        );
        if base.ucr_median > 0.30 {
            above.push(name);
        }
    }
    println!("# threshold,30");
    println!("# above threshold: {above:?}");
    println!("# paper: most benchmarks < 30%; gap and crafty above");
}
