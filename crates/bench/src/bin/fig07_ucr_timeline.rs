//! Figure 7: percentage of samples in the UCR over time for 254.gap and
//! 186.crafty.
//!
//! Reproduction target: both benchmarks trigger region formation over and
//! over (every interval above the 30% threshold is a trigger), yet their
//! UCR share never drops — the hot leaves live in procedures whose loops
//! belong to callers, which loop-only formation cannot cover.

use regmon::workload::suite;
use regmon::{MonitoringSession, SessionConfig};
use regmon_bench::{downsample, figure_header, interval_budget, row};

fn main() {
    figure_header(
        "Figure 7",
        "%UCR per interval for 254.gap and 186.crafty (45K cycles/interrupt)",
    );
    const COLS: usize = 160;
    for name in ["254.gap", "186.crafty"] {
        let w = suite::by_name(name).expect("suite name");
        let config = SessionConfig::new(45_000);
        let budget = interval_budget(&w, 45_000).min(1200);
        let mut session = MonitoringSession::new(config.clone());
        session.attach_binary(&w);
        let mut timeline = Vec::new();
        let mut triggers = 0usize;
        for interval in regmon::sampling::Sampler::new(&w, config.sampling).take(budget) {
            let outcome = session.process_interval(&interval);
            timeline.push(outcome.ucr_fraction * 100.0);
            if outcome.ucr_fraction > config.formation.ucr_trigger {
                triggers += 1;
            }
        }
        println!("{}", row(name, &downsample(&timeline, COLS)));
        println!(
            "# {name}: {} intervals, {} formation triggers, final region count {}",
            timeline.len(),
            triggers,
            session.monitor().len()
        );
    }
    println!("# paper: \"even after frequent region formation triggers ... the percentage of samples in UCR remains high\"");
}
