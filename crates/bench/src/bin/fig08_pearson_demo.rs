//! Figure 8: why Pearson's r is the right similarity metric.
//!
//! The paper compares a peaked per-instruction sample distribution
//! against (a) the same distribution with the bottleneck shifted by one
//! instruction — r ≈ −0.056, clearly a phase change — and (b) the same
//! distribution with more samples but similar frequencies — r ≈ 0.998,
//! clearly *not* a phase change.

use regmon::stats::pearson_r;
use regmon_bench::{figure_header, row};

fn main() {
    figure_header(
        "Figure 8",
        "Pearson r under bottleneck shift vs uniform scaling",
    );

    // A 10-instruction region with one dominant (delinquent-load) slot,
    // shaped like the paper's plot.
    let original = [10.0, 15.0, 25.0, 350.0, 45.0, 20.0, 12.0, 8.0, 6.0, 5.0];
    let shifted: Vec<f64> = {
        let mut v = vec![8.0];
        v.extend_from_slice(&original[..9]);
        v
    };
    let scaled: Vec<f64> = original.iter().map(|c| c * 1.35 + 2.0).collect();

    println!("{}", row("original", &original));
    println!("{}", row("shift_bottleneck_by_1_inst", &shifted));
    println!("{}", row("more_samples_similar_frequencies", &scaled));

    let r_shift = pearson_r(&original, &shifted).expect("same length");
    let r_scale = pearson_r(&original, &scaled).expect("same length");
    println!("{}", row("r_shifted", &[r_shift]));
    println!("{}", row("r_scaled", &[r_scale]));

    println!(
        "# paper: r = -0.056 for the shifted bottleneck, r = 0.998 for the scaled distribution"
    );
    assert!(r_shift.abs() < 0.3, "shift must decorrelate (r={r_shift})");
    assert!(r_scale > 0.99, "scaling must stay correlated (r={r_scale})");
}
