//! Figure 9: the three tracked regions of 181.mcf over time.
//!
//! The paper names them by address range: `146f0-14770` ("A") takes a
//! large fraction of execution early and diminishes; `142c8-14318` ("B")
//! starts small and grows; `13134-133d4` ("C") stays roughly constant.
//! The run also transitions from non-periodic to periodic behaviour.

use regmon::workload::suite::{self, mcf};
use regmon_bench::{downsample, figure_header, region_chart, row};

fn main() {
    figure_header(
        "Figure 9",
        "Samples per interval for the three tracked 181.mcf regions",
    );
    let w = suite::by_name("181.mcf").expect("mcf is in the suite");
    let ranges = mcf::tracked_regions(&w);
    let labels = [
        "A (analog 146f0-14770)",
        "B (analog 142c8-14318)",
        "C (analog 13134-133d4)",
    ];
    let max = regmon_bench::interval_budget(&w, 45_000);
    let chart = region_chart(&w, 45_000, &ranges, max);

    const COLS: usize = 160;
    for (i, label) in labels.iter().enumerate() {
        let series: Vec<f64> = chart.samples[i].iter().map(|&c| c as f64).collect();
        println!(
            "{}",
            row(
                &format!("{label} {}", chart.ranges[i]),
                &downsample(&series, COLS)
            )
        );
    }
    // Quantify the A→B share migration.
    let n = chart.samples[0].len();
    let share = |i: usize, lo: usize, hi: usize| -> f64 {
        let sum: u64 = chart.samples[i][lo..hi].iter().sum();
        sum as f64 / (hi - lo) as f64
    };
    println!(
        "# A: {:.0} samples/interval early -> {:.0} late; B: {:.0} early -> {:.0} late",
        share(0, 0, n / 5),
        share(0, 4 * n / 5, n),
        share(1, 0, n / 5),
        share(1, 4 * n / 5, n),
    );
    println!(
        "# paper: region A large early and diminishing, region B growing, with a periodic tail"
    );
}
