//! Figure 10: Pearson's coefficient of correlation over time for the
//! three tracked 181.mcf regions.
//!
//! Reproduction target: despite the large shifts in each region's *share*
//! of execution (Figure 9), the per-region r stays near 1 throughout —
//! "local analysis suggests no phase changes in 181.mcf, whereas globally
//! phase changes are seen every time the distribution of samples across
//! regions changes."

use regmon::workload::suite::{self, mcf};
use regmon_bench::{downsample, figure_header, region_chart, row};

fn main() {
    figure_header(
        "Figure 10",
        "Per-region Pearson r over time for 181.mcf (45K cycles/interrupt)",
    );
    let w = suite::by_name("181.mcf").expect("mcf is in the suite");
    let ranges = mcf::tracked_regions(&w);
    let max = regmon_bench::interval_budget(&w, 45_000);
    let chart = region_chart(&w, 45_000, &ranges, max);

    const COLS: usize = 160;
    for (i, range) in chart.ranges.iter().enumerate() {
        println!(
            "{}",
            row(&format!("r {range}"), &downsample(&chart.r_values[i], COLS))
        );
    }
    for (i, range) in chart.ranges.iter().enumerate() {
        // Skip the warmup (region not yet formed → r = 0).
        let active: Vec<f64> = chart.r_values[i]
            .iter()
            .copied()
            .skip_while(|&r| r == 0.0)
            .collect();
        let below: usize = active.iter().filter(|&&r| r < 0.8).count();
        let mean = active.iter().sum::<f64>() / active.len().max(1) as f64;
        println!(
            "# {range}: mean r {:.3}, {:.1}% of intervals below rt=0.8",
            mean,
            below as f64 / active.len().max(1) as f64 * 100.0
        );
    }
    println!("# paper: \"in spite of changes in the fraction of execution time of regions, the samples show very high correlation between intervals\"");
}
