//! Figure 11: per-region stability in 254.gap via Pearson's r.
//!
//! The paper tracks two regions: `7ba2c-7ba78` is very stable while
//! `8d25c-8d314` wanders. Both start with r = 0 because neither executes
//! from the start of the run. The point: *"some regions may be more stable
//! than others, and isolating phase detection for each code region can
//! result in more stable phase detection."*

use regmon::workload::suite::{self, gap};
use regmon_bench::{downsample, figure_header, region_chart, row};

fn main() {
    figure_header(
        "Figure 11",
        "Per-region Pearson r over time for 254.gap (45K cycles/interrupt)",
    );
    let w = suite::by_name("254.gap").expect("gap is in the suite");
    let [r1, r2, _] = gap::tracked_regions(&w);
    let max = regmon_bench::interval_budget(&w, 45_000);
    let chart = region_chart(&w, 45_000, &[r1, r2], max);

    const COLS: usize = 160;
    let labels = [
        "stable (analog 7ba2c-7ba78)",
        "unstable (analog 8d25c-8d314)",
    ];
    for (i, label) in labels.iter().enumerate() {
        println!(
            "{}",
            row(
                &format!("r {label} {}", chart.ranges[i]),
                &downsample(&chart.r_values[i], COLS)
            )
        );
    }

    // Quantify: initial r is 0 (regions not executing), then the stable
    // region's r dominates the unstable one's.
    for (i, label) in labels.iter().enumerate() {
        assert_eq!(chart.r_values[i][0], 0.0, "regions must start at r=0");
        let active: Vec<f64> = chart.r_values[i]
            .iter()
            .copied()
            .skip_while(|&r| r == 0.0)
            .collect();
        let mean = active.iter().sum::<f64>() / active.len().max(1) as f64;
        println!("# {label}: mean r {mean:.3} once active");
    }
    println!("# paper: r starts at 0 (regions do not execute from the start); 7ba2c-7ba78 is more stable than 8d25c-8d314");
}
