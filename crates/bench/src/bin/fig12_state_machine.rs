//! Figure 12: the local-phase-detection state machine, demonstrated.
//!
//! Figure 12 is a specification, not a data plot; this driver prints the
//! implemented transition table and walks a worked example through every
//! edge — including the `prev_hist` tracking/freezing semantics the
//! paper's prose fixes — asserting each step.

use regmon::lpd::{LpdConfig, LpdState, RegionPhaseDetector};
use regmon::stats::CountHistogram;
use regmon_bench::figure_header;

fn h(counts: &[u64]) -> CountHistogram {
    CountHistogram::from_counts(counts.to_vec())
}

fn main() {
    figure_header(
        "Figure 12",
        "the LPD state machine (specification, demonstrated)",
    );

    println!("state,input,next_state,prev_hist_action,phase_change");
    let rows = [
        ("Unstable", "r >= rt", "LessUnstable", "prev <- curr", "no"),
        ("Unstable", "r < rt", "Unstable", "prev <- curr", "no"),
        ("LessUnstable", "r >= rt", "Stable", "freeze", "YES"),
        ("LessUnstable", "r < rt", "Unstable", "prev <- curr", "no"),
        ("Stable", "r >= rt", "Stable", "frozen", "no"),
        ("Stable", "r < rt", "Unstable", "prev <- curr", "YES"),
        ("any", "no/few samples", "unchanged", "unchanged", "no"),
    ];
    for (s, i, n, a, c) in rows {
        println!("{s},{i},{n},{a},{c}");
    }

    // Worked example covering every edge.
    let shape = [2u64, 10, 50, 240, 40, 12, 4, 2];
    let shifted = [2u64, 2, 10, 50, 240, 40, 12, 4];
    let mut det = RegionPhaseDetector::new(8, LpdConfig::default());

    let o1 = det.observe(Some(&h(&shape)));
    assert_eq!(o1.state_after, LpdState::Unstable); // first interval: r undefined -> 0
    let o2 = det.observe(Some(&h(&shape)));
    assert_eq!(o2.state_after, LpdState::LessUnstable);
    let o3 = det.observe(Some(&h(&shape)));
    assert_eq!(o3.state_after, LpdState::Stable);
    assert!(o3.phase_changed);
    let frozen = det.stable_histogram().clone();
    let o4 = det.observe(Some(&h(&[6, 30, 150, 720, 120, 36, 12, 6]))); // 3x scale
    assert_eq!(o4.state_after, LpdState::Stable);
    assert!(!o4.phase_changed, "scaling is not a phase change");
    assert_eq!(det.stable_histogram(), &frozen, "stable set stays frozen");
    let o5 = det.observe(Some(&h(&shifted)));
    assert_eq!(o5.state_after, LpdState::Unstable);
    assert!(o5.phase_changed, "bottleneck shift is a phase change");
    let o6 = det.observe(None);
    assert_eq!(o6.r, o5.r, "empty interval repeats the last r");

    println!(
        "# worked example: unstable -> less-unstable -> stable (change) -> stable under 3x scaling"
    );
    println!("# (prev_hist frozen) -> unstable on bottleneck shift (change) -> r held over empty interval");
    println!("# all transitions verified; rt = {}", det.rt());
}
