//! Figure 13: local (per-region) phase changes for selected benchmarks at
//! sampling periods 45K / 450K / 900K cycles per interrupt.
//!
//! Reproduction target: the benchmarks whose *global* detector thrashes
//! at 45K (Figure 3) have near-zero *local* phase changes at every
//! period; a couple of genuinely-unstable regions (a short-lived gap
//! region ≈120 changes; ammp's very large region hovering just under the
//! r threshold) flap without disturbing anyone else.

use regmon_bench::{fig13_stats, figure_header, row, FIG13_BENCHMARKS, SWEEP_PERIODS};

fn main() {
    figure_header(
        "Figure 13",
        "LPD phase changes per tracked region, benchmark and sampling period",
    );
    println!("benchmark,region,pc45k,pc450k,pc900k");
    for name in FIG13_BENCHMARKS {
        let per_period: Vec<_> = SWEEP_PERIODS
            .iter()
            .map(|&p| fig13_stats(name, p))
            .collect();
        for (i, (label, _)) in per_period[0].iter().enumerate() {
            let changes: Vec<f64> = per_period
                .iter()
                .map(|stats| stats[i].1.phase_changes as f64)
                .collect();
            println!("{}", row(&format!("{name},{label}"), &changes));
        }
    }
    println!("# paper shape: almost all regions 0-13 changes at every period;");
    println!("# gap's short-lived region ~120 at 45K; ammp's large region is the aberration (large at 45K, small at 900K)");
}
