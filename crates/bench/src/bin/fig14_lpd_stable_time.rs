//! Figure 14: percentage of time each tracked region spends in a
//! locally-stable phase, per benchmark and sampling period.
//!
//! Reproduction target: high stable time for nearly every region at every
//! period — local phase detection "minimizes the dependency on sampling
//! period, and can be more robust for dynamic optimization."

use regmon_bench::{fig13_stats, figure_header, row, FIG13_BENCHMARKS, SWEEP_PERIODS};

fn main() {
    figure_header(
        "Figure 14",
        "% of intervals in LPD-stable phase per tracked region, benchmark and period",
    );
    println!("benchmark,region,stable45k_pct,stable450k_pct,stable900k_pct");
    let mut high = 0usize;
    let mut total = 0usize;
    for name in FIG13_BENCHMARKS {
        let per_period: Vec<_> = SWEEP_PERIODS
            .iter()
            .map(|&p| fig13_stats(name, p))
            .collect();
        for (i, (label, _)) in per_period[0].iter().enumerate() {
            let fractions: Vec<f64> = per_period
                .iter()
                .map(|stats| stats[i].1.stable_fraction() * 100.0)
                .collect();
            total += fractions.len();
            high += fractions.iter().filter(|&&f| f > 80.0).count();
            println!("{}", row(&format!("{name},{label}"), &fractions));
        }
    }
    println!("# {high}/{total} region-period points above 80% stable");
    println!("# paper: \"percentage of time spent in stable phase is quite high for most benchmarks and all sampling periods\"");
}
