//! Figure 15: cost of region monitoring (local phase detection) compared
//! to the centroid-based global detector.
//!
//! The paper reports, per benchmark: the overhead of each scheme as a
//! percentage of execution time, and the factor by which region
//! monitoring is slower than the centroid scheme. Reproduction: we run
//! both analyses over the same sampled intervals and measure their actual
//! wall-clock cost on this machine; virtual execution time is converted
//! to seconds at an assumed 1 GHz clock (the absolute percentages depend
//! on that choice; the *relative* picture — LPD tens-to-hundreds of times
//! the centroid cost, still far below 1% for most benchmarks, with the
//! region-heavy programs the expensive ones — is the target).

use std::time::{Duration, Instant};

use regmon::gpd::{CentroidDetector, GpdConfig};
use regmon::lpd::{LpdConfig, LpdManager};
use regmon::regions::{FormationConfig, IndexKind, RegionFormation, RegionMonitor};
use regmon::sampling::{Sampler, SamplingConfig};
use regmon::workload::suite;
use regmon_bench::figure_header;

/// Assumed clock of the simulated machine, for overhead percentages.
const CLOCK_HZ: f64 = 1.0e9;

fn main() {
    figure_header(
        "Figure 15",
        "overhead of global (centroid) vs local (region-monitoring) phase detection",
    );
    println!("benchmark,regions,gpd_overhead_pct,lpd_overhead_pct,times_slower");
    let cap: usize = if std::env::var_os("REGMON_FAST").is_some() {
        40
    } else {
        400
    };
    for name in suite::names() {
        let w = suite::by_name(name).expect("suite name");
        let config = SamplingConfig::new(45_000);

        let mut monitor = RegionMonitor::new(IndexKind::Linear);
        let formation = RegionFormation::new(FormationConfig::default());
        let mut gpd = CentroidDetector::new(GpdConfig::default());
        let mut lpd = LpdManager::new(LpdConfig::default());

        let mut gpd_time = Duration::ZERO;
        let mut lpd_time = Duration::ZERO;
        let mut intervals = 0usize;
        for interval in Sampler::new(&w, config).take(cap) {
            intervals += 1;
            // Cost of the global scheme: one centroid + state machine.
            let t = Instant::now();
            gpd.observe(&interval.samples);
            gpd_time += t.elapsed();

            // Cost of region monitoring: distribute samples to regions,
            // run every region's local detector (and occasionally form
            // regions — part of the same monitoring loop).
            let t = Instant::now();
            let report = monitor.distribute(&interval.samples);
            if formation.should_trigger(report.ucr_fraction()) {
                formation.form(
                    w.binary(),
                    report.unattributed_samples(),
                    &mut monitor,
                    interval.index,
                );
            }
            lpd.observe_interval(&monitor, &report);
            lpd_time += t.elapsed();
        }

        let virtual_secs = intervals as f64 * config.interval_cycles() as f64 / CLOCK_HZ;
        let gpd_pct = gpd_time.as_secs_f64() / virtual_secs * 100.0;
        let lpd_pct = lpd_time.as_secs_f64() / virtual_secs * 100.0;
        let factor = lpd_time.as_secs_f64() / gpd_time.as_secs_f64().max(1e-12);
        println!(
            "{name},{},{gpd_pct:.5},{lpd_pct:.5},{factor:.0}",
            monitor.len()
        );
    }
    println!("# paper: LPD is tens-to-hundreds of times slower than the centroid scheme but < 1% of execution for most programs;");
    println!("# the region-heavy programs (gcc, crafty, parser, vortex, apsi) are the expensive ones, and the cost can move to a separate thread");
}
