//! Figure 16: interval-tree sample attribution vs the simple list.
//!
//! The paper replaces the O(n)-per-sample region list with an interval
//! tree (O(log n + k)) and reports per-benchmark cost normalized to the
//! list scheme: slightly above 1 for programs with few regions (tree
//! maintenance overhead), well below 1 for the region-heavy ones (gcc,
//! crafty, fma3d, parser, bzip2).

use std::time::{Duration, Instant};

use regmon::regions::{FormationConfig, IndexKind, RegionFormation, RegionMonitor};
use regmon::sampling::{Sampler, SamplingConfig};
use regmon::workload::suite;
use regmon_bench::figure_header;

fn attribution_time(
    w: &regmon::workload::Workload,
    kind: IndexKind,
    cap: usize,
) -> (Duration, usize) {
    let config = SamplingConfig::new(45_000);
    let mut monitor = RegionMonitor::new(kind);
    let formation = RegionFormation::new(FormationConfig::default());
    let mut spent = Duration::ZERO;
    for interval in Sampler::new(w, config).take(cap) {
        let t = Instant::now();
        let report = monitor.distribute(&interval.samples);
        spent += t.elapsed();
        // Formation (untimed) keeps the region set identical across kinds.
        if formation.should_trigger(report.ucr_fraction()) {
            formation.form(
                w.binary(),
                report.unattributed_samples(),
                &mut monitor,
                interval.index,
            );
        }
    }
    (spent, monitor.len())
}

fn main() {
    figure_header(
        "Figure 16",
        "interval-tree attribution cost normalized to the simple-list scheme",
    );
    println!("benchmark,regions,list_ms,tree_ms,factor");
    let cap: usize = if std::env::var_os("REGMON_FAST").is_some() {
        40
    } else {
        400
    };
    for name in suite::names() {
        let w = suite::by_name(name).expect("suite name");
        let (list, regions) = attribution_time(&w, IndexKind::Linear, cap);
        let (tree, regions2) = attribution_time(&w, IndexKind::IntervalTree, cap);
        assert_eq!(regions, regions2, "index choice must not change formation");
        let factor = tree.as_secs_f64() / list.as_secs_f64().max(1e-12);
        println!(
            "{name},{regions},{:.3},{:.3},{factor:.3}",
            list.as_secs_f64() * 1e3,
            tree.as_secs_f64() * 1e3
        );
    }
    println!("# paper: factor slightly above 1 for few-region programs, significantly below 1 for region-heavy ones");
}
