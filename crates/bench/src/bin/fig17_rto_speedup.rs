//! Figure 17: speedup of the locally-gated optimizer (RTO_LPD) over the
//! globally-gated one (RTO_ORIG), where the original RTO unpatches traces
//! whenever its (centroid) phase is unstable.
//!
//! Benchmarks: 181.mcf, 172.mgrid, 254.gap, 191.fma3d at sampling periods
//! 100K / 800K / 1.5M cycles per interrupt. Reproduction targets (paper):
//! mcf's advantage *grows* with the period (≈24% at 1.5M — GPD stays
//! unstable for long stretches); gap's *shrinks* (≈9.5% at 100K, ≈4.9% at
//! 1.5M — GPD stabilizes at long periods); mgrid ≈ 0 at every period;
//! fma3d small positive.

use regmon::rto::{simulate, speedup_percent, RtoConfig, RtoMode};
use regmon::workload::suite;
use regmon_bench::{figure_header, RTO_PERIODS};

fn main() {
    figure_header(
        "Figure 17",
        "speedup of RTO_LPD over RTO_ORIG (unpatch-on-unstable), percent",
    );
    println!("benchmark,speedup100k_pct,speedup800k_pct,speedup1500k_pct");
    let fast = std::env::var_os("REGMON_FAST").is_some();
    for name in ["181.mcf", "172.mgrid", "254.gap", "191.fma3d"] {
        let w = suite::by_name(name).expect("suite name");
        let mut cols = Vec::new();
        for &period in &RTO_PERIODS {
            let mut config = RtoConfig::new(period);
            if fast {
                config.max_intervals = Some(40);
            }
            let orig = simulate(&w, &config, RtoMode::Global);
            let lpd = simulate(&w, &config, RtoMode::Local);
            let oracle = simulate(&w, &config, RtoMode::Oracle);
            cols.push((
                speedup_percent(&orig, &lpd),
                orig.detector_stable_fraction,
                lpd.detector_stable_fraction,
                speedup_percent(&orig, &oracle),
            ));
        }
        println!("{name},{:.2},{:.2},{:.2}", cols[0].0, cols[1].0, cols[2].0);
        println!(
            "#   {name}: stable-fraction GPD {:.2}/{:.2}/{:.2} vs LPD {:.2}/{:.2}/{:.2}; oracle bound {:.2}/{:.2}/{:.2}%",
            cols[0].1, cols[1].1, cols[2].1, cols[0].2, cols[1].2, cols[2].2,
            cols[0].3, cols[1].3, cols[2].3
        );
    }
    println!("# paper: mcf ≈5/15/23.8, mgrid ≈0, gap ≈9.5/7/4.9, fma3d small positive");
}
