//! Emits the fleet ingestion-transport benchmark matrix as JSON.
//!
//! Measures the queue transport of the fleet ingest path in isolation —
//! the cost of moving interval payloads from the producing driver to
//! the shard workers — at several tenant/shard scales. Session compute
//! (attribution, detection) is benchmarked separately
//! (`BENCH_attribution.json`, `benches/detectors.rs`); here the
//! consumers only account for the arriving intervals, so the numbers
//! expose the synchronisation and message overhead that PR 3's fast
//! path attacks. Two transports are timed:
//!
//! * `legacy` — the seed's shard queue, reconstructed exactly: a
//!   `Mutex<VecDeque>` bounded queue that issues an **unconditional**
//!   condvar notification on every push *and* every pop, carrying one
//!   interval per message. This is the baseline the ISSUE's ≥3×
//!   acceptance criterion is measured against.
//! * `ring` — today's `RingQueue`: fixed-capacity ring storage,
//!   waiter-gated notifications (uncontended pushes are syscall-free)
//!   and `--batch N` interval coalescing (one message per N intervals
//!   of one tenant, exactly like the driver's shipping policy).
//! * `wire` — the `regmon serve` ingest path: pre-encoded
//!   `regmon-wire-v1` Batch frames are CRC-checked and decoded on the
//!   producer side (as a connection thread would) and the decoded
//!   intervals travel through the same `RingQueue`s. The delta against
//!   `ring` is the out-of-process wire-codec tax.
//!
//! Usage: `fleet_matrix [OUTPUT.json]` (default `BENCH_fleet.json` in
//! the current directory). The `headline` object compares the legacy
//! per-interval transport against ring/batch-32 at the reference cell
//! (64 tenants over 8 shards) and is what CI's regression guard reads.
//! `QUICK_BENCH=1` (or the criterion-shim's `--smoke`) shrinks reps for
//! CI smoke runs.

use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use regmon_binary::Addr;
use regmon_cpd::{CpdHub, Metric, SeriesKey, StreamConfig, NO_REGION};
use regmon_fleet::{Droppable, QueuePolicy, RingQueue};
use regmon_sampling::{Interval, PcSample};
use regmon_serve::wire::{read_frame, Frame, WireDialect};
use regmon_stats::{simd, SimdLevel};

/// Samples per synthetic interval payload (the payload travels by move,
/// so this sets consumer accounting work, not copy volume).
const PAYLOAD_PCS: usize = 64;
const TENANT_COUNTS: [usize; 2] = [16, 64];
const SHARD_COUNTS: [usize; 2] = [2, 8];
const BATCHES: [usize; 3] = [1, 8, 32];
const QUEUE_DEPTH: usize = 64;
const HEADLINE_TENANTS: usize = 64;
const HEADLINE_SHARDS: usize = 8;
const HEADLINE_BATCH: usize = 32;

/// The message shape of the fleet ingest path, minus session state.
enum Msg {
    /// One tenant interval (tenant tag, PC payload).
    Interval(u32, Vec<u64>),
    /// A coalesced chunk of one tenant's intervals.
    Batch(u32, Vec<Vec<u64>>),
    /// Intervals decoded from a `regmon-wire-v1` Batch frame.
    Wire(u32, Vec<Interval>),
}

impl Droppable for Msg {
    fn droppable(&self) -> bool {
        true
    }

    fn units(&self) -> Option<usize> {
        match self {
            Msg::Interval(..) => Some(1),
            Msg::Batch(_, chunk) => Some(chunk.len()),
            Msg::Wire(_, intervals) => Some(intervals.len()),
        }
    }
}

fn payload(tenant: u32, seq: usize) -> Vec<u64> {
    let seed = u64::from(tenant)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq as u64);
    (0..PAYLOAD_PCS as u64)
        .map(|k| seed.wrapping_add(k * 4))
        .collect()
}

/// Wrapping checksum over a payload: the samples are full-range `u64`s,
/// so a plain `sum::<u64>()` overflows (and aborts debug builds —
/// consumer panics would deadlock the blocked producer).
fn checksum(pcs: &[u64]) -> u64 {
    pcs.iter().fold(0u64, |acc, &pc| acc.wrapping_add(pc))
}

/// Consumer-side accounting shared by both transports: touch every
/// interval in the message and count it.
fn account(msg: &Msg) -> usize {
    match msg {
        Msg::Interval(tag, pcs) => {
            black_box((*tag, checksum(pcs)));
            1
        }
        Msg::Batch(tag, chunk) => {
            for pcs in chunk {
                black_box((*tag, checksum(pcs)));
            }
            chunk.len()
        }
        Msg::Wire(tag, intervals) => {
            for interval in intervals {
                let sum = interval
                    .samples
                    .iter()
                    .fold(0u64, |acc, s| acc.wrapping_add(s.addr.get()));
                black_box((*tag, sum));
            }
            intervals.len()
        }
    }
}

// ---------------------------------------------------------------------------
// The seed's transport: Mutex<VecDeque> + unconditional notifications
// ---------------------------------------------------------------------------

struct LegacyInner {
    buf: VecDeque<Msg>,
    closed: bool,
}

/// The pre-PR-3 shard queue, byte-for-byte in behaviour: every push and
/// every pop hits a condvar `notify_one` whether or not anyone waits.
struct LegacyQueue {
    inner: Mutex<LegacyInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl LegacyQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LegacyInner {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn push(&self, msg: Msg) {
        let mut inner = self.inner.lock().expect("legacy queue poisoned");
        while inner.buf.len() >= self.capacity {
            inner = self.not_full.wait(inner).expect("legacy queue poisoned");
        }
        inner.buf.push_back(msg);
        drop(inner);
        self.not_empty.notify_one(); // unconditional: the herding cost
    }

    fn pop(&self) -> Option<Msg> {
        let mut inner = self.inner.lock().expect("legacy queue poisoned");
        loop {
            if let Some(msg) = inner.buf.pop_front() {
                drop(inner);
                self.not_full.notify_one(); // unconditional
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("legacy queue poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("legacy queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

// ---------------------------------------------------------------------------
// One timed ingest run
// ---------------------------------------------------------------------------

/// One cell of the ingest matrix: fleet shape + batching factor.
#[derive(Clone, Copy)]
struct Shape {
    tenants: usize,
    shards: usize,
    batch: usize,
    per_tenant: usize,
}

/// Ships `per_tenant` intervals for each of `tenants` tenants through
/// `shards` queues (tenant `t` homes on shard `t % shards`, coalesced
/// in per-tenant chunks of `batch` like the driver) and waits for the
/// sink consumers to account every interval. Returns elapsed seconds.
fn run_ingest<Q, Push, Pop, Close>(
    shape: Shape,
    queues: Vec<Arc<Q>>,
    push: Push,
    pop: Pop,
    close: Close,
) -> f64
where
    Q: Send + Sync + 'static,
    Push: Fn(&Q, Msg),
    Pop: Fn(&Q) -> Option<Msg> + Send + Copy + 'static,
    Close: Fn(&Q),
{
    let consumers: Vec<thread::JoinHandle<usize>> = queues
        .iter()
        .map(|q| {
            let q = Arc::clone(q);
            thread::spawn(move || {
                let mut seen = 0usize;
                while let Some(msg) = pop(&q) {
                    seen += account(&msg);
                }
                seen
            })
        })
        .collect();

    let start = Instant::now();
    let rounds = shape.per_tenant.div_ceil(shape.batch);
    for round in 0..rounds {
        for t in 0..shape.tenants {
            let shard = t % shape.shards;
            let produced = round * shape.batch;
            let want = shape.batch.min(shape.per_tenant - produced);
            if want == 0 {
                continue;
            }
            let tag = u32::try_from(t).expect("tenant tag");
            let msg = if want == 1 {
                Msg::Interval(tag, payload(tag, produced))
            } else {
                Msg::Batch(tag, (0..want).map(|k| payload(tag, produced + k)).collect())
            };
            push(&queues[shard], msg);
        }
    }
    for q in &queues {
        close(q);
    }
    let seen: usize = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer panicked"))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        seen,
        shape.tenants * shape.per_tenant,
        "transport lost intervals"
    );
    elapsed
}

fn run_legacy(shape: Shape) -> f64 {
    let queues: Vec<Arc<LegacyQueue>> = (0..shape.shards)
        .map(|_| Arc::new(LegacyQueue::new(QUEUE_DEPTH)))
        .collect();
    run_ingest(
        Shape { batch: 1, ..shape },
        queues,
        LegacyQueue::push,
        LegacyQueue::pop,
        LegacyQueue::close,
    )
}

fn run_ring(shape: Shape) -> f64 {
    let queues: Vec<Arc<RingQueue<Msg>>> = (0..shape.shards)
        .map(|_| Arc::new(RingQueue::new(QUEUE_DEPTH)))
        .collect();
    run_ingest(
        shape,
        queues,
        |q, msg| q.push(msg, QueuePolicy::Block).expect("queue open"),
        RingQueue::pop,
        RingQueue::close,
    )
}

/// One synthetic interval for the wire transport: the same PC payload
/// as the in-memory transports, carried as real `PcSample`s.
fn wire_interval(tenant: u32, seq: usize) -> Interval {
    let base = seq as u64 * PAYLOAD_PCS as u64;
    Interval {
        index: seq,
        start_cycle: base,
        end_cycle: base + PAYLOAD_PCS as u64,
        samples: payload(tenant, seq)
            .into_iter()
            .enumerate()
            .map(|(k, pc)| PcSample {
                addr: Addr::new(pc),
                cycle: base + k as u64,
            })
            .collect(),
    }
}

/// Pre-encodes the cell's whole production schedule as wire frames in
/// the given dialect, in the exact (round, tenant) order `run_ingest`
/// ships: one Batch frame per message, tagged with its destination
/// shard. Encoding is producer work and stays outside the timed region;
/// decoding is what the serve ingest path pays per message and is timed
/// in [`run_wire`].
fn encode_wire_frames(shape: Shape, dialect: WireDialect) -> Vec<(usize, Vec<u8>)> {
    let mut frames = Vec::new();
    let rounds = shape.per_tenant.div_ceil(shape.batch);
    for round in 0..rounds {
        for t in 0..shape.tenants {
            let produced = round * shape.batch;
            let want = shape.batch.min(shape.per_tenant - produced);
            if want == 0 {
                continue;
            }
            let tag = u32::try_from(t).expect("tenant tag");
            let frame = Frame::Batch {
                tenant: tag,
                intervals: (0..want)
                    .map(|k| wire_interval(tag, produced + k))
                    .collect(),
            };
            frames.push((t % shape.shards, dialect.encode_frame(&frame)));
        }
    }
    frames
}

/// The serve ingest path: CRC-check + decode each pre-encoded frame
/// (connection-thread work) and ship the decoded intervals through the
/// ring queues. Returns elapsed seconds.
fn run_wire(shape: Shape, frames: &[(usize, Vec<u8>)]) -> f64 {
    let queues: Vec<Arc<RingQueue<Msg>>> = (0..shape.shards)
        .map(|_| Arc::new(RingQueue::new(QUEUE_DEPTH)))
        .collect();
    let consumers: Vec<thread::JoinHandle<usize>> = queues
        .iter()
        .map(|q| {
            let q = Arc::clone(q);
            thread::spawn(move || {
                let mut seen = 0usize;
                while let Some(msg) = q.pop() {
                    seen += account(&msg);
                }
                seen
            })
        })
        .collect();

    let start = Instant::now();
    for (shard, bytes) in frames {
        let frame = read_frame(&mut bytes.as_slice())
            .expect("pre-encoded frame decodes")
            .expect("one frame per message");
        let Frame::Batch { tenant, intervals } = frame else {
            unreachable!("only Batch frames are encoded")
        };
        queues[*shard]
            .push(Msg::Wire(tenant, intervals), QueuePolicy::Block)
            .expect("queue open");
    }
    for q in &queues {
        q.close();
    }
    let seen: usize = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer panicked"))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        seen,
        shape.tenants * shape.per_tenant,
        "wire transport lost intervals"
    );
    elapsed
}

// ---------------------------------------------------------------------------
// Connection scaling: the live serve loop under idle fan-in
// ---------------------------------------------------------------------------

/// Pre-encoded single-session wire-v1 streams (Hello + Admit +
/// batch-32 frames + Finish) for the connection-scaling rows. v1 is
/// deliberate: v1 producers are one-way (no Hello reply to wait for),
/// so the rows time the serve loop's connection handling, not the
/// codec or the negotiation round-trip.
#[cfg(unix)]
fn encode_session_streams(active: usize, per_conn: usize) -> Vec<Vec<u8>> {
    use regmon_serve::wire::AdmitFrame;
    let w = regmon_workload::suite::by_name("172.mgrid").expect("bundled workload");
    let config = regmon::SessionConfig::new(45_000);
    let intervals: Vec<Interval> = regmon_sampling::Sampler::new(&w, config.sampling)
        .take(per_conn)
        .collect();
    (0..active)
        .map(|t| {
            let mut bytes = Frame::Hello { version: 1 }.encode();
            bytes.extend(
                Frame::Admit(Box::new(AdmitFrame {
                    tenant: 0,
                    name: format!("172.mgrid#{t}"),
                    workload: "172.mgrid".to_string(),
                    config: config.clone(),
                    max_intervals: per_conn as u64,
                }))
                .encode(),
            );
            for chunk in intervals.chunks(HEADLINE_BATCH) {
                bytes.extend(
                    Frame::Batch {
                        tenant: 0,
                        intervals: chunk.to_vec(),
                    }
                    .encode(),
                );
            }
            bytes.extend(Frame::Finish { tenant: 0 }.encode());
            bytes
        })
        .collect()
}

/// Drives one live serve run: `idle` connections that never send a
/// byte plus one active producer per stream, against a unix-socket
/// server in the given mode. Returns elapsed seconds and the server's
/// peak handler count (threads, or event-loop workers).
/// Connects with retries: under the 256-connection fan-in the listen
/// backlog (128 on Linux) can fill faster than the accept loop drains
/// it, and a bounced connect is congestion, not failure.
#[cfg(unix)]
fn connect_retry(sock: &std::path::Path) -> std::os::unix::net::UnixStream {
    for _ in 0..500 {
        match std::os::unix::net::UnixStream::connect(sock) {
            Ok(stream) => return stream,
            Err(_) => thread::sleep(std::time::Duration::from_millis(2)),
        }
    }
    panic!("could not connect to {}", sock.display());
}

#[cfg(unix)]
fn run_connection_scaling(
    mode: regmon_serve::ServeMode,
    idle: usize,
    streams: &[Vec<u8>],
) -> (f64, usize) {
    use std::io::Write as _;
    use std::os::unix::net::UnixStream;
    let sock = std::env::temp_dir().join(format!(
        "regmon-fleet-scale-{}-{}.sock",
        std::process::id(),
        mode.label()
    ));
    let options = regmon_serve::ServeOptions {
        shards: HEADLINE_SHARDS,
        queue_depth: QUEUE_DEPTH,
        expect_sessions: streams.len(),
        mode,
        event_workers: 4,
        ..Default::default()
    };
    let server = {
        let sock = sock.clone();
        thread::spawn(move || regmon_serve::serve_unix(&sock, options).expect("serve run"))
    };
    for _ in 0..2000 {
        if sock.exists() {
            break;
        }
        thread::sleep(std::time::Duration::from_millis(2));
    }
    let idles: Vec<UnixStream> = (0..idle).map(|_| connect_retry(&sock)).collect();
    let start = Instant::now();
    let senders: Vec<thread::JoinHandle<()>> = streams
        .iter()
        .map(|bytes| {
            let bytes = bytes.clone();
            let sock = sock.clone();
            thread::spawn(move || {
                let mut stream = connect_retry(&sock);
                stream.write_all(&bytes).expect("stream session");
                stream.flush().expect("flush session");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender panicked");
    }
    // Idle connections must reach EOF before the serve loop can drain.
    drop(idles);
    let report = server.join().expect("serve thread panicked");
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        report.errors.is_empty(),
        "serve errors: {:?}",
        report.errors
    );
    assert_eq!(report.sessions.len(), streams.len(), "sessions lost");
    (elapsed, report.peak_handlers)
}

// ---------------------------------------------------------------------------
// The seed's wire codec, reconstructed as the decode baseline
// ---------------------------------------------------------------------------

/// The seed's byte-at-a-time CRC-32 (IEEE) — the loop-carried-dependency
/// form the slice-by-8 kernel in `regmon-serve` replaced. Checksum
/// values are identical; only the throughput differs.
fn legacy_crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        const POLY: u32 = 0xEDB8_8320;
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut state = 0xFFFF_FFFFu32;
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state ^ 0xFFFF_FFFF
}

/// The seed's Batch-frame decode, reconstructed exactly: bytewise CRC
/// over the body plus a per-sample cursor loop (two bounds-checked
/// reads per sample) instead of today's prevalidated bulk copy. This is
/// the baseline the committed `wire_decode_speedup` measures against,
/// the same way `LegacyQueue` anchors the transport rows.
fn legacy_decode_batch(bytes: &[u8]) -> (u32, Vec<Interval>) {
    struct Cur<'a> {
        bytes: &'a [u8],
        pos: usize,
    }
    impl Cur<'_> {
        fn u32(&mut self) -> u32 {
            let v = u32::from_le_bytes(
                self.bytes[self.pos..self.pos + 4]
                    .try_into()
                    .expect("four bytes"),
            );
            self.pos += 4;
            v
        }
        fn u64(&mut self) -> u64 {
            let v = u64::from_le_bytes(
                self.bytes[self.pos..self.pos + 8]
                    .try_into()
                    .expect("eight bytes"),
            );
            self.pos += 8;
            v
        }
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("len")) as usize;
    let want = u32::from_le_bytes(bytes[4..8].try_into().expect("crc"));
    let body = &bytes[8..8 + len];
    assert_eq!(legacy_crc32(body), want, "reconstructed CRC mismatch");
    assert_eq!(body[0], 3, "expected a Batch frame");
    let mut cur = Cur {
        bytes: body,
        pos: 1,
    };
    let tenant = cur.u32();
    let count = cur.u32() as usize;
    let mut intervals = Vec::with_capacity(count);
    for _ in 0..count {
        let index = cur.u64() as usize;
        let start_cycle = cur.u64();
        let end_cycle = cur.u64();
        let nsamples = cur.u32() as usize;
        let mut samples = Vec::with_capacity(nsamples);
        for _ in 0..nsamples {
            samples.push(PcSample {
                addr: Addr::new(cur.u64()),
                cycle: cur.u64(),
            });
        }
        intervals.push(Interval {
            index,
            start_cycle,
            end_cycle,
            samples,
        });
    }
    assert_eq!(cur.pos, body.len(), "trailing bytes in Batch frame");
    (tenant, intervals)
}

/// One timed pass of the fleet's change-point hub: the exact shape the
/// `--cpd` driver feeds it — one UCR point per tenant per round, with a
/// step regression planted in every eighth tenant halfway through so
/// the detection scans (the expensive path: windowed E-divisive with a
/// permutation test every `detect_every` points) actually fire and
/// find something. A deterministic sub-1% wobble keeps the flat series
/// from being degenerate constants. Returns elapsed seconds.
fn run_cpd(tenants: usize, rounds: usize) -> f64 {
    let mut hub = CpdHub::new(StreamConfig::default());
    let start = Instant::now();
    for round in 0..rounds {
        for t in 0..tenants {
            let key = SeriesKey {
                tenant: t as u64,
                region: NO_REGION,
                metric: Metric::Ucr,
            };
            let base = if t % 8 == 3 && round >= rounds / 2 {
                0.9
            } else {
                0.1
            };
            let h = (round as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(t as u64)
                .wrapping_mul(0xD1B5_4A32_D192_ED03);
            let wobble = (h >> 40) as f64 / (1u64 << 24) as f64 * 0.005;
            hub.observe(key, round as u64, base + wobble);
        }
    }
    hub.flush();
    black_box(hub.take_detections());
    start.elapsed().as_secs_f64()
}

/// Median throughput in million intervals per second over `reps` runs.
fn median_mips<F: FnMut() -> f64>(total_intervals: usize, reps: usize, mut run: F) -> f64 {
    run(); // warmup
    let mut rates: Vec<f64> = (0..reps)
        .map(|_| total_intervals as f64 / run() / 1.0e6)
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

struct Cell {
    transport: &'static str,
    batch: usize,
    tenants: usize,
    shards: usize,
    mips: f64,
}

fn fmt_cell(c: &Cell) -> String {
    format!(
        "    {{\"transport\": \"{}\", \"batch\": {}, \"tenants\": {}, \"shards\": {}, \
         \"m_intervals_per_sec\": {:.3}}}",
        c.transport, c.batch, c.tenants, c.shards, c.mips
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let quick = std::env::var_os("QUICK_BENCH").is_some();
    let (reps, per_tenant) = if quick { (3, 120) } else { (11, 600) };

    let mut cells: Vec<Cell> = Vec::new();
    for &tenants in &TENANT_COUNTS {
        for &shards in &SHARD_COUNTS {
            let total = tenants * per_tenant;
            let shape = Shape {
                tenants,
                shards,
                batch: 1,
                per_tenant,
            };
            let mips = median_mips(total, reps, || run_legacy(shape));
            cells.push(Cell {
                transport: "legacy",
                batch: 1,
                tenants,
                shards,
                mips,
            });
            for &batch in &BATCHES {
                let shape = Shape { batch, ..shape };
                let mips = median_mips(total, reps, || run_ring(shape));
                cells.push(Cell {
                    transport: "ring",
                    batch,
                    tenants,
                    shards,
                    mips,
                });
            }
            for &batch in &BATCHES {
                let shape = Shape { batch, ..shape };
                let frames = encode_wire_frames(shape, WireDialect::V1);
                let mips = median_mips(total, reps, || run_wire(shape, &frames));
                cells.push(Cell {
                    transport: "wire",
                    batch,
                    tenants,
                    shards,
                    mips,
                });
            }
            for &batch in &BATCHES {
                let shape = Shape { batch, ..shape };
                let frames = encode_wire_frames(shape, WireDialect::v2(false));
                let mips = median_mips(total, reps, || run_wire(shape, &frames));
                cells.push(Cell {
                    transport: "wire2",
                    batch,
                    tenants,
                    shards,
                    mips,
                });
            }
        }
    }

    // Wire-decode microbench: the serve connection-thread codec in
    // isolation — CRC check, frame parse, and the bulk sample decode of
    // the pre-encoded headline frames — with no queues or consumer
    // threads, so the rows isolate the codec the kernel port targets.
    // The baseline is the seed's codec reconstructed below (bytewise
    // CRC + per-sample cursor decode), and every supported SIMD level
    // of today's codec is timed within the same run (forced via
    // `simd::force`), which keeps the committed speedup meaningful
    // across hosts of different absolute speed. The forced-scalar row
    // shows the bulk-decode restructuring alone; the vector rows add
    // the SIMD copies, which must match it byte-for-byte.
    let decode_shape = Shape {
        tenants: HEADLINE_TENANTS,
        shards: HEADLINE_SHARDS,
        batch: HEADLINE_BATCH,
        per_tenant,
    };
    let decode_frames = encode_wire_frames(decode_shape, WireDialect::V1);
    let decode_total = HEADLINE_TENANTS * per_tenant;
    let decode_all = |frames: &[(usize, Vec<u8>)]| -> f64 {
        let start = Instant::now();
        let mut seen = 0usize;
        for (_, bytes) in frames {
            let frame = read_frame(&mut bytes.as_slice())
                .expect("pre-encoded frame decodes")
                .expect("one frame per message");
            let Frame::Batch { intervals, .. } = frame else {
                unreachable!("only Batch frames are encoded")
            };
            seen += intervals.len();
            black_box(intervals);
        }
        assert_eq!(seen, decode_total, "decode lost intervals");
        start.elapsed().as_secs_f64()
    };
    // The reconstructed seed codec must produce the exact intervals the
    // current decoder does — checked once, outside the timed region.
    {
        let (_, bytes) = &decode_frames[0];
        let (legacy_tenant, legacy_intervals) = legacy_decode_batch(bytes);
        let Frame::Batch { tenant, intervals } = read_frame(&mut bytes.as_slice())
            .expect("pre-encoded frame decodes")
            .expect("one frame per message")
        else {
            unreachable!("only Batch frames are encoded")
        };
        assert_eq!(legacy_tenant, tenant, "legacy codec tenant mismatch");
        assert_eq!(
            legacy_intervals, intervals,
            "legacy codec interval mismatch"
        );
    }
    let decode_legacy_mips = median_mips(decode_total, reps, || {
        let start = Instant::now();
        let mut seen = 0usize;
        for (_, bytes) in &decode_frames {
            let (tenant, intervals) = legacy_decode_batch(bytes);
            seen += intervals.len();
            black_box((tenant, intervals));
        }
        assert_eq!(seen, decode_total, "legacy decode lost intervals");
        start.elapsed().as_secs_f64()
    });
    let level_before = simd::active();
    let mut decode_rows: Vec<(SimdLevel, f64)> = Vec::new();
    for level in SimdLevel::ALL {
        if simd::force(level) != level {
            continue; // level not supported on this host
        }
        let mips = median_mips(decode_total, reps, || decode_all(&decode_frames));
        decode_rows.push((level, mips));
    }
    simd::force(level_before);
    let decode_scalar_mips = decode_rows
        .iter()
        .find(|(level, _)| *level == SimdLevel::Scalar)
        .expect("scalar decode row")
        .1;
    let &(decode_level, decode_simd_mips) = decode_rows.last().expect("decode rows");
    let decode_speedup = decode_simd_mips / decode_legacy_mips;

    let pick = |transport: &str, batch: usize| -> f64 {
        cells
            .iter()
            .find(|c| {
                c.transport == transport
                    && c.batch == batch
                    && c.tenants == HEADLINE_TENANTS
                    && c.shards == HEADLINE_SHARDS
            })
            .expect("headline cell measured")
            .mips
    };
    let legacy_mips = pick("legacy", 1);
    let ring_mips = pick("ring", HEADLINE_BATCH);
    let wire_mips = pick("wire", HEADLINE_BATCH);
    let wire2_mips = pick("wire2", HEADLINE_BATCH);
    let speedup = ring_mips / legacy_mips;
    // Wire-v2 vs wire-v1 at the headline cell, within-run: the ratio
    // the regression guard gates. The delta-encoded columnar frames
    // carry ~2 bytes/sample instead of 16, so both the slice-by-8 CRC
    // and the bulk column decode sweep far fewer bytes per interval.
    let wire_v2_speedup = wire2_mips / wire_mips;
    // LZ-wrapped v2 at the same cell — informational only: compression
    // trades decode throughput for wire bytes, so it carries no floor.
    let wire2z_frames = encode_wire_frames(decode_shape, WireDialect::v2(true));
    let wire2z_mips = median_mips(decode_total, reps, || {
        run_wire(decode_shape, &wire2z_frames)
    });
    drop(wire2z_frames);

    // Telemetry overhead on the headline cell: the ring transport with
    // the metric registry disabled (one relaxed-atomic branch per hook)
    // vs enabled (live counters + batch histogram + journal). Off/on
    // reps run as interleaved pairs so both legs of a pair see the same
    // host conditions, and each pair yields its own overhead estimate
    // (off rate vs on rate, negative noise clamped to zero). The guard
    // gates the **minimum** across pairs: scheduler interference on a
    // shared host only ever slows one leg down, inflating that pair's
    // estimate, so the minimum is the low-variance reading of what the
    // hooks actually cost, while the median is recorded alongside as
    // the honest typical-weather figure. A real hook regression (an
    // accidental lock or syscall on the hot path) inflates *every*
    // pair, minimum included.
    // The estimator ignores QUICK_BENCH sizing: it measures one shape,
    // so full-length runs and a fixed pair budget cost well under a
    // second, while quick-mode runs are too short (~1 ms on a small
    // host) to resolve a few-percent-budget gate above scheduler
    // jitter.
    let estimator_per_tenant = 600;
    let headline_shape = Shape {
        tenants: HEADLINE_TENANTS,
        shards: HEADLINE_SHARDS,
        batch: HEADLINE_BATCH,
        per_tenant: estimator_per_tenant,
    };
    let headline_total = HEADLINE_TENANTS * estimator_per_tenant;
    run_ring(headline_shape); // warmup (disabled path)
    regmon_telemetry::set_enabled(true);
    run_ring(headline_shape); // warmup (stripe + journal thread-locals)
    regmon_telemetry::set_enabled(false);
    let pairs = 25;
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut overheads = Vec::with_capacity(pairs);
    for pair in 0..pairs {
        // Alternate which side goes first so within-pair ordering
        // effects (warmed allocator, scheduler state left by the
        // previous run's threads) cancel across the series.
        let on_first = pair % 2 == 1;
        let mut rate_off = 0.0f64;
        let mut rate_on = 0.0f64;
        for leg in 0..2 {
            let enabled = (leg == 0) == on_first;
            regmon_telemetry::set_enabled(enabled);
            let rate = headline_total as f64 / run_ring(headline_shape) / 1.0e6;
            if enabled {
                rate_on = rate;
                best_on = best_on.max(rate);
            } else {
                rate_off = rate;
                best_off = best_off.max(rate);
            }
        }
        regmon_telemetry::set_enabled(false);
        overheads.push(((rate_off / rate_on - 1.0) * 100.0).max(0.0));
    }
    regmon_telemetry::reset();
    overheads.sort_by(f64::total_cmp);
    let telemetry_off = best_off;
    let telemetry_on = best_on;
    let telemetry_overhead_min_pct = overheads[0];
    let telemetry_overhead_median_pct = overheads[overheads.len() / 2];

    // Change-point detection throughput: the `--cpd` hub at the
    // headline tenant count, measured in points (observations) per
    // second. The guarded figure is what bounds how many telemetry
    // series a fleet can watch per round before detection becomes the
    // bottleneck rather than ingest.
    let cpd_rounds = per_tenant;
    let cpd_total = HEADLINE_TENANTS * cpd_rounds;
    let cpd_mpps = median_mips(cpd_total, reps, || run_cpd(HEADLINE_TENANTS, cpd_rounds));

    // Connection scaling: a live `regmon serve` over a unix socket,
    // many mostly-idle connections plus a core of active producers, in
    // both serve modes. These rows time the whole server (wire decode +
    // ring transport + session compute), so their absolute rates sit
    // far below the transport-only cells; the readings that matter are
    // the threads-vs-events delta and peak_handlers (one thread per
    // connection vs the fixed event-loop worker pool).
    #[cfg(unix)]
    let scaling_rows: Vec<String> = {
        let (idle, active, per_conn) = if quick { (32, 8, 20) } else { (256, 64, 60) };
        let streams = encode_session_streams(active, per_conn);
        let scale_total = active * per_conn;
        let scale_reps = if quick { 1 } else { 3 };
        [
            regmon_serve::ServeMode::Threads,
            regmon_serve::ServeMode::Events,
        ]
        .iter()
        .map(|&mode| {
            run_connection_scaling(mode, idle, &streams); // warmup
            let mut rates = Vec::new();
            let mut peak = 0usize;
            for _ in 0..scale_reps {
                let (elapsed, p) = run_connection_scaling(mode, idle, &streams);
                rates.push(scale_total as f64 / elapsed / 1.0e6);
                peak = peak.max(p);
            }
            rates.sort_by(f64::total_cmp);
            let mips = rates[rates.len() / 2];
            format!(
                "    {{\"mode\": \"{}\", \"idle_connections\": {idle}, \
                 \"active_connections\": {active}, \"intervals_per_connection\": {per_conn}, \
                 \"m_intervals_per_sec\": {mips:.3}, \"peak_handlers\": {peak}}}",
                mode.label()
            )
        })
        .collect()
    };
    #[cfg(not(unix))]
    let scaling_rows: Vec<String> = Vec::new();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"regmon-fleet-matrix-v1\",\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"intervals_per_tenant\": {per_tenant},\n"));
    json.push_str(
        "  \"note\": \"median million intervals/sec through the shard ingest transport; \
         legacy = Mutex<VecDeque> + unconditional notify, one interval per message \
         (the seed's shard queue); ring = RingQueue with waiter-gated notifies and \
         per-tenant interval batching (PR 3 fast path); wire = regmon-wire-v1 frame \
         CRC-check + decode on the producer side feeding the same ring queues \
         (the serve-mode ingest path); wire2 = the same path over delta-encoded \
         columnar wire-v2 Batch frames; serve_scaling = a live unix-socket server \
         (decode + transport + session compute) under idle connection fan-in, \
         threads vs events serve loop; cpd = the --cpd change-point hub fed one \
         UCR point per tenant per round (million points/sec)\",\n",
    );
    json.push_str("  \"headline\": {\n");
    json.push_str(&format!("    \"tenants\": {HEADLINE_TENANTS},\n"));
    json.push_str(&format!("    \"shards\": {HEADLINE_SHARDS},\n"));
    json.push_str(&format!("    \"batch\": {HEADLINE_BATCH},\n"));
    json.push_str(&format!(
        "    \"legacy_m_intervals_per_sec\": {legacy_mips:.3},\n"
    ));
    json.push_str(&format!(
        "    \"ring_batch_m_intervals_per_sec\": {ring_mips:.3},\n"
    ));
    json.push_str(&format!(
        "    \"wire_m_intervals_per_sec\": {wire_mips:.3},\n"
    ));
    json.push_str(&format!(
        "    \"wire_v2_m_intervals_per_sec\": {wire2_mips:.3},\n"
    ));
    json.push_str(&format!(
        "    \"wire_v2_compress_m_intervals_per_sec\": {wire2z_mips:.3},\n"
    ));
    json.push_str(&format!("    \"wire_v2_speedup\": {wire_v2_speedup:.2},\n"));
    json.push_str(&format!("    \"speedup\": {speedup:.2},\n"));
    json.push_str(&format!(
        "    \"wire_decode_legacy_m_intervals_per_sec\": {decode_legacy_mips:.3},\n"
    ));
    json.push_str(&format!(
        "    \"wire_decode_scalar_m_intervals_per_sec\": {decode_scalar_mips:.3},\n"
    ));
    json.push_str(&format!(
        "    \"wire_decode_simd_m_intervals_per_sec\": {decode_simd_mips:.3},\n"
    ));
    json.push_str(&format!(
        "    \"wire_decode_simd_level\": \"{}\",\n",
        decode_level.label()
    ));
    json.push_str(&format!(
        "    \"wire_decode_speedup\": {decode_speedup:.2},\n"
    ));
    json.push_str(&format!("    \"cpd_m_points_per_sec\": {cpd_mpps:.3},\n"));
    json.push_str(&format!(
        "    \"telemetry_off_m_intervals_per_sec\": {telemetry_off:.3},\n"
    ));
    json.push_str(&format!(
        "    \"telemetry_on_m_intervals_per_sec\": {telemetry_on:.3},\n"
    ));
    json.push_str(&format!(
        "    \"telemetry_overhead_min_pct\": {telemetry_overhead_min_pct:.2},\n"
    ));
    json.push_str(&format!(
        "    \"telemetry_overhead_median_pct\": {telemetry_overhead_median_pct:.2}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"simd\": [\n");
    let mut decode_rendered = vec![format!(
        "    {{\"kernel\": \"wire_decode_legacy\", \"level\": \"seed\", \
         \"tenants\": {HEADLINE_TENANTS}, \"batch\": {HEADLINE_BATCH}, \
         \"m_intervals_per_sec\": {decode_legacy_mips:.3}}}"
    )];
    decode_rendered.extend(decode_rows.iter().map(|(level, mips)| {
        format!(
            "    {{\"kernel\": \"wire_decode\", \"level\": \"{}\", \
             \"tenants\": {HEADLINE_TENANTS}, \"batch\": {HEADLINE_BATCH}, \
             \"m_intervals_per_sec\": {mips:.3}}}",
            level.label()
        )
    }));
    json.push_str(&decode_rendered.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"serve_scaling\": [\n");
    json.push_str(&scaling_rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"cells\": [\n");
    let rendered: Vec<String> = cells.iter().map(fmt_cell).collect();
    json.push_str(&rendered.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write matrix json");
    eprintln!(
        "fleet matrix: {} cells -> {out_path} (headline speedup {speedup:.2}x: \
         legacy {legacy_mips:.2} M intervals/s vs ring/batch-{HEADLINE_BATCH} \
         {ring_mips:.2} M intervals/s at {HEADLINE_TENANTS} tenants / {HEADLINE_SHARDS} shards; \
         wire ingest v1 {wire_mips:.2} vs v2 {wire2_mips:.2} M intervals/s \
         ({wire_v2_speedup:.2}x, compressed {wire2z_mips:.2}); \
         wire decode {} vs seed codec {decode_speedup:.2}x \
         ({decode_legacy_mips:.2} -> {decode_simd_mips:.2} M intervals/s, \
         forced-scalar bulk {decode_scalar_mips:.2}); \
         telemetry overhead min {telemetry_overhead_min_pct:.2}% / \
         median {telemetry_overhead_median_pct:.2}% \
         (best {telemetry_off:.2} off vs {telemetry_on:.2} on); \
         cpd hub {cpd_mpps:.3} M points/s)",
        cells.len(),
        decode_level.label()
    );
}
