//! Shared drivers for the figure-regeneration binaries and benches.
//!
//! Every `fig*` binary in `src/bin/` reproduces one figure of the paper's
//! evaluation; this library holds the common plumbing: time-budgeted
//! sweeps, per-region tracking, and CSV-ish row printing. See
//! `EXPERIMENTS.md` at the workspace root for the figure-by-figure
//! paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use regmon::regions::RegionId;
use regmon::sampling::{Sampler, SamplingConfig};
use regmon::workload::{suite, Workload};
use regmon::{MonitoringSession, SessionConfig, SessionSummary};
use regmon_binary::AddrRange;

/// The paper's Figure 3/4/13/14 sampling periods.
pub const SWEEP_PERIODS: [u64; 3] = regmon::sampling::SWEEP_PERIODS;

/// The paper's Figure 17 sampling periods.
pub const RTO_PERIODS: [u64; 3] = regmon::sampling::RTO_PERIODS;

/// Returns the number of intervals a sweep should process at `period`.
///
/// Full runs process the whole workload; setting the `REGMON_FAST`
/// environment variable caps every sweep to a small fixed virtual-time
/// budget so smoke tests finish quickly.
#[must_use]
pub fn interval_budget(workload: &Workload, period: u64) -> usize {
    let cfg = SamplingConfig::new(period);
    let full = (workload.total_cycles() / cfg.interval_cycles()) as usize;
    match std::env::var_os("REGMON_FAST") {
        Some(_) => {
            // ≈30 intervals' worth of virtual time at the 45K period.
            let budget_cycles = 45_000u64 * 2032 * 30;
            ((budget_cycles / cfg.interval_cycles()) as usize).clamp(8, full.max(8))
        }
        None => full,
    }
}

/// Runs a full monitoring session for `name` at `period`.
///
/// # Panics
///
/// Panics when `name` is not in the suite.
#[must_use]
pub fn run_session(name: &str, period: u64) -> SessionSummary {
    let workload = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let config = SessionConfig::new(period);
    let budget = interval_budget(&workload, period);
    MonitoringSession::run_limited(&workload, &config, budget)
}

/// Per-interval series for region charts (Figures 2, 5, 9): for each
/// tracked range, the number of samples per interval, plus the GPD
/// phase line and per-region r values.
#[derive(Debug, Clone)]
pub struct RegionChart {
    /// The tracked ranges in input order.
    pub ranges: Vec<AddrRange>,
    /// `samples[i][t]` = samples of range `i` in interval `t`.
    pub samples: Vec<Vec<u64>>,
    /// 1.0 when GPD was unstable in that interval (the figures' thick
    /// line), else 0.0.
    pub gpd_unstable: Vec<f64>,
    /// `r_values[i][t]` = the local detector's r for range `i` at
    /// interval `t` (0 until the region forms).
    pub r_values: Vec<Vec<f64>>,
    /// Per-interval UCR fraction.
    pub ucr: Vec<f64>,
}

/// Builds a region chart for `workload` over up to `max_intervals`.
#[must_use]
pub fn region_chart(
    workload: &Workload,
    period: u64,
    ranges: &[AddrRange],
    max_intervals: usize,
) -> RegionChart {
    let config = SessionConfig::new(period);
    let mut session = MonitoringSession::new(config.clone());
    session.attach_binary(workload);

    let n = ranges.len();
    let mut chart = RegionChart {
        ranges: ranges.to_vec(),
        samples: vec![Vec::new(); n],
        gpd_unstable: Vec::new(),
        r_values: vec![Vec::new(); n],
        ucr: Vec::new(),
    };
    // Region ids are assigned as regions form; map them to tracked slots
    // by range.
    let mut id_of_range: BTreeMap<RegionId, usize> = BTreeMap::new();

    for interval in Sampler::new(workload, config.sampling).take(max_intervals) {
        // Count raw samples per tracked range (independent of formation).
        let mut counts = vec![0u64; n];
        for s in &interval.samples {
            for (i, r) in ranges.iter().enumerate() {
                if r.contains(s.addr) {
                    counts[i] += 1;
                }
            }
        }
        let outcome = session.process_interval(&interval);
        for id in &outcome.new_regions {
            if let Some(region) = session.monitor().region(*id) {
                if let Some(i) = ranges.iter().position(|r| *r == region.range()) {
                    id_of_range.insert(*id, i);
                }
            }
        }
        for (i, c) in counts.iter().enumerate() {
            chart.samples[i].push(*c);
        }
        chart
            .gpd_unstable
            .push(if session.gpd().is_stable() { 0.0 } else { 1.0 });
        let mut rs = vec![f64::NAN; n];
        for (id, obs) in &outcome.lpd {
            if let Some(&i) = id_of_range.get(id) {
                rs[i] = obs.r;
            }
        }
        for (i, r) in rs.into_iter().enumerate() {
            let value = if r.is_nan() {
                *chart.r_values[i].last().unwrap_or(&0.0)
            } else {
                r
            };
            chart.r_values[i].push(value);
        }
        chart.ucr.push(outcome.ucr_fraction);
    }
    chart
}

/// The regions the paper's Figures 13/14 track, per selected benchmark:
/// `(label, range)` pairs in the figure's r1, r2, … order.
///
/// # Panics
///
/// Panics when `name` is not one of the Figure 13 benchmarks.
#[must_use]
pub fn fig13_regions(name: &str, w: &Workload) -> Vec<(String, AddrRange)> {
    use regmon::workload::activity::loop_range;
    use regmon::workload::suite::{ammp, fma3d, gap, gzip, mcf};
    let ranges: Vec<AddrRange> = match name {
        "181.mcf" => mcf::tracked_regions(w)[..2].to_vec(),
        "187.facerec" => (0..3)
            .map(|i| loop_range(w.binary(), &format!("hot{i}"), 0))
            .collect(),
        "254.gap" => {
            let [r1, r2, r3] = gap::tracked_regions(w);
            vec![r1, r2, r3, loop_range(w.binary(), "main_dispatch", 0)]
        }
        "164.gzip" => gzip::tracked_regions(w).to_vec(),
        "178.galgel" => (0..4)
            .map(|i| loop_range(w.binary(), &format!("hot{i}"), 0))
            .collect(),
        "189.lucas" => vec![loop_range(w.binary(), "hot0", 0)],
        "191.fma3d" => fma3d::tracked_regions(w).to_vec(),
        "188.ammp" => ammp::tracked_regions(w).to_vec(),
        other => panic!("{other} is not a Figure 13 benchmark"),
    };
    ranges
        .into_iter()
        .enumerate()
        .map(|(i, r)| (format!("r{}", i + 1), r))
        .collect()
}

/// The Figure 13/14 benchmark set, in the paper's order.
pub const FIG13_BENCHMARKS: [&str; 8] = [
    "181.mcf",
    "187.facerec",
    "254.gap",
    "164.gzip",
    "178.galgel",
    "189.lucas",
    "191.fma3d",
    "188.ammp",
];

/// Runs a session and returns the per-tracked-region LPD stats for a
/// Figure 13 benchmark, in `fig13_regions` order. Regions that never
/// formed report default (all-zero) stats.
#[must_use]
pub fn fig13_stats(name: &str, period: u64) -> Vec<(String, regmon::lpd::RegionPhaseStats)> {
    let workload = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let tracked = fig13_regions(name, &workload);
    let config = SessionConfig::new(period);
    let mut session = MonitoringSession::new(config.clone());
    session.attach_binary(&workload);
    let budget = interval_budget(&workload, period);
    for interval in Sampler::new(&workload, config.sampling).take(budget) {
        session.process_interval(&interval);
    }
    let stats = session.lpd().all_stats();
    tracked
        .into_iter()
        .map(|(label, range)| {
            let s = session
                .monitor()
                .region_by_range(range)
                .and_then(|r| stats.get(&r.id()).copied())
                .unwrap_or_default();
            (label, s)
        })
        .collect()
}

/// Averages `values` down to at most `max_cols` buckets so long
/// per-interval series print as readable rows. Shorter inputs pass
/// through unchanged.
#[must_use]
pub fn downsample(values: &[f64], max_cols: usize) -> Vec<f64> {
    assert!(max_cols > 0, "need at least one column");
    if values.len() <= max_cols {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(max_cols);
    for b in 0..max_cols {
        let lo = b * values.len() / max_cols;
        let hi = ((b + 1) * values.len() / max_cols).max(lo + 1);
        let bucket = &values[lo..hi];
        out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    out
}

/// Formats one CSV row.
#[must_use]
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = String::from(label);
    for v in values {
        s.push(',');
        if v.fract() == 0.0 && v.abs() < 1e15 {
            s.push_str(&format!("{}", *v as i64));
        } else {
            s.push_str(&format!("{v:.4}"));
        }
    }
    s
}

/// Prints a figure header with reproduction context.
pub fn figure_header(figure: &str, what: &str) {
    println!("# {figure}: {what}");
    println!(
        "# regmon reproduction; columns are CSV. REGMON_FAST={} ",
        std::env::var_os("REGMON_FAST").is_some()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats_compactly() {
        assert_eq!(row("a", &[1.0, 0.25]), "a,1,0.2500");
    }

    #[test]
    fn downsample_passes_short_series_through() {
        assert_eq!(downsample(&[1.0, 2.0], 4), vec![1.0, 2.0]);
    }

    #[test]
    fn downsample_averages_buckets() {
        let v: Vec<f64> = (0..8).map(f64::from).collect();
        assert_eq!(downsample(&v, 4), vec![0.5, 2.5, 4.5, 6.5]);
    }

    #[test]
    fn budget_is_positive_for_all_periods() {
        let w = suite::by_name("172.mgrid").unwrap();
        for p in SWEEP_PERIODS.iter().chain(RTO_PERIODS.iter()) {
            assert!(interval_budget(&w, *p) > 0);
        }
    }
}
