//! Every figure-regeneration binary runs to completion (in REGMON_FAST
//! mode) and produces well-formed output. This substantiates the claim
//! that every figure of the paper's evaluation regenerates on demand.

use std::process::Command;

fn run_fast(exe: &str) -> String {
    let out = Command::new(exe)
        .env("REGMON_FAST", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("figure output is UTF-8");
    assert!(!stdout.trim().is_empty(), "{exe} produced no output");
    assert!(
        stdout.starts_with('#'),
        "{exe} output must start with a figure header"
    );
    stdout
}

macro_rules! smoke {
    ($name:ident, $bin:literal) => {
        #[test]
        fn $name() {
            let _ = run_fast(env!(concat!("CARGO_BIN_EXE_", $bin)));
        }
    };
}

smoke!(fig02, "fig02_mcf_region_chart");
smoke!(fig03, "fig03_gpd_phase_changes");
smoke!(fig04, "fig04_gpd_stable_time");
smoke!(fig05, "fig05_facerec_region_chart");
smoke!(fig06, "fig06_ucr_median");
smoke!(fig07, "fig07_ucr_timeline");
smoke!(fig08, "fig08_pearson_demo");
smoke!(fig09, "fig09_mcf_regions");
smoke!(fig10, "fig10_mcf_pearson");
smoke!(fig11, "fig11_gap_pearson");
smoke!(fig12, "fig12_state_machine");
smoke!(fig13, "fig13_lpd_phase_changes");
smoke!(fig14, "fig14_lpd_stable_time");
smoke!(fig15, "fig15_overhead");
smoke!(fig16, "fig16_interval_tree");
smoke!(fig17, "fig17_rto_speedup");
smoke!(ext_baselines_bin, "ext_baselines");
smoke!(ext_adaptive_window_bin, "ext_adaptive_window");
smoke!(ext_perf_metrics_bin, "ext_perf_metrics");
smoke!(ext_phase_prediction_bin, "ext_phase_prediction");
smoke!(ext_rto_sensitivity_bin, "ext_rto_sensitivity");

/// The fleet ingest matrix binary emits well-formed JSON with the
/// headline fields the regression guard greps for.
#[test]
fn fleet_matrix_emits_headline_json() {
    let out_path =
        std::env::temp_dir().join(format!("fleet_matrix_smoke_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_fleet_matrix"))
        .arg(&out_path)
        .env("QUICK_BENCH", "1")
        .output()
        .expect("spawn fleet_matrix");
    assert!(
        out.status.success(),
        "fleet_matrix failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).expect("matrix json written");
    let _ = std::fs::remove_file(&out_path);
    for key in [
        "\"schema\": \"regmon-fleet-matrix-v1\"",
        "\"headline\"",
        "\"legacy_m_intervals_per_sec\"",
        "\"ring_batch_m_intervals_per_sec\"",
        "\"speedup\"",
        "\"transport\": \"legacy\"",
        "\"transport\": \"ring\"",
    ] {
        assert!(json.contains(key), "{key} missing from fleet matrix JSON");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn fig03_rows_are_csv_with_three_periods() {
    let out = run_fast(env!("CARGO_BIN_EXE_fig03_gpd_phase_changes"));
    let rows: Vec<&str> = out
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with("benchmark"))
        .collect();
    assert_eq!(rows.len(), 21, "Figure 3 covers 21 benchmarks");
    for row in rows {
        assert_eq!(row.split(',').count(), 4, "bad row: {row}");
    }
}

#[test]
fn fig17_rows_cover_the_four_benchmarks() {
    let out = run_fast(env!("CARGO_BIN_EXE_fig17_rto_speedup"));
    for name in ["181.mcf", "172.mgrid", "254.gap", "191.fma3d"] {
        assert!(out.contains(name), "{name} missing from Figure 17");
    }
}
