//! Smoke tests: every figure driver produces well-formed data quickly
//! (the binaries themselves run the full-length versions; here we use the
//! same library entry points on truncated runs).

use regmon_bench::{
    downsample, fig13_regions, fig13_stats, region_chart, row, run_session, FIG13_BENCHMARKS,
};

use regmon::workload::suite::{self, mcf};

fn with_fast_env<T>(f: impl FnOnce() -> T) -> T {
    // The bench library reads REGMON_FAST to cap interval budgets. Tests
    // in this binary run single-threaded per process invocation of the
    // env var; setting it for the whole test process is fine.
    std::env::set_var("REGMON_FAST", "1");
    f()
}

#[test]
fn run_session_produces_consistent_summary() {
    with_fast_env(|| {
        let s = run_session("172.mgrid", 45_000);
        assert!(s.intervals > 0);
        assert!(s.gpd.intervals == s.intervals);
        assert!(s.regions_formed > 0);
    });
}

#[test]
fn region_chart_series_are_aligned() {
    with_fast_env(|| {
        let w = suite::by_name("181.mcf").unwrap();
        let ranges = mcf::tracked_regions(&w);
        let chart = region_chart(&w, 45_000, &ranges, 12);
        assert_eq!(chart.ranges.len(), 3);
        for s in &chart.samples {
            assert_eq!(s.len(), chart.gpd_unstable.len());
        }
        for r in &chart.r_values {
            assert_eq!(r.len(), chart.gpd_unstable.len());
        }
        assert_eq!(chart.ucr.len(), chart.gpd_unstable.len());
        // Samples per interval never exceed the buffer (no overlapping
        // tracked ranges here).
        for s in &chart.samples {
            assert!(s.iter().all(|&c| c <= 2032));
        }
    });
}

#[test]
fn fig13_stats_cover_every_tracked_region() {
    with_fast_env(|| {
        for name in FIG13_BENCHMARKS {
            let w = suite::by_name(name).unwrap();
            let tracked = fig13_regions(name, &w);
            let stats = fig13_stats(name, 450_000);
            assert_eq!(stats.len(), tracked.len(), "{name}");
            for (label, _) in &stats {
                assert!(label.starts_with('r'), "{name}: {label}");
            }
        }
    });
}

#[test]
fn csv_helpers_are_well_formed() {
    let r = row("x", &[1.0, 2.5]);
    assert_eq!(r.split(',').count(), 3);
    assert_eq!(downsample(&[1.0; 100], 10).len(), 10);
}

#[test]
#[should_panic(expected = "not a Figure 13 benchmark")]
fn fig13_rejects_unknown_benchmarks() {
    let w = suite::by_name("171.swim").unwrap();
    let _ = fig13_regions("171.swim", &w);
}
