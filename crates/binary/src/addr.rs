//! Addresses and address ranges.
//!
//! The paper identifies regions by hexadecimal address ranges such as
//! `146f0-14770`; [`Addr`] and [`AddrRange`] reproduce that vocabulary with
//! newtype safety ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;
use core::ops::{Add, Sub};

/// A code address in the synthetic binary's address space.
///
/// Displays in lowercase hexadecimal, matching the paper's region names
/// (`146f0-14770`).
///
/// # Example
///
/// ```
/// use regmon_binary::Addr;
///
/// let a = Addr::new(0x146f0);
/// assert_eq!(a.to_string(), "146f0");
/// assert_eq!((a + 0x80).get(), 0x14770);
/// ```
// `repr(transparent)`: guarantees `Addr` has exactly the layout of its
// `u64`, which the serve wire decoder relies on for bulk little-endian
// sample decoding on matching targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw address value.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// The raw address value.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Byte distance from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self` (underflow).
    #[must_use]
    pub fn offset_from(self, earlier: Addr) -> u64 {
        self.0 - earlier.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;

    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

/// A half-open address range `[start, end)`.
///
/// Displays as `start-end` in hexadecimal, matching the paper's region
/// naming (`146f0-14770`).
///
/// # Example
///
/// ```
/// use regmon_binary::{Addr, AddrRange};
///
/// let r = AddrRange::new(Addr::new(0x146f0), Addr::new(0x14770));
/// assert!(r.contains(Addr::new(0x14700)));
/// assert!(!r.contains(Addr::new(0x14770))); // half-open
/// assert_eq!(r.to_string(), "146f0-14770");
/// assert_eq!(r.len(), 0x80);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AddrRange {
    start: Addr,
    end: Addr,
}

impl AddrRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn new(start: Addr, end: Addr) -> Self {
        assert!(start <= end, "address range start {start} after end {end}");
        Self { start, end }
    }

    /// Creates a range from a start address and a byte length.
    #[must_use]
    pub fn from_len(start: Addr, len: u64) -> Self {
        Self {
            start,
            end: start + len,
        }
    }

    /// The inclusive lower bound.
    #[must_use]
    pub const fn start(self) -> Addr {
        self.start
    }

    /// The exclusive upper bound.
    #[must_use]
    pub const fn end(self) -> Addr {
        self.end
    }

    /// Byte length of the range.
    #[must_use]
    pub fn len(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// `true` when the range covers no addresses.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// `true` when `addr` lies within `[start, end)`.
    #[must_use]
    pub fn contains(self, addr: Addr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// `true` when `other` is entirely within `self`.
    #[must_use]
    pub fn contains_range(self, other: AddrRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// `true` when the two ranges share at least one address.
    #[must_use]
    pub fn overlaps(self, other: AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_displays_as_lowercase_hex() {
        assert_eq!(Addr::new(0x7BA2C).to_string(), "7ba2c");
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(0x100);
        assert_eq!(a + 8, Addr::new(0x108));
        assert_eq!(a - 0x10, Addr::new(0xf0));
        assert_eq!((a + 8).offset_from(a), 8);
    }

    #[test]
    fn addr_conversions() {
        let a: Addr = 42u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 42);
    }

    #[test]
    fn range_display_matches_paper_naming() {
        let r = AddrRange::new(Addr::new(0x142c8), Addr::new(0x14318));
        assert_eq!(r.to_string(), "142c8-14318");
    }

    #[test]
    fn range_contains_is_half_open() {
        let r = AddrRange::new(Addr::new(10), Addr::new(20));
        assert!(r.contains(Addr::new(10)));
        assert!(r.contains(Addr::new(19)));
        assert!(!r.contains(Addr::new(20)));
        assert!(!r.contains(Addr::new(9)));
    }

    #[test]
    fn empty_range() {
        let r = AddrRange::new(Addr::new(5), Addr::new(5));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.contains(Addr::new(5)));
    }

    #[test]
    #[should_panic(expected = "start")]
    fn inverted_range_panics() {
        let _ = AddrRange::new(Addr::new(2), Addr::new(1));
    }

    #[test]
    fn overlap_cases() {
        let a = AddrRange::new(Addr::new(0), Addr::new(10));
        let b = AddrRange::new(Addr::new(5), Addr::new(15));
        let c = AddrRange::new(Addr::new(10), Addr::new(20));
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c)); // touching half-open ranges do not overlap
        assert!(b.overlaps(c));
    }

    #[test]
    fn contains_range_cases() {
        let outer = AddrRange::new(Addr::new(0), Addr::new(100));
        let inner = AddrRange::new(Addr::new(10), Addr::new(90));
        assert!(outer.contains_range(inner));
        assert!(!inner.contains_range(outer));
        assert!(outer.contains_range(outer));
    }

    #[test]
    fn from_len_constructs_half_open() {
        let r = AddrRange::from_len(Addr::new(0x1000), 0x20);
        assert_eq!(r.end(), Addr::new(0x1020));
        assert_eq!(r.len(), 0x20);
    }
}
