//! The whole program image: procedures plus the inter-procedural call map.

use crate::addr::Addr;
use crate::inst::Instruction;
use crate::loops::LoopInfo;
use crate::proc::{ProcId, Procedure};
use core::fmt;

/// A resolved call site: an instruction in `caller` targeting `callee`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    caller: ProcId,
    at: Addr,
    callee_name: String,
    target: Addr,
}

impl CallSite {
    /// Creates a call-site record.
    #[must_use]
    pub fn new(caller: ProcId, at: Addr, callee_name: impl Into<String>, target: Addr) -> Self {
        Self {
            caller,
            at,
            callee_name: callee_name.into(),
            target,
        }
    }

    /// The calling procedure.
    #[must_use]
    pub fn caller(&self) -> ProcId {
        self.caller
    }

    /// Address of the call instruction.
    #[must_use]
    pub fn at(&self) -> Addr {
        self.at
    }

    /// The callee's name.
    #[must_use]
    pub fn callee_name(&self) -> &str {
        &self.callee_name
    }

    /// The callee's entry address.
    #[must_use]
    pub fn target(&self) -> Addr {
        self.target
    }
}

/// A synthetic program image.
///
/// Procedures are laid out in ascending, non-overlapping address ranges;
/// address queries resolve by binary search.
#[derive(Debug, Clone, PartialEq)]
pub struct Binary {
    name: String,
    procedures: Vec<Procedure>,
    call_sites: Vec<CallSite>,
}

impl Binary {
    /// Assembles a binary from procedures and resolved call sites.
    ///
    /// # Panics
    ///
    /// Panics if procedure ranges are not ascending and disjoint, or if
    /// procedure ids are not the dense sequence `0..procs.len()`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        procedures: Vec<Procedure>,
        call_sites: Vec<CallSite>,
    ) -> Self {
        for (i, p) in procedures.iter().enumerate() {
            assert_eq!(p.id().0, i, "procedure ids must be dense and in order");
            if i > 0 {
                assert!(
                    procedures[i - 1].range().end() <= p.range().start(),
                    "procedures must be laid out in ascending disjoint ranges"
                );
            }
        }
        Self {
            name: name.into(),
            procedures,
            call_sites,
        }
    }

    /// The binary's name (e.g. `"181.mcf"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All procedures, in address order, indexed by [`ProcId`].
    #[must_use]
    pub fn procedures(&self) -> &[Procedure] {
        &self.procedures
    }

    /// The procedure with the given id.
    #[must_use]
    pub fn procedure(&self, id: ProcId) -> &Procedure {
        &self.procedures[id.0]
    }

    /// Looks a procedure up by name.
    #[must_use]
    pub fn procedure_by_name(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name() == name)
    }

    /// The procedure whose range contains `addr`, if any.
    #[must_use]
    pub fn procedure_at(&self, addr: Addr) -> Option<&Procedure> {
        let idx = self.procedures.partition_point(|p| p.range().end() <= addr);
        self.procedures
            .get(idx)
            .filter(|p| p.range().contains(addr))
    }

    /// The innermost loop containing `addr`, with its procedure.
    #[must_use]
    pub fn innermost_loop_at(&self, addr: Addr) -> Option<(&Procedure, &LoopInfo)> {
        let proc = self.procedure_at(addr)?;
        let lp = proc.innermost_loop_at(addr)?;
        Some((proc, lp))
    }

    /// The instruction at `addr`, if any.
    #[must_use]
    pub fn instruction_at(&self, addr: Addr) -> Option<&Instruction> {
        self.procedure_at(addr)?.instruction_at(addr)
    }

    /// All resolved call sites.
    #[must_use]
    pub fn call_sites(&self) -> &[CallSite] {
        &self.call_sites
    }

    /// Call sites whose callee is `name`.
    pub fn callers_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a CallSite> + 'a {
        self.call_sites
            .iter()
            .filter(move |cs| cs.callee_name() == name)
    }

    /// `true` when some call site inside a loop of `caller` targets the
    /// procedure named `callee`.
    ///
    /// This is the structure behind the paper's §3.1 pathology: a hot
    /// callee whose loop lives in the *caller* cannot have a loop region
    /// built around its own samples.
    #[must_use]
    pub fn is_called_from_loop(&self, callee: &str) -> bool {
        self.callers_of(callee).any(|cs| {
            self.procedure(cs.caller())
                .innermost_loop_at(cs.at())
                .is_some()
        })
    }

    /// Total number of instructions across all procedures.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.procedures.iter().map(|p| p.instructions().len()).sum()
    }
}

impl fmt::Display for Binary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "binary {} ({} procedures)",
            self.name,
            self.procedures.len()
        )?;
        for p in &self.procedures {
            writeln!(
                f,
                "  {} {} ({} insts, {} loops)",
                p.range(),
                p.name(),
                p.instructions().len(),
                p.loops().len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BinaryBuilder;

    fn two_proc_binary() -> Binary {
        let mut b = BinaryBuilder::new("t");
        b.procedure("callee", |p| {
            p.loop_(|l| {
                l.straight(4);
            });
        });
        b.procedure("caller", |p| {
            p.loop_(|l| {
                l.straight(2);
                l.call("callee");
            });
        });
        b.build(Addr::new(0x10000))
    }

    #[test]
    fn procedure_at_finds_correct_procedure() {
        let bin = two_proc_binary();
        let callee = bin.procedure_by_name("callee").unwrap();
        let caller = bin.procedure_by_name("caller").unwrap();
        assert_eq!(
            bin.procedure_at(callee.range().start()).unwrap().name(),
            "callee"
        );
        assert_eq!(
            bin.procedure_at(caller.range().end() - 4).unwrap().name(),
            "caller"
        );
        assert!(bin.procedure_at(Addr::new(0)).is_none());
        assert!(bin.procedure_at(caller.range().end()).is_none());
    }

    #[test]
    fn procedure_at_gap_between_procs_is_none() {
        let bin = two_proc_binary();
        let callee = bin.procedure_by_name("callee").unwrap();
        let caller = bin.procedure_by_name("caller").unwrap();
        // If alignment introduced a gap, addresses there resolve to no
        // procedure.
        if callee.range().end() < caller.range().start() {
            assert!(bin.procedure_at(callee.range().end()).is_none());
        }
    }

    #[test]
    fn innermost_loop_at_crosses_procedures() {
        let bin = two_proc_binary();
        let callee = bin.procedure_by_name("callee").unwrap();
        let in_loop = callee.loops()[0].range().start();
        let (p, l) = bin.innermost_loop_at(in_loop).unwrap();
        assert_eq!(p.name(), "callee");
        assert_eq!(l.depth(), 0);
    }

    #[test]
    fn called_from_loop_detection() {
        let bin = two_proc_binary();
        assert!(bin.is_called_from_loop("callee"));
        assert!(!bin.is_called_from_loop("caller"));
    }

    #[test]
    fn display_lists_procedures() {
        let bin = two_proc_binary();
        let s = bin.to_string();
        assert!(s.contains("callee"));
        assert!(s.contains("caller"));
    }

    #[test]
    fn inst_count_sums_procedures() {
        let bin = two_proc_binary();
        let total: usize = bin
            .procedures()
            .iter()
            .map(|p| p.instructions().len())
            .sum();
        assert_eq!(bin.inst_count(), total);
    }
}
