//! A small DSL for laying out synthetic binaries.
//!
//! The workload crate describes each SPEC-like benchmark's code structure
//! with this builder: procedures containing straight-line runs, (nested)
//! loops and calls. The builder lays everything out contiguously in one
//! address space, produces per-procedure CFGs (do-while style loops with a
//! conditional back-edge branch), and resolves call targets across
//! procedures.
//!
//! # Example
//!
//! ```
//! use regmon_binary::{Addr, BinaryBuilder};
//!
//! let mut b = BinaryBuilder::new("toy");
//! b.procedure("helper", |p| {
//!     p.straight(6);
//! });
//! b.procedure("main", |p| {
//!     p.loop_(|l| {
//!         l.straight(2);
//!         l.call("helper");
//!         l.straight(1);
//!     });
//! });
//! let bin = b.build(Addr::new(0x10000));
//! assert_eq!(bin.procedures().len(), 2);
//! assert_eq!(bin.call_sites().len(), 1);
//! ```

use std::collections::HashMap;

use crate::addr::{Addr, AddrRange};
use crate::binary::{Binary, CallSite};
use crate::cfg::{BasicBlock, BlockId, Cfg};
use crate::inst::{InstKind, Instruction, INST_BYTES};
use crate::proc::{ProcId, Procedure};

/// Code-layout events recorded by the builder closures.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Straight(usize),
    LoopStart,
    LoopEnd,
    Call(String),
}

/// Builder for one procedure's body; see [`BinaryBuilder::procedure`].
#[derive(Debug)]
pub struct CodeBuilder {
    events: Vec<Event>,
    open_loops: usize,
}

impl CodeBuilder {
    fn new() -> Self {
        Self {
            events: Vec::new(),
            open_loops: 0,
        }
    }

    /// Appends `n` straight-line (non-control) instructions.
    pub fn straight(&mut self, n: usize) -> &mut Self {
        if n > 0 {
            self.events.push(Event::Straight(n));
        }
        self
    }

    /// Appends a loop whose body is described by `body`.
    ///
    /// Loops are do-while shaped: the body executes, then a conditional
    /// branch returns to the loop header or falls through.
    pub fn loop_(&mut self, body: impl FnOnce(&mut CodeBuilder)) -> &mut Self {
        self.events.push(Event::LoopStart);
        self.open_loops += 1;
        body(self);
        self.open_loops -= 1;
        self.events.push(Event::LoopEnd);
        self
    }

    /// Appends a call to the procedure named `callee`.
    ///
    /// The target is resolved when [`BinaryBuilder::build`] runs; calling
    /// an unknown procedure makes `build` panic.
    pub fn call(&mut self, callee: impl Into<String>) -> &mut Self {
        self.events.push(Event::Call(callee.into()));
        self
    }
}

/// Builder for a complete synthetic [`Binary`].
#[derive(Debug)]
pub struct BinaryBuilder {
    name: String,
    procs: Vec<(String, Vec<Event>)>,
}

impl BinaryBuilder {
    /// Starts a builder for a binary named `name` (e.g. `"181.mcf"`).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            procs: Vec::new(),
        }
    }

    /// Adds a procedure whose body is described by `body`.
    ///
    /// # Panics
    ///
    /// Panics if a procedure with the same name already exists.
    pub fn procedure(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut CodeBuilder),
    ) -> &mut Self {
        let name = name.into();
        assert!(
            self.procs.iter().all(|(n, _)| *n != name),
            "duplicate procedure name {name:?}"
        );
        let mut cb = CodeBuilder::new();
        body(&mut cb);
        self.procs.push((name, cb.events));
        self
    }

    /// Lays the procedures out contiguously from `base` and builds the
    /// binary. Call targets are resolved by procedure name.
    ///
    /// # Panics
    ///
    /// Panics if a call references an unknown procedure or the builder has
    /// no procedures.
    #[must_use]
    pub fn build(&self, base: Addr) -> Binary {
        assert!(!self.procs.is_empty(), "binary has no procedures");

        // First pass: assemble every procedure at its final base address.
        let mut procedures = Vec::with_capacity(self.procs.len());
        let mut call_sites: Vec<(ProcId, usize, String)> = Vec::new();
        let mut next = base;
        for (idx, (name, events)) in self.procs.iter().enumerate() {
            let pid = ProcId(idx);
            let assembled = assemble(pid, next, events);
            for (inst_idx, callee) in assembled.calls.iter() {
                call_sites.push((pid, *inst_idx, callee.clone()));
            }
            next = align_up(assembled.end, 16);
            procedures.push((name.clone(), assembled));
        }

        // Resolve call targets.
        let entry_of: HashMap<String, Addr> = procedures
            .iter()
            .map(|(name, a)| (name.clone(), a.start))
            .collect();
        let mut resolved_sites = Vec::with_capacity(call_sites.len());
        for (pid, inst_idx, callee) in &call_sites {
            let target = *entry_of
                .get(callee.as_str())
                .unwrap_or_else(|| panic!("call to unknown procedure {callee:?}"));
            let assembled = &mut procedures[pid.0].1;
            let old = assembled.insts[*inst_idx];
            assembled.insts[*inst_idx] = Instruction::new(old.addr(), InstKind::Call { target });
            resolved_sites.push(CallSite::new(*pid, old.addr(), callee.clone(), target));
        }

        let procs: Vec<Procedure> = procedures
            .into_iter()
            .enumerate()
            .map(|(idx, (name, a))| {
                let range = AddrRange::new(a.start, a.end);
                let blocks: Vec<BasicBlock> = a
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(bi, &(first, count))| {
                        let start = a.start + first as u64 * INST_BYTES;
                        BasicBlock::new(
                            BlockId(bi),
                            AddrRange::from_len(start, count as u64 * INST_BYTES),
                            first,
                            count,
                        )
                    })
                    .collect();
                let edges = a
                    .edges
                    .iter()
                    .map(|&(f, t)| (BlockId(f), BlockId(t)))
                    .collect();
                let cfg = Cfg::new(blocks, edges, BlockId(0));
                Procedure::new(ProcId(idx), name, range, a.insts, cfg)
            })
            .collect();

        Binary::new(self.name.clone(), procs, resolved_sites)
    }
}

fn align_up(addr: Addr, align: u64) -> Addr {
    let v = addr.get();
    Addr::new(v.div_ceil(align) * align)
}

/// Result of assembling one procedure.
struct Assembled {
    start: Addr,
    end: Addr,
    insts: Vec<Instruction>,
    /// `(first_inst, inst_count)` per block.
    blocks: Vec<(usize, usize)>,
    /// Edges between block indices.
    edges: Vec<(usize, usize)>,
    /// `(inst_index, callee_name)` for later target resolution.
    calls: Vec<(usize, String)>,
}

/// Assembles a procedure's events into instructions, blocks and edges.
fn assemble(_pid: ProcId, base: Addr, events: &[Event]) -> Assembled {
    let mut insts: Vec<Instruction> = Vec::new();
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut calls: Vec<(usize, String)> = Vec::new();
    // First instruction index of the currently-open block.
    let mut open_first = 0usize;
    // Stack of loop header addresses.
    let mut loop_stack: Vec<Addr> = Vec::new();
    // Map from block start address to block index (headers are always
    // block starts, so back edges can be resolved through this map).
    let mut block_at: HashMap<Addr, usize> = HashMap::new();

    let addr_of = |i: usize| base + i as u64 * INST_BYTES;

    /// How a block hands control to what follows it.
    enum Close {
        Fallthrough,
        BackEdge(Addr),
        End,
    }

    let close_block = |insts: &Vec<Instruction>,
                       blocks: &mut Vec<(usize, usize)>,
                       edges: &mut Vec<(usize, usize)>,
                       block_at: &mut HashMap<Addr, usize>,
                       open_first: &mut usize,
                       how: Close| {
        let count = insts.len() - *open_first;
        if count == 0 {
            return;
        }
        let id = blocks.len();
        blocks.push((*open_first, count));
        block_at.insert(addr_of_indexed(base, *open_first), id);
        match how {
            Close::Fallthrough => edges.push((id, id + 1)),
            Close::BackEdge(header) => {
                let header_id = if header == addr_of_indexed(base, *open_first) {
                    id // self loop
                } else {
                    *block_at
                        .get(&header)
                        .expect("loop header must start a block")
                };
                edges.push((id, header_id));
                edges.push((id, id + 1));
            }
            Close::End => {}
        }
        *open_first = insts.len();
    };

    let mut straight_emitted = 0usize;
    for event in events {
        match event {
            Event::Straight(n) => {
                for _ in 0..*n {
                    let kind = straight_kind(straight_emitted);
                    straight_emitted += 1;
                    insts.push(Instruction::new(addr_of(insts.len()), kind));
                }
            }
            Event::LoopStart => {
                close_block(
                    &insts,
                    &mut blocks,
                    &mut edges,
                    &mut block_at,
                    &mut open_first,
                    Close::Fallthrough,
                );
                let header = addr_of(insts.len());
                // Directly-nested loops would otherwise share a header
                // block; pad with a nop so each loop has its own header.
                if loop_stack.last() == Some(&header) {
                    insts.push(Instruction::new(header, InstKind::Nop));
                    close_block(
                        &insts,
                        &mut blocks,
                        &mut edges,
                        &mut block_at,
                        &mut open_first,
                        Close::Fallthrough,
                    );
                }
                loop_stack.push(addr_of(insts.len()));
            }
            Event::LoopEnd => {
                let header = loop_stack.pop().expect("loop_ keeps starts/ends balanced");
                // A completely empty loop body still needs a header
                // instruction for the back edge to target.
                if addr_of(insts.len()) == header {
                    insts.push(Instruction::new(header, InstKind::Nop));
                }
                let branch_addr = addr_of(insts.len());
                insts.push(Instruction::new(
                    branch_addr,
                    InstKind::Branch { target: header },
                ));
                close_block(
                    &insts,
                    &mut blocks,
                    &mut edges,
                    &mut block_at,
                    &mut open_first,
                    Close::BackEdge(header),
                );
            }
            Event::Call(callee) => {
                let idx = insts.len();
                // Placeholder target; patched during Binary::build.
                insts.push(Instruction::new(
                    addr_of(idx),
                    InstKind::Call {
                        target: Addr::new(0),
                    },
                ));
                calls.push((idx, callee.clone()));
            }
        }
    }

    // Trailing return.
    insts.push(Instruction::new(addr_of(insts.len()), InstKind::Ret));
    close_block(
        &insts,
        &mut blocks,
        &mut edges,
        &mut block_at,
        &mut open_first,
        Close::End,
    );

    let end = addr_of(insts.len());
    Assembled {
        start: base,
        end,
        insts,
        blocks,
        edges,
        calls,
    }
}

fn addr_of_indexed(base: Addr, i: usize) -> Addr {
    base + i as u64 * INST_BYTES
}

/// Deterministic instruction-kind pattern for straight-line code: a RISC-y
/// mix of roughly 25% loads, 12% stores, the rest ALU.
fn straight_kind(i: usize) -> InstKind {
    match i % 8 {
        0 | 4 => InstKind::Load,
        3 => InstKind::Store,
        5 => InstKind::FpAlu,
        _ => InstKind::IntAlu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_procedure_gets_a_ret() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("empty", |_| {});
        let bin = b.build(Addr::new(0x100));
        let p = bin.procedure_by_name("empty").unwrap();
        assert_eq!(p.instructions().len(), 1);
        assert_eq!(p.instructions()[0].kind(), InstKind::Ret);
        assert!(p.loops().is_empty());
    }

    #[test]
    fn single_loop_structure() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.straight(2);
            p.loop_(|l| {
                l.straight(3);
            });
            p.straight(1);
        });
        let bin = b.build(Addr::new(0x1000));
        let f = bin.procedure_by_name("f").unwrap();
        assert_eq!(f.loops().len(), 1);
        let lp = &f.loops()[0];
        // Loop covers 3 body insts + 1 back-edge branch = 4 slots.
        assert_eq!(lp.inst_slots(), 4);
        // Loop starts after the 2 straight instructions.
        assert_eq!(lp.range().start(), f.range().start() + 2 * INST_BYTES);
    }

    #[test]
    fn empty_loop_body_gets_header_nop() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.loop_(|_| {});
        });
        let bin = b.build(Addr::new(0x1000));
        let f = bin.procedure_by_name("f").unwrap();
        assert_eq!(f.loops().len(), 1);
        assert_eq!(f.loops()[0].inst_slots(), 2); // nop + branch
    }

    #[test]
    fn directly_nested_loops_have_distinct_headers() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.loop_(|l| {
                l.loop_(|inner| {
                    inner.straight(2);
                });
            });
        });
        let bin = b.build(Addr::new(0x1000));
        let f = bin.procedure_by_name("f").unwrap();
        assert_eq!(f.loops().len(), 2, "nested loops must not merge");
        assert_eq!(f.loops()[0].depth(), 0);
        assert_eq!(f.loops()[1].depth(), 1);
    }

    #[test]
    fn loop_after_loop_produces_siblings() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.loop_(|l| {
                l.straight(2);
            });
            p.straight(1);
            p.loop_(|l| {
                l.straight(4);
            });
        });
        let bin = b.build(Addr::new(0x1000));
        let f = bin.procedure_by_name("f").unwrap();
        assert_eq!(f.loops().len(), 2);
        assert!(f.loops().iter().all(|l| l.depth() == 0));
        assert!(!f.loops()[0].range().overlaps(f.loops()[1].range()));
    }

    #[test]
    fn calls_resolve_forward_and_backward() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("a", |p| {
            p.call("b"); // forward reference
        });
        b.procedure("b", |p| {
            p.straight(1);
            p.call("a"); // backward reference
        });
        let bin = b.build(Addr::new(0x1000));
        assert_eq!(bin.call_sites().len(), 2);
        let a_entry = bin.procedure_by_name("a").unwrap().range().start();
        let b_entry = bin.procedure_by_name("b").unwrap().range().start();
        let site_in_a = &bin.call_sites()[0];
        assert_eq!(site_in_a.target(), b_entry);
        let site_in_b = &bin.call_sites()[1];
        assert_eq!(site_in_b.target(), a_entry);
    }

    #[test]
    #[should_panic(expected = "unknown procedure")]
    fn call_to_unknown_procedure_panics() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("a", |p| {
            p.call("missing");
        });
        let _ = b.build(Addr::new(0x1000));
    }

    #[test]
    #[should_panic(expected = "duplicate procedure")]
    fn duplicate_procedure_panics() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("a", |_| {});
        b.procedure("a", |_| {});
    }

    #[test]
    fn procedures_are_laid_out_disjoint_and_aligned() {
        let mut b = BinaryBuilder::new("t");
        b.procedure("a", |p| {
            p.straight(3);
        });
        b.procedure("b", |p| {
            p.straight(5);
        });
        let bin = b.build(Addr::new(0x1000));
        let a = bin.procedure_by_name("a").unwrap().range();
        let br = bin.procedure_by_name("b").unwrap().range();
        assert!(!a.overlaps(br));
        assert_eq!(br.start().get() % 16, 0);
        assert!(br.start() >= a.end());
    }

    #[test]
    fn straight_kind_mix_contains_loads_and_stores() {
        let kinds: Vec<InstKind> = (0..8).map(straight_kind).collect();
        assert!(kinds.contains(&InstKind::Load));
        assert!(kinds.contains(&InstKind::Store));
        assert!(kinds.contains(&InstKind::FpAlu));
    }
}
