//! Per-procedure control-flow graphs with dominator analysis.
//!
//! Region formation in the paper builds regions around *loops*; loops are
//! recovered from the control-flow graph as natural loops of back edges
//! (`u → v` where `v` dominates `u`). Dominators are computed with the
//! Cooper–Harvey–Kennedy iterative algorithm over the reverse post-order.

use core::fmt;

use crate::addr::AddrRange;

/// Index of a basic block within its procedure's CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A straight-line sequence of instructions with a single entry and exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    id: BlockId,
    range: AddrRange,
    /// Index of the block's first instruction within the procedure.
    first_inst: usize,
    /// Number of instructions in the block.
    inst_count: usize,
}

impl BasicBlock {
    /// Creates a basic block.
    #[must_use]
    pub fn new(id: BlockId, range: AddrRange, first_inst: usize, inst_count: usize) -> Self {
        Self {
            id,
            range,
            first_inst,
            inst_count,
        }
    }

    /// The block's identifier.
    #[must_use]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The block's address range.
    #[must_use]
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Index of the first instruction within the procedure.
    #[must_use]
    pub fn first_inst(&self) -> usize {
        self.first_inst
    }

    /// Number of instructions in the block.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.inst_count
    }
}

/// A control-flow graph over basic blocks.
///
/// # Example
///
/// ```
/// use regmon_binary::{Addr, AddrRange, BasicBlock, BlockId, Cfg};
///
/// // bb0 -> bb1 -> bb1 (self loop) -> bb2
/// let blocks = vec![
///     BasicBlock::new(BlockId(0), AddrRange::new(Addr::new(0), Addr::new(8)), 0, 2),
///     BasicBlock::new(BlockId(1), AddrRange::new(Addr::new(8), Addr::new(16)), 2, 2),
///     BasicBlock::new(BlockId(2), AddrRange::new(Addr::new(16), Addr::new(24)), 4, 2),
/// ];
/// let edges = vec![(BlockId(0), BlockId(1)), (BlockId(1), BlockId(1)), (BlockId(1), BlockId(2))];
/// let cfg = Cfg::new(blocks, edges, BlockId(0));
/// assert_eq!(cfg.back_edges(), vec![(BlockId(1), BlockId(1))]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    entry: BlockId,
}

impl Cfg {
    /// Builds a CFG from blocks and directed edges.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint or the entry is out of range, or if
    /// block ids are not the dense sequence `0..blocks.len()`.
    #[must_use]
    pub fn new(blocks: Vec<BasicBlock>, edges: Vec<(BlockId, BlockId)>, entry: BlockId) -> Self {
        let n = blocks.len();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.id().0, i, "block ids must be dense and in order");
        }
        assert!(entry.0 < n, "entry block out of range");
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (from, to) in edges {
            assert!(from.0 < n && to.0 < n, "edge endpoint out of range");
            succs[from.0].push(to);
            preds[to.0].push(from);
        }
        Self {
            blocks,
            succs,
            preds,
            entry,
        }
    }

    /// The blocks, indexed by [`BlockId`].
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// The entry block id.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Successors of `id`.
    #[must_use]
    pub fn successors(&self, id: BlockId) -> &[BlockId] {
        &self.succs[id.0]
    }

    /// Predecessors of `id`.
    #[must_use]
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.0]
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the CFG has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks in reverse post-order from the entry.
    ///
    /// Unreachable blocks are omitted.
    #[must_use]
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        if n == 0 {
            return Vec::new();
        }
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (node, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.0] = true;
        while let Some(&(node, next)) = stack.last() {
            if next < self.succs[node.0].len() {
                stack.last_mut().expect("stack is non-empty").1 += 1;
                let succ = self.succs[node.0][next];
                if !visited[succ.0] {
                    visited[succ.0] = true;
                    stack.push((succ, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators, `idom[b]`, for every reachable block
    /// (Cooper–Harvey–Kennedy). The entry's idom is itself; unreachable
    /// blocks get `None`.
    #[must_use]
    pub fn immediate_dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.blocks.len();
        let rpo = self.reverse_post_order();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[self.entry.0] = Some(self.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_index[a.0] > rpo_index[b.0] {
                    a = idom[a.0].expect("processed block has idom");
                }
                while rpo_index[b.0] > rpo_index[a.0] {
                    b = idom[b.0].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in &self.preds[b.0] {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0] != Some(ni) {
                        idom[b.0] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom
    }

    /// `true` when `a` dominates `b` (reflexively).
    ///
    /// Walks the idom chain; callers doing bulk queries should compute
    /// [`Cfg::immediate_dominators`] once instead.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let idom = self.immediate_dominators();
        dominates_with(&idom, self.entry, a, b)
    }

    /// Back edges `u → v` (where `v` dominates `u`), in edge order.
    #[must_use]
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        let idom = self.immediate_dominators();
        let mut out = Vec::new();
        for (u, succs) in self.succs.iter().enumerate() {
            if idom[u].is_none() {
                continue; // unreachable
            }
            for &v in succs {
                if dominates_with(&idom, self.entry, v, BlockId(u)) {
                    out.push((BlockId(u), v));
                }
            }
        }
        out
    }

    /// Renders the CFG in Graphviz dot syntax (block address ranges as
    /// node labels, back edges dashed) — a debugging aid for inspecting
    /// generated binaries.
    ///
    /// # Example
    ///
    /// ```
    /// use regmon_binary::{Addr, BinaryBuilder};
    ///
    /// let mut b = BinaryBuilder::new("t");
    /// b.procedure("f", |p| { p.loop_(|l| { l.straight(3); }); });
    /// let bin = b.build(Addr::new(0x1000));
    /// let dot = bin.procedure_by_name("f").unwrap().cfg().to_dot("f");
    /// assert!(dot.starts_with("digraph f {"));
    /// assert!(dot.contains("style=dashed")); // the loop's back edge
    /// ```
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        use core::fmt::Write as _;
        let back: Vec<(BlockId, BlockId)> = self.back_edges();
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for b in &self.blocks {
            let _ = writeln!(
                out,
                "  bb{} [label=\"bb{}\\n{}\"];",
                b.id().0,
                b.id().0,
                b.range()
            );
        }
        for (u, succs) in self.succs.iter().enumerate() {
            for &v in succs {
                let style = if back.contains(&(BlockId(u), v)) {
                    " [style=dashed]"
                } else {
                    ""
                };
                let _ = writeln!(out, "  bb{} -> bb{}{};", u, v.0, style);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Natural loops: for each back edge `u → v`, the header `v` and the
    /// set of blocks that can reach `u` without passing through `v`.
    ///
    /// Loops sharing a header are merged (the classical convention).
    /// Returned sorted by header id; each entry is `(header, body)` with
    /// the body sorted and including the header.
    #[must_use]
    pub fn natural_loops(&self) -> Vec<(BlockId, Vec<BlockId>)> {
        let mut loops: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for (tail, header) in self.back_edges() {
            let mut body = vec![false; self.blocks.len()];
            body[header.0] = true;
            let mut stack = Vec::new();
            if !body[tail.0] {
                body[tail.0] = true;
                stack.push(tail);
            }
            while let Some(b) = stack.pop() {
                for &p in &self.preds[b.0] {
                    if !body[p.0] {
                        body[p.0] = true;
                        stack.push(p);
                    }
                }
            }
            let members: Vec<BlockId> = (0..self.blocks.len())
                .filter(|&i| body[i])
                .map(BlockId)
                .collect();
            if let Some(existing) = loops.iter_mut().find(|(h, _)| *h == header) {
                let mut merged: Vec<BlockId> = existing.1.iter().copied().chain(members).collect();
                merged.sort_unstable();
                merged.dedup();
                existing.1 = merged;
            } else {
                loops.push((header, members));
            }
        }
        loops.sort_by_key(|(h, _)| *h);
        loops
    }
}

/// `true` when `a` dominates `b` given precomputed idoms.
fn dominates_with(idom: &[Option<BlockId>], entry: BlockId, a: BlockId, b: BlockId) -> bool {
    if idom[b.0].is_none() || idom[a.0].is_none() {
        return false; // unreachable blocks dominate nothing
    }
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        if cur == entry {
            return false;
        }
        cur = idom[cur.0].expect("reachable block has idom");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, AddrRange};

    fn block(i: usize) -> BasicBlock {
        let start = Addr::new((i * 8) as u64);
        BasicBlock::new(BlockId(i), AddrRange::from_len(start, 8), i * 2, 2)
    }

    fn make_cfg(n: usize, edges: &[(usize, usize)]) -> Cfg {
        let blocks = (0..n).map(block).collect();
        let edges = edges
            .iter()
            .map(|&(a, b)| (BlockId(a), BlockId(b)))
            .collect();
        Cfg::new(blocks, edges, BlockId(0))
    }

    #[test]
    fn straight_line_has_no_back_edges() {
        let cfg = make_cfg(3, &[(0, 1), (1, 2)]);
        assert!(cfg.back_edges().is_empty());
        assert!(cfg.natural_loops().is_empty());
    }

    #[test]
    fn rpo_starts_at_entry() {
        let cfg = make_cfg(3, &[(0, 1), (1, 2)]);
        assert_eq!(
            cfg.reverse_post_order(),
            vec![BlockId(0), BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn rpo_skips_unreachable() {
        let cfg = make_cfg(3, &[(0, 1)]);
        assert_eq!(cfg.reverse_post_order(), vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn simple_loop_detected() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let cfg = make_cfg(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        assert_eq!(cfg.back_edges(), vec![(BlockId(2), BlockId(1))]);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].0, BlockId(1));
        assert_eq!(loops[0].1, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn self_loop_detected() {
        let cfg = make_cfg(2, &[(0, 0), (0, 1)]);
        assert_eq!(cfg.back_edges(), vec![(BlockId(0), BlockId(0))]);
        let loops = cfg.natural_loops();
        assert_eq!(loops[0].1, vec![BlockId(0)]);
    }

    #[test]
    fn nested_loops_detected() {
        // 0 -> 1(outer hdr) -> 2(inner hdr) -> 3 -> 2 (inner back)
        //                      3 -> 4 -> 1 (outer back), 4 -> 5
        let cfg = make_cfg(6, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4), (4, 1), (4, 5)]);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|(h, _)| *h == BlockId(1)).unwrap();
        let inner = loops.iter().find(|(h, _)| *h == BlockId(2)).unwrap();
        assert_eq!(inner.1, vec![BlockId(2), BlockId(3)]);
        assert_eq!(
            outer.1,
            vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)]
        );
        // Inner is properly nested inside outer.
        assert!(inner.1.iter().all(|b| outer.1.contains(b)));
    }

    #[test]
    fn loops_sharing_header_are_merged() {
        // Two back edges to the same header 1: 2 -> 1 and 3 -> 1.
        let cfg = make_cfg(4, &[(0, 1), (1, 2), (2, 1), (1, 3), (3, 1)]);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].1, vec![BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn idom_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let cfg = make_cfg(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let idom = cfg.immediate_dominators();
        assert_eq!(idom[0], Some(BlockId(0)));
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        assert_eq!(idom[3], Some(BlockId(0)));
        assert!(cfg.dominates(BlockId(0), BlockId(3)));
        assert!(!cfg.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn dominates_is_reflexive_for_reachable() {
        let cfg = make_cfg(2, &[(0, 1)]);
        assert!(cfg.dominates(BlockId(1), BlockId(1)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let cfg = make_cfg(3, &[(0, 1)]);
        let idom = cfg.immediate_dominators();
        assert_eq!(idom[2], None);
        assert!(!cfg.dominates(BlockId(2), BlockId(1)));
        assert!(!cfg.dominates(BlockId(0), BlockId(2)));
    }

    #[test]
    fn irreducible_region_yields_no_spurious_loop() {
        // Classic irreducible graph: 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1.
        // Neither 1 nor 2 dominates the other, so no back edge exists.
        let cfg = make_cfg(3, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        assert!(cfg.back_edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        let blocks = vec![BasicBlock::new(
            BlockId(1),
            AddrRange::from_len(Addr::new(0), 8),
            0,
            2,
        )];
        let _ = Cfg::new(blocks, vec![], BlockId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = make_cfg(2, &[(0, 5)]);
    }
}
