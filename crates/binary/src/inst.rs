//! Instructions of the synthetic binary.
//!
//! Instructions are fixed-width (4 bytes, SPARC-like) so that an address
//! maps to an instruction *slot* by simple arithmetic — the same property
//! the paper's per-region histograms rely on.

use crate::addr::Addr;
use core::fmt;

/// Fixed instruction width in bytes (SPARC-style RISC encoding).
pub const INST_BYTES: u64 = 4;

/// The operation class of a synthetic instruction.
///
/// The phase detectors never inspect instruction kinds, but the runtime
/// optimizer simulator does: data prefetching targets [`InstKind::Load`]
/// instructions, and region formation ends regions at control transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Memory load; the prefetch candidate class.
    Load,
    /// Memory store.
    Store,
    /// Integer ALU operation.
    IntAlu,
    /// Floating-point operation.
    FpAlu,
    /// Conditional or unconditional branch to `target`.
    Branch {
        /// Branch target address.
        target: Addr,
    },
    /// Procedure call to `target` (resolved by name in [`crate::Binary`]).
    Call {
        /// Entry address of the callee.
        target: Addr,
    },
    /// Procedure return.
    Ret,
    /// No-op (padding).
    Nop,
}

impl InstKind {
    /// `true` for control-transfer instructions (branch/call/ret).
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(self, Self::Branch { .. } | Self::Call { .. } | Self::Ret)
    }

    /// `true` for memory-access instructions (load/store).
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Self::Load | Self::Store)
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Load => write!(f, "ld"),
            Self::Store => write!(f, "st"),
            Self::IntAlu => write!(f, "alu"),
            Self::FpAlu => write!(f, "fp"),
            Self::Branch { target } => write!(f, "br {target}"),
            Self::Call { target } => write!(f, "call {target}"),
            Self::Ret => write!(f, "ret"),
            Self::Nop => write!(f, "nop"),
        }
    }
}

/// One instruction at a fixed address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    addr: Addr,
    kind: InstKind,
}

impl Instruction {
    /// Creates an instruction.
    #[must_use]
    pub fn new(addr: Addr, kind: InstKind) -> Self {
        Self { addr, kind }
    }

    /// The instruction's address.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The instruction's operation class.
    #[must_use]
    pub fn kind(&self) -> InstKind {
        self.kind
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>8}: {}", self.addr.to_string(), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert!(InstKind::Ret.is_control());
        assert!(InstKind::Branch {
            target: Addr::new(0)
        }
        .is_control());
        assert!(InstKind::Call {
            target: Addr::new(0)
        }
        .is_control());
        assert!(!InstKind::Load.is_control());
        assert!(!InstKind::Nop.is_control());
    }

    #[test]
    fn memory_classification() {
        assert!(InstKind::Load.is_memory());
        assert!(InstKind::Store.is_memory());
        assert!(!InstKind::IntAlu.is_memory());
    }

    #[test]
    fn display_formats() {
        let i = Instruction::new(
            Addr::new(0x1000),
            InstKind::Branch {
                target: Addr::new(0xff0),
            },
        );
        assert_eq!(i.to_string(), "    1000: br ff0");
        assert_eq!(InstKind::Load.to_string(), "ld");
    }

    #[test]
    fn accessors() {
        let i = Instruction::new(Addr::new(8), InstKind::Store);
        assert_eq!(i.addr(), Addr::new(8));
        assert_eq!(i.kind(), InstKind::Store);
    }
}
