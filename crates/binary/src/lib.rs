//! Synthetic binary model for the `regmon` phase-detection library.
//!
//! The paper's runtime optimizer (ADORE/SPARC) samples the program counter
//! of a real SPEC CPU2000 binary and forms optimization regions around hot
//! *loops*. This crate provides the stand-in for those binaries: a fully
//! synthetic but structurally faithful model of a program image —
//! procedures laid out in one address space, each with instructions, basic
//! blocks, a control-flow graph, and natural loops detected from CFG back
//! edges via dominator analysis.
//!
//! The phase detectors downstream only ever observe *addresses* and region
//! metadata, so a synthetic address space exercises exactly the same code
//! paths as a real binary would (see `DESIGN.md` §2 for the substitution
//! argument).
//!
//! # Example
//!
//! ```
//! use regmon_binary::{Addr, BinaryBuilder};
//!
//! let mut b = BinaryBuilder::new("toy");
//! b.procedure("main", |p| {
//!     p.straight(4);
//!     p.loop_(|l| {
//!         l.straight(8);
//!         l.loop_(|inner| {
//!             inner.straight(3);
//!         });
//!     });
//!     p.straight(2);
//! });
//! let bin = b.build(Addr::new(0x10000));
//!
//! let main = bin.procedure_by_name("main").unwrap();
//! assert_eq!(main.loops().len(), 2); // outer + inner
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod addr;
pub mod binary;
pub mod builder;
pub mod cfg;
pub mod inst;
pub mod loops;
pub mod proc;

pub use addr::{Addr, AddrRange};
pub use binary::{Binary, CallSite};
pub use builder::{BinaryBuilder, CodeBuilder};
pub use cfg::{BasicBlock, BlockId, Cfg};
pub use inst::{InstKind, Instruction, INST_BYTES};
pub use loops::{LoopId, LoopInfo};
pub use proc::{ProcId, Procedure};
