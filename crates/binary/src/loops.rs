//! Loop metadata derived from natural-loop detection.
//!
//! A [`LoopInfo`] is the unit the paper's region builder turns into a
//! monitored region: an address range, a nesting depth and a link to its
//! parent loop. Loop nesting is recovered from block-set containment.

use crate::addr::AddrRange;
use crate::cfg::BlockId;
use core::fmt;

/// Index of a loop within its procedure (outermost-first order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub usize);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// One natural loop of a procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    id: LoopId,
    header: BlockId,
    blocks: Vec<BlockId>,
    range: AddrRange,
    depth: usize,
    parent: Option<LoopId>,
}

impl LoopInfo {
    /// Creates loop metadata; used by [`crate::Procedure`] construction.
    #[must_use]
    pub fn new(
        id: LoopId,
        header: BlockId,
        blocks: Vec<BlockId>,
        range: AddrRange,
        depth: usize,
        parent: Option<LoopId>,
    ) -> Self {
        Self {
            id,
            header,
            blocks,
            range,
            depth,
            parent,
        }
    }

    /// The loop's identifier within its procedure.
    #[must_use]
    pub fn id(&self) -> LoopId {
        self.id
    }

    /// The loop header block.
    #[must_use]
    pub fn header(&self) -> BlockId {
        self.header
    }

    /// The blocks of the loop body (sorted, includes the header).
    #[must_use]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The address span of the loop body.
    #[must_use]
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Nesting depth: `0` for outermost loops.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The immediately-enclosing loop, if any.
    #[must_use]
    pub fn parent(&self) -> Option<LoopId> {
        self.parent
    }

    /// Number of instruction slots covered by the loop's address range.
    #[must_use]
    pub fn inst_slots(&self) -> usize {
        (self.range.len() / crate::inst::INST_BYTES) as usize
    }
}

/// Computes nesting metadata for natural loops.
///
/// Input: `(header, body)` pairs from [`crate::Cfg::natural_loops`] and a
/// function mapping a block id to its address range. Output is sorted
/// outermost-first (by body size descending, then header), with `depth`
/// and `parent` filled in by smallest-enclosing-superset.
pub(crate) fn build_loop_infos(
    natural: &[(BlockId, Vec<BlockId>)],
    block_range: impl Fn(BlockId) -> AddrRange,
) -> Vec<LoopInfo> {
    // Sort outermost first so parents precede children.
    let mut order: Vec<usize> = (0..natural.len()).collect();
    order.sort_by_key(|&i| (usize::MAX - natural[i].1.len(), natural[i].0));

    let mut infos: Vec<LoopInfo> = Vec::with_capacity(natural.len());
    for (new_id, &orig) in order.iter().enumerate() {
        let (header, body) = &natural[orig];
        let mut start = None;
        let mut end = None;
        for &b in body {
            let r = block_range(b);
            start = Some(start.map_or(r.start(), |s: crate::addr::Addr| s.min(r.start())));
            end = Some(end.map_or(r.end(), |e: crate::addr::Addr| e.max(r.end())));
        }
        let range = AddrRange::new(
            start.expect("loop body is non-empty"),
            end.expect("loop body is non-empty"),
        );
        // Parent: the smallest already-placed loop whose body strictly
        // contains this body.
        let mut parent: Option<LoopId> = None;
        let mut parent_size = usize::MAX;
        for prev in &infos {
            let prev_body = prev.blocks();
            if prev_body.len() > body.len()
                && body.iter().all(|b| prev_body.contains(b))
                && prev_body.len() < parent_size
            {
                parent = Some(prev.id());
                parent_size = prev_body.len();
            }
        }
        let depth = parent.map_or(0, |p| infos[p.0].depth() + 1);
        infos.push(LoopInfo::new(
            LoopId(new_id),
            *header,
            body.clone(),
            range,
            depth,
            parent,
        ));
    }
    infos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn range_of(b: BlockId) -> AddrRange {
        AddrRange::from_len(Addr::new((b.0 * 16) as u64), 16)
    }

    #[test]
    fn single_loop_depth_zero() {
        let natural = vec![(BlockId(1), vec![BlockId(1), BlockId(2)])];
        let infos = build_loop_infos(&natural, range_of);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].depth(), 0);
        assert_eq!(infos[0].parent(), None);
        assert_eq!(
            infos[0].range(),
            AddrRange::new(Addr::new(16), Addr::new(48))
        );
        assert_eq!(infos[0].inst_slots(), 8);
    }

    #[test]
    fn nested_loops_get_parent_and_depth() {
        let natural = vec![
            (BlockId(2), vec![BlockId(2), BlockId(3)]),
            (
                BlockId(1),
                vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)],
            ),
        ];
        let infos = build_loop_infos(&natural, range_of);
        assert_eq!(infos.len(), 2);
        // Outermost first.
        assert_eq!(infos[0].header(), BlockId(1));
        assert_eq!(infos[0].depth(), 0);
        assert_eq!(infos[1].header(), BlockId(2));
        assert_eq!(infos[1].depth(), 1);
        assert_eq!(infos[1].parent(), Some(infos[0].id()));
    }

    #[test]
    fn triple_nesting() {
        let natural = vec![
            (BlockId(3), vec![BlockId(3)]),
            (BlockId(2), vec![BlockId(2), BlockId(3), BlockId(4)]),
            (
                BlockId(1),
                vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4), BlockId(5)],
            ),
        ];
        let infos = build_loop_infos(&natural, range_of);
        assert_eq!(infos[0].depth(), 0);
        assert_eq!(infos[1].depth(), 1);
        assert_eq!(infos[2].depth(), 2);
        assert_eq!(infos[2].parent(), Some(infos[1].id()));
    }

    #[test]
    fn sibling_loops_share_no_parent() {
        let natural = vec![
            (BlockId(1), vec![BlockId(1), BlockId(2)]),
            (BlockId(3), vec![BlockId(3), BlockId(4)]),
        ];
        let infos = build_loop_infos(&natural, range_of);
        assert!(infos.iter().all(|l| l.depth() == 0 && l.parent().is_none()));
    }
}
