//! Procedures: named address ranges with instructions, a CFG and loops.

use crate::addr::{Addr, AddrRange};
use crate::cfg::Cfg;
use crate::inst::{Instruction, INST_BYTES};
use crate::loops::{build_loop_infos, LoopId, LoopInfo};
use core::fmt;

/// Index of a procedure within its [`crate::Binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// A procedure of the synthetic binary.
///
/// Loops are detected from the CFG at construction (natural loops via
/// dominators) and exposed outermost-first with nesting metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    id: ProcId,
    name: String,
    range: AddrRange,
    insts: Vec<Instruction>,
    cfg: Cfg,
    loops: Vec<LoopInfo>,
}

impl Procedure {
    /// Assembles a procedure, running loop detection on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction count does not match the address range
    /// (`range.len() == insts.len() * INST_BYTES`) or instructions are not
    /// laid out contiguously from `range.start()`.
    #[must_use]
    pub fn new(
        id: ProcId,
        name: impl Into<String>,
        range: AddrRange,
        insts: Vec<Instruction>,
        cfg: Cfg,
    ) -> Self {
        assert_eq!(
            range.len(),
            insts.len() as u64 * INST_BYTES,
            "address range does not match instruction count"
        );
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(
                inst.addr(),
                range.start() + i as u64 * INST_BYTES,
                "instructions must be contiguous from the range start"
            );
        }
        let natural = cfg.natural_loops();
        let loops = build_loop_infos(&natural, |b| cfg.block(b).range());
        Self {
            id,
            name: name.into(),
            range,
            insts,
            cfg,
            loops,
        }
    }

    /// The procedure's id within its binary.
    #[must_use]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The procedure's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The procedure's address range.
    #[must_use]
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// The instructions, in address order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// The control-flow graph.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Natural loops, outermost-first, indexed by [`LoopId`].
    #[must_use]
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// The loop with the given id.
    #[must_use]
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.0]
    }

    /// The innermost loop whose address range contains `addr`, if any.
    ///
    /// Useful because nested loop ranges all contain the inner loop's
    /// addresses; region formation picks the innermost (deepest).
    #[must_use]
    pub fn innermost_loop_at(&self, addr: Addr) -> Option<&LoopInfo> {
        self.loops
            .iter()
            .filter(|l| l.range().contains(addr))
            .max_by_key(|l| l.depth())
    }

    /// The basic block containing `addr`, if `addr` lies within this
    /// procedure.
    ///
    /// Blocks tile the procedure's range, so any in-range address
    /// resolves to exactly one block.
    #[must_use]
    pub fn block_at(&self, addr: Addr) -> Option<&crate::cfg::BasicBlock> {
        if !self.range.contains(addr) {
            return None;
        }
        self.cfg.blocks().iter().find(|b| b.range().contains(addr))
    }

    /// The instruction at `addr`, if `addr` lies within this procedure and
    /// on an instruction boundary.
    #[must_use]
    pub fn instruction_at(&self, addr: Addr) -> Option<&Instruction> {
        if !self.range.contains(addr) {
            return None;
        }
        let off = addr.offset_from(self.range.start());
        if off % INST_BYTES != 0 {
            return None;
        }
        self.insts.get((off / INST_BYTES) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BinaryBuilder;
    use crate::inst::InstKind;

    fn sample_binary() -> crate::binary::Binary {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.straight(2);
            p.loop_(|l| {
                l.straight(3);
                l.loop_(|inner| {
                    inner.straight(2);
                });
                l.straight(1);
            });
            p.straight(1);
        });
        b.build(Addr::new(0x1000))
    }

    #[test]
    fn loops_are_outermost_first() {
        let bin = sample_binary();
        let f = bin.procedure_by_name("f").unwrap();
        assert_eq!(f.loops().len(), 2);
        assert_eq!(f.loops()[0].depth(), 0);
        assert_eq!(f.loops()[1].depth(), 1);
        assert!(f.loops()[0].range().contains_range(f.loops()[1].range()));
    }

    #[test]
    fn innermost_loop_lookup() {
        let bin = sample_binary();
        let f = bin.procedure_by_name("f").unwrap();
        let inner = &f.loops()[1];
        let found = f.innermost_loop_at(inner.range().start()).unwrap();
        assert_eq!(found.id(), inner.id());
        // An address in the outer loop but not the inner one resolves to
        // the outer loop.
        let outer = &f.loops()[0];
        let found = f.innermost_loop_at(outer.range().start()).unwrap();
        assert_eq!(found.id(), outer.id());
    }

    #[test]
    fn block_at_resolves_every_in_range_address() {
        let bin = sample_binary();
        let f = bin.procedure_by_name("f").unwrap();
        let mut addr = f.range().start();
        while addr < f.range().end() {
            let b = f.block_at(addr).unwrap();
            assert!(b.range().contains(addr));
            addr = addr + INST_BYTES;
        }
        assert!(f.block_at(f.range().end()).is_none());
    }

    #[test]
    fn instruction_at_boundary_and_misaligned() {
        let bin = sample_binary();
        let f = bin.procedure_by_name("f").unwrap();
        let start = f.range().start();
        assert!(f.instruction_at(start).is_some());
        assert!(f.instruction_at(start + 1).is_none()); // misaligned
        assert!(f.instruction_at(f.range().end()).is_none()); // out of range
    }

    #[test]
    fn instructions_are_contiguous() {
        let bin = sample_binary();
        let f = bin.procedure_by_name("f").unwrap();
        for w in f.instructions().windows(2) {
            assert_eq!(w[1].addr().offset_from(w[0].addr()), INST_BYTES);
        }
    }

    #[test]
    fn back_edge_branch_targets_loop_header() {
        let bin = sample_binary();
        let f = bin.procedure_by_name("f").unwrap();
        let inner = &f.loops()[1];
        // The last instruction of the inner loop is its back-edge branch.
        let last = f.instruction_at(inner.range().end() - INST_BYTES).unwrap();
        match last.kind() {
            InstKind::Branch { target } => assert_eq!(target, inner.range().start()),
            other => panic!("expected back-edge branch, got {other}"),
        }
    }
}
