//! Minimal flag parsing (no external dependencies).

/// Parsed positional arguments and `--key value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Parsed {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

/// Flags that take no value.
const BOOL_FLAGS: [&str; 8] = [
    "json",
    "interprocedural",
    "steal",
    "pin",
    "compress",
    "no-finish",
    "resume",
    "cpd",
];

/// Parses `argv` into positionals and options.
///
/// # Errors
///
/// Returns an error for an option with a missing value.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                out.options.push((key.to_string(), None));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                out.options.push((key.to_string(), Some(value.clone())));
            }
        } else {
            out.positional.push(arg.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// `true` when the boolean flag `key` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.iter().any(|(k, _)| k == key)
    }

    /// The value of `--key`, parsed, or `default`.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse as `T`.
    pub fn value_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.iter().rev().find(|(k, _)| k == key) {
            Some((_, Some(v))) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
            _ => Ok(default),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| (*v).to_string()).collect()
    }

    #[test]
    fn positionals_and_options() {
        let p = parse(&argv(&["181.mcf", "--period", "45000", "--json"])).unwrap();
        assert_eq!(p.positional(0), Some("181.mcf"));
        assert!(p.flag("json"));
        assert_eq!(p.value_or("period", 0u64).unwrap(), 45_000);
        assert_eq!(p.value_or("intervals", 7usize).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--period"])).is_err());
    }

    #[test]
    fn bad_value_is_an_error() {
        let p = parse(&argv(&["--period", "abc"])).unwrap();
        assert!(p.value_or("period", 0u64).is_err());
    }

    #[test]
    fn steal_is_a_bool_flag() {
        // `--steal` must not swallow the following argument as a value.
        let p = parse(&argv(&["--steal", "--batch", "8"])).unwrap();
        assert!(p.flag("steal"));
        assert_eq!(p.value_or("batch", 1usize).unwrap(), 8);
    }

    #[test]
    fn pin_is_a_bool_flag() {
        // `--pin --json` must leave `--json` intact, not eat it as a value.
        let p = parse(&argv(&["--pin", "--json"])).unwrap();
        assert!(p.flag("pin"));
        assert!(p.flag("json"));
    }

    #[test]
    fn last_occurrence_wins() {
        let p = parse(&argv(&["--period", "1", "--period", "2"])).unwrap();
        assert_eq!(p.value_or("period", 0u64).unwrap(), 2);
    }
}
