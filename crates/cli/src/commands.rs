//! The CLI subcommands.

use regmon::rto::{simulate, speedup_percent, RtoConfig, RtoMode};
use regmon::sampling::Sampler;
use regmon::workload::{suite, Workload};
use regmon::{MonitoringSession, SessionConfig};
use regmon_baselines::{BbvConfig, BbvDetector, WssConfig, WssDetector};

use crate::args::parse;
use crate::json::Json;

/// Usage text.
pub const USAGE: &str = "\
regmon — region monitoring for local phase detection (CGO'06 reproduction)

USAGE:
  regmon list
  regmon run <benchmark> [--period N] [--intervals N] [--skid N] [--interprocedural] [--json]
  regmon sweep <benchmark> [--intervals N]
  regmon rto <benchmark> [--period N] [--intervals N]
  regmon baselines <benchmark> [--period N] [--intervals N]
  regmon help

Benchmarks are the synthetic SPEC CPU2000-like models (see `regmon list`).
Periods are cycles per PMU interrupt (paper sweep: 45000/450000/900000).";

fn workload(name: Option<&str>) -> Result<Workload, String> {
    let name = name.ok_or("missing <benchmark> argument")?;
    if let Some(w) = suite::by_name(name) {
        return Ok(w);
    }
    // Ergonomics: allow the bare program name ("mcf" for "181.mcf") when
    // it is unambiguous.
    let matches: Vec<&str> = suite::names()
        .into_iter()
        .filter(|n| n.split('.').nth(1) == Some(name) || n.contains(name))
        .collect();
    match matches.as_slice() {
        [one] => Ok(suite::by_name(one).expect("listed names build")),
        [] => Err(format!("unknown benchmark {name:?}; try `regmon list`")),
        many => Err(format!("ambiguous benchmark {name:?}: {many:?}")),
    }
}

/// `regmon list`
pub fn list() {
    println!("{:<14} {:>7} {:>8}  notes", "benchmark", "procs", "loops");
    for name in suite::names() {
        let w = suite::by_name(name).expect("listed names build");
        let procs = w.binary().procedures().len();
        let loops: usize = w
            .binary()
            .procedures()
            .iter()
            .map(|p| p.loops().len())
            .sum();
        let note = match name {
            "181.mcf" => "paper's running example (Figs 2, 9, 10, 17)",
            "187.facerec" => "periodic region switching (Fig 5)",
            "254.gap" | "186.crafty" => "high UCR: hot code called from loops (Figs 6, 7)",
            "188.ammp" => "very large region, r near threshold (Fig 13)",
            "178.galgel" => "GPD thrash champion (Fig 3)",
            _ => "",
        };
        println!("{name:<14} {procs:>7} {loops:>8}  {note}");
    }
}

/// `regmon run <benchmark>`
pub fn run(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let w = workload(p.positional(0))?;
    let period: u64 = p.value_or("period", 45_000)?;
    let intervals: usize = p.value_or("intervals", 200)?;
    let skid: u64 = p.value_or("skid", 0)?;
    if skid >= period {
        return Err("--skid must be smaller than --period".into());
    }
    let mut config = SessionConfig::new(period);
    config.sampling = config.sampling.with_skid(skid);
    config.formation.interprocedural = p.flag("interprocedural");
    let summary = MonitoringSession::run_limited(&w, &config, intervals);

    if p.flag("json") {
        let regions: Vec<Json> = summary
            .lpd
            .iter()
            .map(|(id, s)| {
                Json::obj(vec![
                    ("region", Json::Str(id.to_string())),
                    ("intervals", Json::Num(s.intervals as f64)),
                    ("active", Json::Num(s.active_intervals as f64)),
                    ("stable_fraction", Json::Num(s.stable_fraction())),
                    ("phase_changes", Json::Num(s.phase_changes as f64)),
                ])
            })
            .collect();
        let out = Json::obj(vec![
            ("benchmark", Json::Str(summary.workload.clone())),
            ("period", Json::Num(summary.period as f64)),
            ("intervals", Json::Num(summary.intervals as f64)),
            ("interprocedural", Json::Bool(p.flag("interprocedural"))),
            (
                "gpd_phase_changes",
                Json::Num(summary.gpd.phase_changes as f64),
            ),
            (
                "gpd_stable_fraction",
                Json::Num(summary.gpd.stable_fraction()),
            ),
            ("ucr_median", Json::Num(summary.ucr_median)),
            ("regions_formed", Json::Num(summary.regions_formed as f64)),
            ("regions", Json::Arr(regions)),
        ]);
        println!("{}", out.render());
        return Ok(());
    }

    println!(
        "== {} @ {} cycles/interrupt ==",
        summary.workload, summary.period
    );
    println!("intervals      : {}", summary.intervals);
    println!("regions formed : {}", summary.regions_formed);
    println!("median UCR     : {:.1}%", summary.ucr_median * 100.0);
    println!(
        "GPD            : {} changes, {:.1}% stable",
        summary.gpd.phase_changes,
        summary.gpd.stable_fraction() * 100.0
    );
    println!(
        "LPD            : {} changes across {} regions",
        summary.lpd_total_phase_changes(),
        summary.lpd.len()
    );
    for (id, s) in &summary.lpd {
        println!(
            "  {id}: active {:>4}/{:<4} stable {:>5.1}% changes {}",
            s.active_intervals,
            s.intervals,
            s.stable_fraction() * 100.0,
            s.phase_changes
        );
    }
    Ok(())
}

/// `regmon sweep <benchmark>` — the paper's three sampling periods.
pub fn sweep(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let w = workload(p.positional(0))?;
    let intervals_45k: usize = p.value_or("intervals", 400)?;
    println!(
        "{:>8} | {:>11} {:>9} | {:>11} {:>9}",
        "period", "GPD changes", "GPD %stab", "LPD changes", "LPD %stab"
    );
    for period in regmon::sampling::SWEEP_PERIODS {
        let config = SessionConfig::new(period);
        let budget = ((45_000 * intervals_45k as u64) / period).max(8) as usize;
        let s = MonitoringSession::run_limited(&w, &config, budget);
        println!(
            "{:>8} | {:>11} {:>8.1}% | {:>11} {:>8.1}%",
            period,
            s.gpd.phase_changes,
            s.gpd.stable_fraction() * 100.0,
            s.lpd_total_phase_changes(),
            s.lpd_mean_stable_fraction() * 100.0
        );
    }
    Ok(())
}

/// `regmon rto <benchmark>` — optimizer comparison at one period.
pub fn rto(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let w = workload(p.positional(0))?;
    let period: u64 = p.value_or("period", 800_000)?;
    let intervals: usize = p.value_or("intervals", usize::MAX)?;
    let mut config = RtoConfig::new(period);
    if intervals != usize::MAX {
        config.max_intervals = Some(intervals);
    }
    let orig = simulate(&w, &config, RtoMode::Global);
    let lpd = simulate(&w, &config, RtoMode::Local);
    println!("== {} @ {period} cycles/interrupt ==", w.name());
    for (label, r) in [
        ("RTO_ORIG (GPD-gated)", &orig),
        ("RTO_LPD  (per-region)", &lpd),
    ] {
        println!(
            "{label}: speedup over baseline {:>6.2}%, stable {:>5.1}%, {} patches / {} unpatches",
            r.speedup_over_baseline_percent(),
            r.detector_stable_fraction * 100.0,
            r.patch_events,
            r.unpatch_events
        );
    }
    println!(
        "RTO_LPD over RTO_ORIG: {:+.2}%",
        speedup_percent(&orig, &lpd)
    );
    Ok(())
}

/// `regmon baselines <benchmark>` — all three global schemes side by side.
pub fn baselines(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let w = workload(p.positional(0))?;
    let period: u64 = p.value_or("period", 45_000)?;
    let intervals: usize = p.value_or("intervals", 400)?;

    let config = SessionConfig::new(period);
    let mut session = MonitoringSession::new(config.clone());
    session.attach_binary(&w);
    let mut bbv = BbvDetector::new(BbvConfig::default());
    let mut wss = WssDetector::new(WssConfig::default());
    for interval in Sampler::new(&w, config.sampling).take(intervals) {
        bbv.observe(w.binary(), &interval.samples);
        wss.observe(w.binary(), &interval.samples);
        session.process_interval(&interval);
    }
    let summary = session.summary(w.name());

    println!(
        "== {} @ {period} cycles/interrupt, {} intervals ==",
        w.name(),
        summary.intervals
    );
    println!(
        "{:<26} {:>13} {:>10}",
        "detector", "phase changes", "% stable"
    );
    let rows = [
        (
            "centroid (paper GPD)",
            summary.gpd.phase_changes,
            summary.gpd.stable_fraction(),
        ),
        (
            "basic-block vector",
            bbv.stats().phase_changes,
            bbv.stats().stable_fraction(),
        ),
        (
            "working-set signature",
            wss.stats().phase_changes,
            wss.stats().stable_fraction(),
        ),
    ];
    for (label, changes, frac) in rows {
        println!("{label:<26} {changes:>13} {:>9.1}%", frac * 100.0);
    }
    println!(
        "{:<26} {:>13} {:>9.1}%   (per-region; the paper's contribution)",
        "local (LPD, mean region)",
        summary.lpd_total_phase_changes(),
        summary.lpd_mean_stable_fraction() * 100.0
    );
    Ok(())
}
