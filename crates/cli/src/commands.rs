//! The CLI subcommands.

use std::path::{Path, PathBuf};

use regmon::regions::IndexKind;
use regmon::rto::{simulate, speedup_percent, RtoConfig, RtoMode};
use regmon::sampling::Sampler;
use regmon::workload::{suite, Workload};
use regmon::{MonitoringSession, SessionConfig, SessionSummary};
use regmon_baselines::{BbvConfig, BbvDetector, WssConfig, WssDetector};
use regmon_cpd::{CpdHub, EDivConfig, Metric, SeriesKey, StreamConfig, NO_REGION, NO_TENANT};
use regmon_fleet::{
    batch_bucket_label, run_fleet, CpdReport, FleetConfig, Pacing, QueuePolicy, Schedule,
    TenantSpec, BATCH_BUCKETS,
};
use regmon_serve::replay::ReplayOptions;
use regmon_serve::server::{ServeMode, ServeOptions, ServeReport};
use regmon_serve::wire::Frame;
use regmon_stats::{simd, SimdLevel};

use crate::args::{parse, Parsed};
use crate::json::Json;

/// Usage text.
pub const USAGE: &str = "\
regmon — region monitoring for local phase detection (CGO'06 reproduction)

USAGE:
  regmon list
  regmon run <benchmark> [--period N] [--intervals N] [--skid N] [--interprocedural]
             [--index linear|tree|flat] [--parallel-attrib N] [--json]
             [--simd scalar|sse2|avx2] [--trace-out FILE] [--record FILE]
  regmon features [--simd scalar|sse2|avx2] [--json]
  regmon sweep <benchmark> [--intervals N]
  regmon rto <benchmark> [--period N] [--intervals N]
  regmon baselines <benchmark> [--period N] [--intervals N]
  regmon fleet <benchmark|all> [--tenants N] [--shards N] [--intervals N]
               [--period N] [--queue-depth N] [--policy block|drop-oldest]
               [--batch N] [--steal] [--pin] [--pacing lockstep|freerun]
               [--index linear|tree|flat] [--parallel-attrib N] [--json]
               [--simd scalar|sse2|avx2] [--metrics-every N]
               [--trace-out FILE] [--record DIR]
               [--cpd] [--degrade TENANT:INTERVAL]
  regmon replay <journal> [--json] [--snapshot-at N] [--snapshot-out FILE]
               [--resume FILE]
  regmon serve (--unix PATH | --tcp ADDR) [--shards N] [--queue-depth N]
               [--expect-sessions N] [--serve-loop threads|events]
               [--event-workers N] [--wire-version 1|2|auto]
               [--durable DIR | --recover DIR] [--checkpoint-every N]
               [--fsync always|checkpoint|never] [--idle-timeout-ms N]
               [--max-conns N] [--drain-deadline-ms N]
               [--json] [--trace-out FILE]
  regmon send <journal> (--unix PATH | --tcp ADDR)
               [--wire-version 1|2|auto] [--compress] [--retries N]
               [--timeout-ms N] [--backoff-ms N] [--resume] [--no-finish]
  regmon migrate <journal> --at N (--from PATH | --from-tcp ADDR)
               (--to PATH | --to-tcp ADDR) [--compress] [--retries N]
               [--timeout-ms N] [--backoff-ms N]
  regmon metrics [<benchmark>] [--intervals N] [--json]
  regmon metrics --check FILE
  regmon cpd (--trace FILE | --bench FILE[,FILE...]) [--top N] [--json]
               [--simd scalar|sse2|avx2]
  regmon help

Benchmarks are the synthetic SPEC CPU2000-like models (see `regmon list`).
Periods are cycles per PMU interrupt (paper sweep: 45000/450000/900000).

Out-of-process ingestion: `--record` writes the sampled intervals as a
wire frame journal; `regmon replay` re-processes a journal
byte-identically to the run that recorded it (optionally checkpointing
with --snapshot-at/--snapshot-out, or resuming with --resume);
`regmon serve` ingests journals streamed by `regmon send` over a unix
socket or TCP and reports each finished session like `regmon run`.

The wire speaks two versions, settled per connection: v1 (the original
raw-sample frames, byte-identical forever) and v2 (delta-encoded
columnar batches, roughly 8x smaller, optionally LZ-compressed with
--compress). `regmon send` negotiates by default (--wire-version auto)
and falls back to v1 against an old server; results are byte-identical
over every version/compression combination. `--serve-loop events`
multiplexes all connections over a fixed pool of poll(2) workers
instead of one thread per connection. `regmon migrate` moves a live
session between two servers mid-stream: the first server checkpoints
and retires the tenant, the second resumes it byte-identically.

Durability: `serve --durable DIR` write-ahead-logs every admitted
batch (CRC-checked wire frames) and checkpoints each session's RGSN
atomically every --checkpoint-every intervals; after a crash,
`serve --recover DIR` replays the WAL tails past the last checkpoint
and every session resumes byte-identically (torn tails are truncated,
never fatal). `send --retries N` reconnects with deterministic
exponential backoff and resumes from the last acknowledged interval;
on giving up it exits nonzero reporting the exact frame/interval
position. `--max-conns` sheds excess connections with a Busy reply,
--idle-timeout-ms reaps silent peers, and --drain-deadline-ms bounds
shutdown when a peer wedges mid-frame.

SIMD kernel dispatch resolves at startup (`regmon features` shows the
detected level); `--simd` or the REGMON_SIMD env var dial it down —
results are bitwise identical at every level. `regmon fleet --pin`
pins shard workers to CPUs (best-effort, Linux only; never affects
results).

Telemetry is off unless requested: `--trace-out` writes a
chrome://tracing event journal, `--metrics-every N` prints a Prometheus
exposition to stderr every N lockstep rounds, and `regmon metrics`
prints the registry after a short demo run (`--check` validates a
previously written trace/snapshot/exposition file).

Change-point detection: `fleet --cpd` runs streaming E-divisive
detectors over every tenant's UCR and per-region r/rt series plus
per-shard queue stalls, reporting which series shifted, at which
interval, by how much, and with what permutation-test confidence —
deterministically (byte-identical across batch/steal/simd, and the
JSON without `--cpd` is unchanged). `--degrade TENANT:INTERVAL` plants
a synthetic regression to exercise it. Offline, `regmon cpd --trace`
re-hunts a recorded trace artifact and finds the same points, and
`regmon cpd --bench` watches the committed BENCH_*.json history.";

/// Applies a `--simd LEVEL` override: the in-process equivalent of
/// setting `REGMON_SIMD`, scoped to this invocation. Safe to dial
/// anywhere because every dispatch level is bitwise-identical; errors
/// when the host cannot honor the request.
fn apply_simd_flag(p: &Parsed) -> Result<(), String> {
    let want: String = p.value_or("simd", String::new())?;
    if want.is_empty() {
        return Ok(());
    }
    let level = SimdLevel::parse(&want)
        .ok_or_else(|| format!("--simd {want:?}: expected scalar|sse2|avx2"))?;
    if simd::force(level) != level {
        return Err(format!(
            "--simd {}: unsupported on this host (detected {})",
            level.label(),
            simd::detected().label()
        ));
    }
    Ok(())
}

fn workload(name: Option<&str>) -> Result<Workload, String> {
    let name = name.ok_or("missing <benchmark> argument")?;
    if let Some(w) = suite::by_name(name) {
        return Ok(w);
    }
    // Ergonomics: allow the bare program name ("mcf" for "181.mcf") when
    // it is unambiguous.
    let matches: Vec<&str> = suite::names()
        .into_iter()
        .filter(|n| n.split('.').nth(1) == Some(name) || n.contains(name))
        .collect();
    match matches.as_slice() {
        [one] => Ok(suite::by_name(one).expect("listed names build")),
        [] => Err(format!("unknown benchmark {name:?}; try `regmon list`")),
        many => Err(format!("ambiguous benchmark {name:?}: {many:?}")),
    }
}

/// The candidate closest to `given` by edit distance, when close
/// enough to plausibly be a typo — powers `did you mean ...?` errors.
pub fn closest<'a>(given: &str, candidates: &[&'a str]) -> Option<&'a str> {
    candidates
        .iter()
        .map(|c| (edit_distance(given, c), *c))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= 2.max(given.len() / 3))
        .map(|(_, c)| c)
}

/// Classic Levenshtein distance (two-row dynamic program).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// `regmon list`
pub fn list() {
    println!("{:<14} {:>7} {:>8}  notes", "benchmark", "procs", "loops");
    for name in suite::names() {
        let w = suite::by_name(name).expect("listed names build");
        let procs = w.binary().procedures().len();
        let loops: usize = w
            .binary()
            .procedures()
            .iter()
            .map(|p| p.loops().len())
            .sum();
        let note = match name {
            "181.mcf" => "paper's running example (Figs 2, 9, 10, 17)",
            "187.facerec" => "periodic region switching (Fig 5)",
            "254.gap" | "186.crafty" => "high UCR: hot code called from loops (Figs 6, 7)",
            "188.ammp" => "very large region, r near threshold (Fig 13)",
            "178.galgel" => "GPD thrash champion (Fig 3)",
            _ => "",
        };
        println!("{name:<14} {procs:>7} {loops:>8}  {note}");
    }
}

/// `regmon run <benchmark>`
pub fn run(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    apply_simd_flag(&p)?;
    let w = workload(p.positional(0))?;
    let period: u64 = p.value_or("period", 45_000)?;
    let intervals: usize = p.value_or("intervals", 200)?;
    let skid: u64 = p.value_or("skid", 0)?;
    if skid >= period {
        return Err("--skid must be smaller than --period".into());
    }
    let mut config = SessionConfig::new(period);
    config.sampling = config.sampling.with_skid(skid);
    config.formation.interprocedural = p.flag("interprocedural");
    config.index = IndexKind::parse(&p.value_or("index", "tree".to_string())?)?;
    config.parallel_attrib = p.value_or("parallel-attrib", 0)?;
    let trace_out: String = p.value_or("trace-out", String::new())?;
    if !trace_out.is_empty() {
        regmon_telemetry::set_enabled(true);
    }
    let summary = MonitoringSession::run_limited(&w, &config, intervals);
    if !trace_out.is_empty() {
        write_trace(&trace_out)?;
    }
    let record: String = p.value_or("record", String::new())?;
    if !record.is_empty() {
        regmon_serve::record_run(Path::new(&record), &w, &config, intervals)
            .map_err(|e| format!("--record {record}: {e}"))?;
        eprintln!("record: wire journal written to {record}");
    }

    if p.flag("json") {
        println!(
            "{}",
            summary_json(p.flag("interprocedural"), &summary).render()
        );
        return Ok(());
    }
    print_summary_text(&summary);
    Ok(())
}

/// The `regmon run --json` document for one finished session; shared
/// with `replay` and `serve` so all three transports emit byte-identical
/// reports for equivalent sessions.
fn summary_json(interprocedural: bool, summary: &SessionSummary) -> Json {
    let regions: Vec<Json> = summary
        .lpd
        .iter()
        .map(|(id, s)| {
            Json::obj(vec![
                ("region", Json::Str(id.to_string())),
                ("intervals", Json::Num(s.intervals as f64)),
                ("active", Json::Num(s.active_intervals as f64)),
                ("stable_fraction", Json::Num(s.stable_fraction())),
                ("phase_changes", Json::Num(s.phase_changes as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("benchmark", Json::Str(summary.workload.clone())),
        ("period", Json::Num(summary.period as f64)),
        ("intervals", Json::Num(summary.intervals as f64)),
        ("interprocedural", Json::Bool(interprocedural)),
        // The *hardware* level, not the dispatched one: every dispatch
        // level is bitwise-identical, so this document must not vary
        // with REGMON_SIMD/--simd (see `regmon features` for the
        // active level).
        ("host_simd", Json::Str(simd::detected().label().to_string())),
        (
            "gpd_phase_changes",
            Json::Num(summary.gpd.phase_changes as f64),
        ),
        (
            "gpd_stable_fraction",
            Json::Num(summary.gpd.stable_fraction()),
        ),
        ("ucr_median", Json::Num(summary.ucr_median)),
        ("regions_formed", Json::Num(summary.regions_formed as f64)),
        ("regions", Json::Arr(regions)),
    ])
}

/// The `regmon run` text report for one finished session.
fn print_summary_text(summary: &SessionSummary) {
    println!(
        "== {} @ {} cycles/interrupt ==",
        summary.workload, summary.period
    );
    println!("intervals      : {}", summary.intervals);
    println!("regions formed : {}", summary.regions_formed);
    println!("median UCR     : {:.1}%", summary.ucr_median * 100.0);
    println!(
        "GPD            : {} changes, {:.1}% stable",
        summary.gpd.phase_changes,
        summary.gpd.stable_fraction() * 100.0
    );
    println!(
        "LPD            : {} changes across {} regions",
        summary.lpd_total_phase_changes(),
        summary.lpd.len()
    );
    for (id, s) in &summary.lpd {
        println!(
            "  {id}: active {:>4}/{:<4} stable {:>5.1}% changes {}",
            s.active_intervals,
            s.intervals,
            s.stable_fraction() * 100.0,
            s.phase_changes
        );
    }
}

/// `regmon features` — detected SIMD level, dispatch state and CPU
/// placement capabilities. The one place where *active* (as opposed to
/// hardware-detected) settings are reported, so every other `--json`
/// document can stay byte-identical across `REGMON_SIMD`/`--simd`/
/// `--pin`.
pub fn features(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    apply_simd_flag(&p)?;
    let detected = simd::detected();
    let active = simd::active();
    let env = simd::env_override();
    let cpus = regmon_fleet::available_cpus();
    let pinning = regmon_fleet::pinning_supported();
    let supported: Vec<&str> = SimdLevel::ALL
        .iter()
        .filter(|l| l.is_supported())
        .map(|l| l.label())
        .collect();

    if p.flag("json") {
        let out = Json::obj(vec![
            ("host_simd", Json::Str(detected.label().to_string())),
            ("active_simd", Json::Str(active.label().to_string())),
            ("simd_env", env.map_or(Json::Null, Json::Str)),
            (
                "simd_levels",
                Json::Arr(
                    supported
                        .iter()
                        .map(|l| Json::Str((*l).to_string()))
                        .collect(),
                ),
            ),
            ("pinning_supported", Json::Bool(pinning)),
            ("cpus", Json::Num(cpus as f64)),
        ]);
        println!("{}", out.render());
        return Ok(());
    }
    println!("host SIMD        : {}", detected.label());
    println!(
        "active dispatch  : {}{}",
        active.label(),
        match simd::env_override() {
            Some(e) => format!("  ({}={e})", simd::SIMD_ENV),
            None => String::new(),
        }
    );
    println!("levels supported : {}", supported.join(", "));
    println!(
        "worker pinning   : {}",
        if pinning {
            "available (sched_setaffinity)"
        } else {
            "unavailable on this platform"
        }
    );
    println!("cpus             : {cpus}");
    Ok(())
}

/// `regmon sweep <benchmark>` — the paper's three sampling periods.
pub fn sweep(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let w = workload(p.positional(0))?;
    let intervals_45k: usize = p.value_or("intervals", 400)?;
    println!(
        "{:>8} | {:>11} {:>9} | {:>11} {:>9}",
        "period", "GPD changes", "GPD %stab", "LPD changes", "LPD %stab"
    );
    for period in regmon::sampling::SWEEP_PERIODS {
        let config = SessionConfig::new(period);
        let budget = ((45_000 * intervals_45k as u64) / period).max(8) as usize;
        let s = MonitoringSession::run_limited(&w, &config, budget);
        println!(
            "{:>8} | {:>11} {:>8.1}% | {:>11} {:>8.1}%",
            period,
            s.gpd.phase_changes,
            s.gpd.stable_fraction() * 100.0,
            s.lpd_total_phase_changes(),
            s.lpd_mean_stable_fraction() * 100.0
        );
    }
    Ok(())
}

/// `regmon rto <benchmark>` — optimizer comparison at one period.
pub fn rto(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let w = workload(p.positional(0))?;
    let period: u64 = p.value_or("period", 800_000)?;
    let intervals: usize = p.value_or("intervals", usize::MAX)?;
    let mut config = RtoConfig::new(period);
    if intervals != usize::MAX {
        config.max_intervals = Some(intervals);
    }
    let orig = simulate(&w, &config, RtoMode::Global);
    let lpd = simulate(&w, &config, RtoMode::Local);
    println!("== {} @ {period} cycles/interrupt ==", w.name());
    for (label, r) in [
        ("RTO_ORIG (GPD-gated)", &orig),
        ("RTO_LPD  (per-region)", &lpd),
    ] {
        println!(
            "{label}: speedup over baseline {:>6.2}%, stable {:>5.1}%, {} patches / {} unpatches",
            r.speedup_over_baseline_percent(),
            r.detector_stable_fraction * 100.0,
            r.patch_events,
            r.unpatch_events
        );
    }
    println!(
        "RTO_LPD over RTO_ORIG: {:+.2}%",
        speedup_percent(&orig, &lpd)
    );
    Ok(())
}

/// `regmon fleet <benchmark|all>` — a sharded multi-tenant fleet run.
///
/// With `all`, tenants cycle through the whole synthetic suite; with a
/// benchmark name every tenant runs that workload. Without `--period`
/// the tenants use heterogeneous sampling periods (45k/90k/450k cycles)
/// to exercise per-tenant configs. The run is lockstep-paced, so the
/// report — including every backpressure counter — is deterministic;
/// `--json` emits it machine-readably (wall-clock excluded so identical
/// invocations yield byte-identical output).
pub fn fleet(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    apply_simd_flag(&p)?;
    let target = p.positional(0).ok_or("missing <benchmark|all> argument")?;
    let tenants: usize = p.value_or("tenants", 32)?;
    let shards: usize = p.value_or("shards", 4)?;
    let intervals: usize = p.value_or("intervals", 50)?;
    let period: u64 = p.value_or("period", 0)?;
    let queue_depth: usize = p.value_or("queue-depth", 16)?;
    let policy = QueuePolicy::parse(&p.value_or("policy", "block".to_string())?)?;
    let batch: usize = p.value_or("batch", 1)?;
    let steal = p.flag("steal");
    let pin = p.flag("pin");
    let pacing = Pacing::parse(&p.value_or("pacing", "lockstep".to_string())?)?;
    let index = IndexKind::parse(&p.value_or("index", "tree".to_string())?)?;
    let parallel_attrib: usize = p.value_or("parallel-attrib", 0)?;
    let metrics_every: usize = p.value_or("metrics-every", 0)?;
    let trace_out: String = p.value_or("trace-out", String::new())?;
    let record: String = p.value_or("record", String::new())?;
    let cpd_on = p.flag("cpd");
    let degrade: String = p.value_or("degrade", String::new())?;
    if tenants == 0 || shards == 0 || intervals == 0 || queue_depth == 0 || batch == 0 {
        return Err("--tenants/--shards/--intervals/--queue-depth/--batch must be positive".into());
    }
    if cpd_on && pacing == Pacing::Freerun {
        return Err(
            "--cpd needs --pacing lockstep (the detector is driven off the deterministic \
             round tick)"
                .into(),
        );
    }
    let degrade: Option<(usize, usize)> = if degrade.is_empty() {
        None
    } else {
        let (t, n) = degrade
            .split_once(':')
            .ok_or("--degrade expects TENANT:INTERVAL (e.g. --degrade 3:40)")?;
        let t: usize = t
            .parse()
            .map_err(|_| format!("--degrade: cannot parse tenant {t:?}"))?;
        let n: usize = n
            .parse()
            .map_err(|_| format!("--degrade: cannot parse interval {n:?}"))?;
        if t >= tenants || n >= intervals {
            return Err(format!(
                "--degrade {t}:{n}: tenant must be < {tenants} and interval < {intervals}"
            ));
        }
        Some((t, n))
    };
    if metrics_every > 0 || !trace_out.is_empty() || cpd_on {
        regmon_telemetry::set_enabled(true);
    }

    let workloads: Vec<Workload> = if target == "all" {
        suite::names()
            .into_iter()
            .map(|n| suite::by_name(n).expect("listed names build"))
            .collect()
    } else {
        vec![workload(Some(target))?]
    };
    // Resolved display label ("mcf" -> "181.mcf"; "all" stays "all").
    let target = if target == "all" {
        "all".to_string()
    } else {
        workloads[0].name().to_string()
    };
    if !record.is_empty() {
        std::fs::create_dir_all(&record).map_err(|e| format!("--record {record}: {e}"))?;
    }
    let mut specs: Vec<TenantSpec> = Vec::with_capacity(tenants);
    for i in 0..tenants {
        let w = &workloads[i % workloads.len()];
        let tenant_period = if period > 0 {
            period
        } else {
            [45_000, 90_000, 450_000][i % 3]
        };
        let mut config = SessionConfig::new(tenant_period);
        config.index = index;
        config.parallel_attrib = parallel_attrib;
        if !record.is_empty() {
            // One single-tenant journal per tenant (wire tenant id 0 in
            // each file), replayable with `regmon replay`.
            let path = Path::new(&record).join(format!("tenant-{i:03}.rgj"));
            regmon_serve::record_run(&path, w, &config, intervals)
                .map_err(|e| format!("--record {}: {e}", path.display()))?;
        }
        let mut spec = TenantSpec::new(format!("{}#{i}", w.name()), w.clone(), config, intervals);
        if let Some((t, n)) = degrade {
            if t == i {
                spec = spec.with_degrade_from(n);
            }
        }
        specs.push(spec);
    }
    if !record.is_empty() {
        eprintln!("record: {tenants} wire journal(s) written to {record}/");
    }

    let config = FleetConfig::new(shards, queue_depth)
        .with_policy(policy)
        .with_batch(batch)
        .with_steal(steal)
        .with_pin(pin)
        .with_pacing(pacing)
        .with_metrics_every(metrics_every)
        .with_cpd(cpd_on);
    let report = run_fleet(&config, &specs, &Schedule::new());
    let agg = &report.aggregate;
    if !trace_out.is_empty() {
        // The change-point feed drains the journal as it runs, so the
        // trace artifact comes from its event log instead.
        match &report.cpd {
            Some(c) => write_trace_events(&trace_out, &c.events, c.lost)?,
            None => write_trace(&trace_out)?,
        }
    }

    if p.flag("json") {
        let tenants_json: Vec<Json> = report
            .tenants
            .iter()
            .map(|t| {
                let mut pairs = vec![
                    ("id", Json::Num(f64::from(t.id.0))),
                    ("name", Json::Str(t.name.clone())),
                    ("workload", Json::Str(t.workload.clone())),
                    ("shard", Json::Num(t.shard as f64)),
                    ("state", Json::Str(t.state.label().to_string())),
                    ("intervals_produced", Json::Num(t.intervals_produced as f64)),
                    (
                        "intervals_processed",
                        Json::Num(t.intervals_processed as f64),
                    ),
                    ("restarts", Json::Num(t.restarts as f64)),
                ];
                if let Some(s) = &t.summary {
                    pairs.extend([
                        ("period", Json::Num(s.period as f64)),
                        ("gpd_phase_changes", Json::Num(s.gpd.phase_changes as f64)),
                        ("gpd_stable_fraction", Json::Num(s.gpd.stable_fraction())),
                        (
                            "lpd_phase_changes",
                            Json::Num(s.lpd_total_phase_changes() as f64),
                        ),
                        (
                            "lpd_stable_fraction",
                            Json::Num(s.lpd_mean_stable_fraction()),
                        ),
                        ("ucr_median", Json::Num(s.ucr_median)),
                        ("regions_formed", Json::Num(s.regions_formed as f64)),
                        ("regions_pruned", Json::Num(s.regions_pruned as f64)),
                    ]);
                }
                Json::obj(pairs)
            })
            .collect();
        let shards_json: Vec<Json> = report
            .shards
            .iter()
            .map(|s| {
                let labels: Vec<String> = (0..BATCH_BUCKETS).map(batch_bucket_label).collect();
                let histogram: Vec<(&str, Json)> = labels
                    .iter()
                    .enumerate()
                    .map(|(b, label)| (label.as_str(), Json::Num(s.batch_sizes[b] as f64)))
                    .collect();
                Json::obj(vec![
                    ("shard", Json::Num(s.shard as f64)),
                    ("tenants", Json::Num(s.tenants as f64)),
                    ("messages_processed", Json::Num(s.messages_processed as f64)),
                    (
                        "backpressure_stalls",
                        Json::Num(s.backpressure_stalls as f64),
                    ),
                    ("dropped_intervals", Json::Num(s.dropped_intervals as f64)),
                    ("queue_high_water", Json::Num(s.queue_high_water as f64)),
                    ("tenants_stolen", Json::Num(s.tenants_stolen as f64)),
                    ("batch_sizes", Json::obj(histogram)),
                ])
            })
            .collect();
        let mut top = vec![
            ("benchmark", Json::Str(target.to_string())),
            ("tenants", Json::Num(tenants as f64)),
            ("shards", Json::Num(shards as f64)),
            ("intervals", Json::Num(intervals as f64)),
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("batch", Json::Num(batch as f64)),
            ("steal", Json::Bool(steal)),
            // Host capabilities, not per-run placement: this document
            // stays byte-identical with --pin/--simd on or off (the
            // active settings live in `regmon features`).
            ("host_simd", Json::Str(simd::detected().label().to_string())),
            (
                "pinning_supported",
                Json::Bool(regmon_fleet::pinning_supported()),
            ),
            (
                "pacing",
                Json::Str(
                    match pacing {
                        Pacing::Lockstep => "lockstep",
                        Pacing::Freerun => "freerun",
                    }
                    .to_string(),
                ),
            ),
            (
                "policy",
                Json::Str(
                    match policy {
                        QueuePolicy::Block => "block",
                        QueuePolicy::DropOldest => "drop-oldest",
                    }
                    .to_string(),
                ),
            ),
            (
                "aggregate",
                Json::obj(vec![
                    ("completed", Json::Num(agg.completed as f64)),
                    ("evicted", Json::Num(agg.evicted as f64)),
                    ("failed", Json::Num(agg.failed as f64)),
                    ("restarts", Json::Num(agg.restarts as f64)),
                    (
                        "intervals_produced",
                        Json::Num(agg.intervals_produced as f64),
                    ),
                    (
                        "intervals_processed",
                        Json::Num(agg.intervals_processed as f64),
                    ),
                    ("dropped_intervals", Json::Num(agg.dropped_intervals as f64)),
                    (
                        "backpressure_stalls",
                        Json::Num(agg.backpressure_stalls as f64),
                    ),
                    ("tenants_migrated", Json::Num(agg.tenants_migrated as f64)),
                    ("gpd_phase_changes", Json::Num(agg.gpd_phase_changes as f64)),
                    (
                        "gpd_stable_fraction_mean",
                        Json::Num(agg.gpd_stable_fraction_mean),
                    ),
                    ("lpd_phase_changes", Json::Num(agg.lpd_phase_changes as f64)),
                    (
                        "lpd_stable_fraction_mean",
                        Json::Num(agg.lpd_stable_fraction_mean),
                    ),
                    ("ucr_median_mean", Json::Num(agg.ucr_median_mean)),
                    ("regions_formed", Json::Num(agg.regions_formed as f64)),
                    ("regions_pruned", Json::Num(agg.regions_pruned as f64)),
                ]),
            ),
            ("shards_detail", Json::Arr(shards_json)),
            ("tenants_detail", Json::Arr(tenants_json)),
        ];
        // Appended last so output with `--cpd` off is byte-identical to
        // a CPD-less build, and stripping the suffix recovers it.
        if let Some(c) = &report.cpd {
            top.push(("cpd", cpd_json(c)));
        }
        println!("{}", Json::obj(top).render());
        return Ok(());
    }

    println!(
        "== fleet: {target} x {tenants} tenants over {shards} shards (depth {queue_depth}, {policy:?}, batch {batch}{}{}) ==",
        if steal { ", steal" } else { "" },
        if pin { ", pin" } else { "" }
    );
    println!(
        "completed {}  evicted {}  failed {}  restarts {}  migrations {}",
        agg.completed, agg.evicted, agg.failed, agg.restarts, agg.tenants_migrated
    );
    println!(
        "intervals {} produced / {} processed  drops {}  stalls {}",
        agg.intervals_produced,
        agg.intervals_processed,
        agg.dropped_intervals,
        agg.backpressure_stalls
    );
    println!(
        "GPD {} changes ({:.1}% stable mean)   LPD {} changes ({:.1}% stable mean)",
        agg.gpd_phase_changes,
        agg.gpd_stable_fraction_mean * 100.0,
        agg.lpd_phase_changes,
        agg.lpd_stable_fraction_mean * 100.0
    );
    println!(
        "regions {} formed / {} pruned   mean median-UCR {:.1}%   wall {} ms",
        agg.regions_formed,
        agg.regions_pruned,
        agg.ucr_median_mean * 100.0,
        report.wall_ms
    );
    println!(
        "{:>5} {:>8} {:>10} {:>8} {:>8} {:>11} {:>7}  batch sizes",
        "shard", "tenants", "messages", "stalls", "drops", "high-water", "stolen"
    );
    for s in &report.shards {
        let histogram = (0..BATCH_BUCKETS)
            .filter(|&b| s.batch_sizes[b] > 0)
            .map(|b| format!("{}:{}", batch_bucket_label(b), s.batch_sizes[b]))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:>5} {:>8} {:>10} {:>8} {:>8} {:>11} {:>7}  {}",
            s.shard,
            s.tenants,
            s.messages_processed,
            s.backpressure_stalls,
            s.dropped_intervals,
            s.queue_high_water,
            s.tenants_stolen,
            histogram
        );
    }
    if let Some(c) = &report.cpd {
        println!(
            "== change points: {} detected over {} series / {} points ==",
            c.change_points.len(),
            c.series_tracked,
            c.points_ingested
        );
        for cp in &c.change_points {
            println!(
                "{:<34} round {:>4}  magnitude {:+.4}  confidence {:>5.1}%",
                cp.series.label(),
                cp.round,
                cp.magnitude,
                cp.confidence * 100.0
            );
        }
        if c.change_points.is_empty() {
            println!("(no change points; all series stationary)");
        }
    }
    Ok(())
}

/// The `"cpd"` member of `fleet --json`: detections plus hub totals.
/// `CpdReport::lost` is deliberately absent — drain timing makes it
/// scheduling-dependent, like `wall_ms`.
fn cpd_json(c: &CpdReport) -> Json {
    let points: Vec<Json> = c
        .change_points
        .iter()
        .map(|cp| {
            Json::obj(vec![
                ("series", Json::Str(cp.series.label())),
                (
                    "tenant",
                    if cp.series.tenant == NO_TENANT {
                        Json::Null
                    } else {
                        Json::Num(cp.series.tenant as f64)
                    },
                ),
                (
                    // Queue series store the shard index here.
                    "region",
                    if cp.series.region == NO_REGION {
                        Json::Null
                    } else {
                        Json::Num(cp.series.region as f64)
                    },
                ),
                ("metric", Json::Str(cp.series.metric.name().to_string())),
                ("round", Json::Num(cp.round as f64)),
                ("magnitude", Json::Num(cp.magnitude)),
                ("confidence", Json::Num(cp.confidence)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("series_tracked", Json::Num(c.series_tracked as f64)),
        ("points_ingested", Json::Num(c.points_ingested as f64)),
        ("change_points", Json::Arr(points)),
    ])
}

/// `regmon replay <journal>` — re-process a recorded frame journal.
///
/// The replay is byte-identical to the run that recorded the journal:
/// with `--json` the output matches the equivalent `regmon run --json`
/// exactly. `--snapshot-at N --snapshot-out FILE` checkpoints the
/// session after N intervals (and continues); `--resume FILE` restores
/// a checkpoint and skips the intervals it already covers.
pub fn replay(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    apply_simd_flag(&p)?;
    let journal = p.positional(0).ok_or("missing <journal> argument")?;
    let snapshot_at: usize = p.value_or("snapshot-at", 0)?;
    let snapshot_out: String = p.value_or("snapshot-out", String::new())?;
    let resume: String = p.value_or("resume", String::new())?;
    if (snapshot_at > 0) == snapshot_out.is_empty() {
        return Err("--snapshot-at and --snapshot-out must be given together".into());
    }
    let options = ReplayOptions {
        snapshot_at: (snapshot_at > 0).then_some(snapshot_at),
        snapshot_out: (!snapshot_out.is_empty()).then(|| PathBuf::from(&snapshot_out)),
        resume: (!resume.is_empty()).then(|| PathBuf::from(&resume)),
    };
    let outcome = regmon_serve::replay::replay(Path::new(journal), &options)
        .map_err(|e| format!("{journal}: {e}"))?;
    if !snapshot_out.is_empty() {
        eprintln!("snapshot: session checkpoint written to {snapshot_out}");
    }
    for tenant in &outcome.tenants {
        if p.flag("json") {
            println!(
                "{}",
                summary_json(tenant.config.formation.interprocedural, &tenant.summary).render()
            );
        } else {
            print_summary_text(&tenant.summary);
        }
    }
    Ok(())
}

#[cfg(unix)]
fn serve_over_unix(path: &str, options: ServeOptions) -> Result<ServeReport, String> {
    regmon_serve::serve_unix(Path::new(path), options).map_err(|e| format!("--unix {path}: {e}"))
}

#[cfg(not(unix))]
fn serve_over_unix(_path: &str, _options: ServeOptions) -> Result<ServeReport, String> {
    Err("unix sockets are unavailable on this platform; use --tcp ADDR".into())
}

/// `regmon serve` — ingest wire streams from producer processes.
///
/// Accepts `--expect-sessions N` producer sessions over a unix socket
/// or TCP listener, demultiplexes their frames into the fleet engine,
/// then drains and reports every finished session in admission order —
/// with `--json`, one `regmon run --json`-shaped document per session.
pub fn serve(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    apply_simd_flag(&p)?;
    let unix: String = p.value_or("unix", String::new())?;
    let tcp: String = p.value_or("tcp", String::new())?;
    if unix.is_empty() == tcp.is_empty() {
        return Err("serve needs exactly one of --unix PATH or --tcp ADDR".into());
    }
    let durable_dir: String = p.value_or("durable", String::new())?;
    let recover_dir: String = p.value_or("recover", String::new())?;
    if !durable_dir.is_empty() && !recover_dir.is_empty() && durable_dir != recover_dir {
        return Err("--durable and --recover must name the same directory".into());
    }
    let dir = if recover_dir.is_empty() {
        durable_dir
    } else {
        recover_dir.clone()
    };
    let durable = if dir.is_empty() {
        None
    } else {
        Some(regmon_serve::DurableOptions {
            dir: PathBuf::from(dir),
            checkpoint_every: p.value_or("checkpoint-every", 32u64)?,
            fsync: regmon_serve::FsyncPolicy::parse(
                &p.value_or("fsync", "checkpoint".to_string())?,
            )
            .map_err(|e| format!("--fsync: {e}"))?,
        })
    };
    let idle_ms: u64 = p.value_or("idle-timeout-ms", 30_000u64)?;
    let options = ServeOptions {
        shards: p.value_or("shards", 2)?,
        queue_depth: p.value_or("queue-depth", 256)?,
        expect_sessions: p.value_or("expect-sessions", 1)?,
        mode: ServeMode::parse(&p.value_or("serve-loop", "threads".to_string())?)
            .map_err(|e| format!("--serve-loop: {e}"))?,
        event_workers: p.value_or("event-workers", 2)?,
        max_wire_version: parse_wire_version(&p.value_or("wire-version", "auto".to_string())?)?
            .unwrap_or(regmon_serve::WIRE_VERSION),
        durable,
        recover: !recover_dir.is_empty(),
        idle_timeout: (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms)),
        max_conns: p.value_or("max-conns", 0usize)?,
        drain_deadline: std::time::Duration::from_millis(
            p.value_or("drain-deadline-ms", 5_000u64)?,
        ),
    };
    if options.shards == 0
        || options.queue_depth == 0
        || options.expect_sessions == 0
        || options.event_workers == 0
    {
        return Err(
            "--shards/--queue-depth/--expect-sessions/--event-workers must be positive".into(),
        );
    }
    let mode_label = options.mode.label();
    let trace_out: String = p.value_or("trace-out", String::new())?;
    if !trace_out.is_empty() {
        regmon_telemetry::set_enabled(true);
    }

    let report = if unix.is_empty() {
        regmon_serve::serve_tcp(&tcp, options).map_err(|e| format!("--tcp {tcp}: {e}"))?
    } else {
        serve_over_unix(&unix, options)?
    };
    if !trace_out.is_empty() {
        write_trace(&trace_out)?;
    }

    eprintln!(
        "serve: {} session(s) over {} connection(s), {} frames, {} bytes, peak {} handler(s) [{}]",
        report.sessions.len(),
        report.connections,
        report.frames,
        report.bytes,
        report.peak_handlers,
        mode_label
    );
    if report.recovered > 0 {
        eprintln!(
            "serve: {} session(s) recovered from the write-ahead log",
            report.recovered
        );
    }
    if report.shed > 0 {
        eprintln!(
            "serve: {} connection(s) shed at the --max-conns limit",
            report.shed
        );
    }
    if report.stragglers > 0 {
        eprintln!(
            "serve: {} straggler connection(s) abandoned at the drain deadline",
            report.stragglers
        );
    }
    for err in &report.errors {
        eprintln!("serve: connection error: {err}");
    }
    for session in &report.sessions {
        if session.migrated {
            eprintln!("serve: session {:?} migrated away", session.name);
            continue;
        }
        let Some(summary) = &session.summary else {
            eprintln!("serve: session {:?} never finished", session.name);
            continue;
        };
        if p.flag("json") {
            println!(
                "{}",
                summary_json(session.config.formation.interprocedural, summary).render()
            );
        } else {
            print_summary_text(summary);
        }
    }
    Ok(())
}

/// A bidirectional client transport (unix or TCP socket).
trait Transport: std::io::Read + std::io::Write {
    /// Arms the socket read deadline (`None` waits forever).
    fn set_read_deadline(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()>;
}

impl Transport for std::net::TcpStream {
    fn set_read_deadline(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

#[cfg(unix)]
impl Transport for std::os::unix::net::UnixStream {
    fn set_read_deadline(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

#[cfg(unix)]
fn connect_stream(unix: &str, tcp: &str) -> Result<Box<dyn Transport>, String> {
    if unix.is_empty() {
        let stream = std::net::TcpStream::connect(tcp).map_err(|e| format!("--tcp {tcp}: {e}"))?;
        Ok(Box::new(stream))
    } else {
        let stream = std::os::unix::net::UnixStream::connect(unix)
            .map_err(|e| format!("--unix {unix}: {e}"))?;
        Ok(Box::new(stream))
    }
}

#[cfg(not(unix))]
fn connect_stream(unix: &str, tcp: &str) -> Result<Box<dyn Transport>, String> {
    if !unix.is_empty() {
        return Err("unix sockets are unavailable on this platform; use --tcp ADDR".into());
    }
    let stream = std::net::TcpStream::connect(tcp).map_err(|e| format!("--tcp {tcp}: {e}"))?;
    Ok(Box::new(stream))
}

/// Parses the shared `--retries/--timeout-ms/--backoff-ms` retry knobs.
fn parse_retry_policy(p: &crate::args::Parsed) -> Result<regmon_serve::RetryPolicy, String> {
    Ok(regmon_serve::RetryPolicy {
        retries: p.value_or("retries", 0u32)?,
        timeout: std::time::Duration::from_millis(p.value_or("timeout-ms", 5_000u64)?),
        backoff: std::time::Duration::from_millis(p.value_or("backoff-ms", 50u64)?),
    })
}

/// Parses a `--wire-version` value: `None` means negotiate (auto).
fn parse_wire_version(s: &str) -> Result<Option<u16>, String> {
    match s {
        "auto" | "negotiate" => Ok(None),
        "1" | "v1" => Ok(Some(1)),
        "2" | "v2" => Ok(Some(2)),
        other => Err(format!(
            "unknown wire version {other:?} (accepted: \"1\", \"2\", \"auto\")"
        )),
    }
}

/// `regmon send <journal>` — stream a recorded journal to a live server.
///
/// By default (`--wire-version auto`) the sender offers wire v2 and
/// settles on whatever the server answers, transcoding the journal's
/// frames into the settled dialect — so a v1 journal can travel as
/// delta-encoded (optionally `--compress`ed) v2 frames, and an old v1
/// server still gets byte-identical v1 frames. `--wire-version 1`
/// skips negotiation entirely and streams one-way, exactly like the
/// original sender.
///
/// With `--retries N` a dropped connection reconnects after a
/// deterministic exponential backoff and resumes from the last
/// interval the server acknowledged (wire v2 only); `--resume` opens
/// even the first connection with the resume handshake, continuing a
/// stream a previous process started. On giving up the exit is
/// nonzero and the error reports the exact frame / interval position
/// reached. `--no-finish` streams the journal but leaves every
/// session open (for hand-off to a later `send --resume`).
pub fn send(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let journal = p.positional(0).ok_or("missing <journal> argument")?;
    let unix: String = p.value_or("unix", String::new())?;
    let tcp: String = p.value_or("tcp", String::new())?;
    if unix.is_empty() == tcp.is_empty() {
        return Err("send needs exactly one of --unix PATH or --tcp ADDR".into());
    }
    let compress = p.flag("compress");
    let resume = p.flag("resume");
    let want = parse_wire_version(&p.value_or("wire-version", "auto".to_string())?)
        .map_err(|e| format!("--wire-version: {e}"))?;
    if want == Some(1) && compress {
        return Err("--compress requires wire v2 (drop --wire-version 1)".into());
    }
    let policy = parse_retry_policy(&p)?;

    let frames =
        regmon_serve::read_journal(Path::new(journal)).map_err(|e| format!("{journal}: {e}"))?;
    let mut plan =
        regmon_serve::SendPlan::from_frames(frames).map_err(|e| format!("{journal}: {e}"))?;
    if p.flag("no-finish") {
        for session in &mut plan.sessions {
            session.finish = false;
        }
    }

    let deadline = (!policy.timeout.is_zero()).then_some(policy.timeout);
    let started = std::time::Instant::now();
    let outcome = regmon_serve::send_plan(
        || {
            let stream = connect_stream(&unix, &tcp).map_err(std::io::Error::other)?;
            stream.set_read_deadline(deadline)?;
            Ok(stream)
        },
        &plan,
        want,
        compress,
        &policy,
        resume,
        None,
    )
    .map_err(|e| format!("send: {e}"))?;

    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let retried = if outcome.retries > 0 {
        format!(", {} reconnect(s)", outcome.retries)
    } else {
        String::new()
    };
    eprintln!(
        "send: {} frames, {} bytes streamed, {} intervals, \
         {:.1} ms, {:.3} M intervals/s (wire v{}{}{retried})",
        outcome.frames,
        outcome.bytes,
        outcome.intervals,
        elapsed * 1e3,
        outcome.intervals as f64 / elapsed / 1e6,
        outcome.dialect.version,
        if outcome.dialect.compress {
            ", compressed"
        } else {
            ""
        }
    );
    Ok(())
}

/// `regmon migrate <journal>` — hand a live session from one server to
/// another mid-stream.
///
/// The journal (single tenant) is split at `--at N` intervals: the
/// first server ingests the prefix, a `Checkpoint` frame freezes and
/// retires the tenant there, and the returned session snapshot plus
/// the remaining intervals go to the second server, which finishes the
/// session byte-identically to an uninterrupted run. Both servers must
/// speak wire v2.
pub fn migrate(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let journal = p.positional(0).ok_or("missing <journal> argument")?;
    let at: usize = p.value_or("at", 0)?;
    if at == 0 {
        return Err(
            "--at N (intervals before the hand-off) is required and must be positive".into(),
        );
    }
    let from: String = p.value_or("from", String::new())?;
    let from_tcp: String = p.value_or("from-tcp", String::new())?;
    let to: String = p.value_or("to", String::new())?;
    let to_tcp: String = p.value_or("to-tcp", String::new())?;
    if from.is_empty() == from_tcp.is_empty() {
        return Err("migrate needs exactly one of --from PATH or --from-tcp ADDR".into());
    }
    if to.is_empty() == to_tcp.is_empty() {
        return Err("migrate needs exactly one of --to PATH or --to-tcp ADDR".into());
    }
    let compress = p.flag("compress");
    let policy = parse_retry_policy(&p)?;
    let deadline = (!policy.timeout.is_zero()).then_some(policy.timeout);

    // Load and validate the journal: exactly one tenant, finished.
    let frames =
        regmon_serve::read_journal(Path::new(journal)).map_err(|e| format!("{journal}: {e}"))?;
    let full =
        regmon_serve::SendPlan::from_frames(frames).map_err(|e| format!("{journal}: {e}"))?;
    let session = match full.sessions.as_slice() {
        [] => return Err(format!("{journal}: journal admits no tenant")),
        [one] => one,
        _ => return Err(format!("{journal}: migrate needs a single-tenant journal")),
    };
    if !session.finish {
        return Err(format!("{journal}: journal has no Finish frame"));
    }
    let intervals = session.batches.concat();
    if at >= intervals.len() {
        return Err(format!(
            "--at {at}: journal only has {} intervals (the hand-off must happen mid-stream)",
            intervals.len()
        ));
    }
    let admit = session.admit.clone();
    let tenant = admit.tenant;
    let connect = |unix: &str, tcp: &str| {
        let unix = unix.to_string();
        let tcp = tcp.to_string();
        move || -> std::io::Result<Box<dyn Transport>> {
            let stream = connect_stream(&unix, &tcp).map_err(std::io::Error::other)?;
            stream.set_read_deadline(deadline)?;
            Ok(stream)
        }
    };

    // First server: prefix, then checkpoint-and-retire. Retrying is
    // safe on this leg — resume re-attaches to the half-fed session.
    let prefix = regmon_serve::SendPlan {
        sessions: vec![regmon_serve::SessionStream {
            admit: admit.clone(),
            snapshot: None,
            base: 0,
            batches: intervals[..at].chunks(32).map(<[_]>::to_vec).collect(),
            finish: false,
            checkpoint: true,
        }],
    };
    let first = regmon_serve::send_plan(
        connect(&from, &from_tcp),
        &prefix,
        None,
        compress,
        &policy,
        false,
        None,
    )
    .map_err(|e| format!("migrate (first server): {e}"))?;
    let snapshot = first
        .snapshots
        .into_iter()
        .next()
        .flatten()
        .ok_or("migrate: first server sent no Snapshot answer to Checkpoint")?;

    // Second server: adopt the snapshot, stream the rest.
    let mut suffix_frames = vec![Frame::Snapshot(Box::new(snapshot))];
    for chunk in intervals[at..].chunks(32) {
        suffix_frames.push(Frame::Batch {
            tenant,
            intervals: chunk.to_vec(),
        });
    }
    suffix_frames.push(Frame::Finish { tenant });
    let suffix =
        regmon_serve::SendPlan::from_frames(suffix_frames).map_err(|e| format!("migrate: {e}"))?;
    let second = regmon_serve::send_plan(
        connect(&to, &to_tcp),
        &suffix,
        None,
        compress,
        &policy,
        false,
        None,
    )
    .map_err(|e| format!("migrate (second server): {e}"))?;

    let retried = first.retries + second.retries;
    let retried = if retried > 0 {
        format!(", {retried} reconnect(s)")
    } else {
        String::new()
    };
    eprintln!(
        "migrate: session {:?} handed off after {at}/{} intervals (wire v{}{}{retried})",
        admit.name,
        intervals.len(),
        second.dialect.version,
        if second.dialect.compress {
            ", compressed"
        } else {
            ""
        }
    );
    Ok(())
}

/// Drains the event journal and writes it to `path` as chrome://tracing
/// trace-event JSON.
fn write_trace(path: &str) -> Result<(), String> {
    let drained = regmon_telemetry::journal::drain();
    write_trace_events(path, &drained.events, drained.lost)
}

/// Writes already-drained journal events to `path` as chrome://tracing
/// trace-event JSON.
fn write_trace_events(
    path: &str,
    events: &[regmon_telemetry::journal::Event],
    lost: u64,
) -> Result<(), String> {
    let trace = regmon_telemetry::expo::trace_json(events);
    std::fs::write(path, trace).map_err(|e| format!("--trace-out {path}: {e}"))?;
    let lost = if lost > 0 {
        format!(" ({lost} lost to ring wraparound)")
    } else {
        String::new()
    };
    eprintln!("trace: {} events written to {path}{lost}", events.len());
    Ok(())
}

/// `regmon metrics` — run a short demo and print the registry, or
/// validate a previously written telemetry file with `--check`.
pub fn metrics(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;

    let check: String = p.value_or("check", String::new())?;
    if !check.is_empty() {
        let text = std::fs::read_to_string(&check).map_err(|e| format!("--check {check}: {e}"))?;
        if text.trim_start().starts_with('{') {
            let doc = regmon_telemetry::parse::parse(&text).map_err(|e| format!("{check}: {e}"))?;
            if let Some(events) = doc.get("traceEvents").and_then(|v| v.as_array()) {
                if events.is_empty() {
                    return Err(format!("{check}: trace has no events"));
                }
                let change_points = events
                    .iter()
                    .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("cpd"))
                    .count();
                if change_points > 0 {
                    println!(
                        "ok: trace with {} events ({change_points} change-point)",
                        events.len()
                    );
                } else {
                    println!("ok: trace with {} events", events.len());
                }
            } else if doc.get("counters").is_some() {
                println!("ok: metrics snapshot");
            } else {
                return Err(format!("{check}: JSON is neither a trace nor a snapshot"));
            }
        } else {
            let samples = regmon_telemetry::expo::validate_prometheus(&text)
                .map_err(|e| format!("{check}: {e}"))?;
            if samples == 0 {
                return Err(format!("{check}: exposition has no samples"));
            }
            let cpd_samples = text
                .lines()
                .filter(|l| l.trim_start().starts_with("regmon_cpd_"))
                .count();
            if cpd_samples > 0 {
                println!("ok: prometheus exposition with {samples} samples ({cpd_samples} cpd)");
            } else {
                println!("ok: prometheus exposition with {samples} samples");
            }
        }
        return Ok(());
    }

    let w = workload(Some(p.positional(0).unwrap_or("181.mcf")))?;
    let intervals: usize = p.value_or("intervals", 60)?;
    let config = SessionConfig::new(45_000);
    regmon_telemetry::set_enabled(true);
    let _ = MonitoringSession::run_limited(&w, &config, intervals);
    if p.flag("json") {
        println!("{}", regmon_telemetry::expo::json_snapshot());
    } else {
        print!("{}", regmon_telemetry::expo::prometheus_text());
    }
    Ok(())
}

/// `regmon cpd` — offline change-point hunting over recorded telemetry.
///
/// `--trace FILE` replays a chrome://tracing journal (written by
/// `fleet --trace-out`) through the same streaming detectors the online
/// `fleet --cpd` path uses, so it finds the same change points;
/// `--bench FILE[,FILE...]` treats the numeric headline fields of
/// BENCH_*.json documents as one series per field across the files in
/// order — change-point detection over the repo's own committed bench
/// history. Output is ranked by confidence, then magnitude.
pub fn cpd(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    apply_simd_flag(&p)?;
    let trace: String = p.value_or("trace", String::new())?;
    let bench: String = p.value_or("bench", String::new())?;
    if trace.is_empty() == bench.is_empty() {
        if let Some(pos) = p.positional(0) {
            if let Some(best) = closest(pos, &["--trace", "--bench"]) {
                return Err(format!(
                    "cpd does not take positional argument {pos:?}; did you mean {best}?"
                ));
            }
        }
        return Err("cpd needs exactly one of --trace FILE or --bench FILE[,FILE...]".into());
    }
    let ranked = if trace.is_empty() {
        cpd_over_bench_history(&bench)?
    } else {
        cpd_over_trace(&trace)?
    };
    let top: usize = p.value_or("top", 0)?;
    let shown: &[ChangePointRow] = if top > 0 && top < ranked.len() {
        &ranked[..top]
    } else {
        &ranked
    };

    if p.flag("json") {
        let rows: Vec<Json> = shown
            .iter()
            .map(|row| {
                Json::obj(vec![
                    ("series", Json::Str(row.label.clone())),
                    ("round", Json::Num(row.round as f64)),
                    ("magnitude", Json::Num(row.magnitude)),
                    ("confidence", Json::Num(row.confidence)),
                ])
            })
            .collect();
        let out = Json::obj(vec![
            (
                "source",
                Json::Str(if trace.is_empty() { bench } else { trace }),
            ),
            ("change_points", Json::Arr(rows)),
        ]);
        println!("{}", out.render());
        return Ok(());
    }

    if shown.is_empty() {
        println!("no change points detected");
        return Ok(());
    }
    println!(
        "{:<40} {:>6} {:>12} {:>11}",
        "series", "round", "magnitude", "confidence"
    );
    for row in shown {
        println!(
            "{:<40} {:>6} {:>+12.4} {:>10.1}%",
            row.label,
            row.round,
            row.magnitude,
            row.confidence * 100.0
        );
    }
    Ok(())
}

/// One ranked offline detection, already labeled for display.
struct ChangePointRow {
    label: String,
    round: u64,
    magnitude: f64,
    confidence: f64,
}

/// Ranks detections by confidence, then |magnitude|, breaking ties by
/// label and round so the output is deterministic.
fn rank_rows(mut rows: Vec<ChangePointRow>) -> Vec<ChangePointRow> {
    rows.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.magnitude.abs().total_cmp(&a.magnitude.abs()))
            .then_with(|| a.label.cmp(&b.label))
            .then(a.round.cmp(&b.round))
    });
    rows
}

/// Replays a trace artifact through the online feed's series mapping:
/// `interval_end` markers carry each tenant's dense UCR series (and
/// assign interval ordinals), `lpd_transition` events carry per-region
/// r/rt. Identical per-series point sequences mean identical
/// detections to `fleet --cpd`.
fn cpd_over_trace(path: &str) -> Result<Vec<ChangePointRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--trace {path}: {e}"))?;
    let doc = regmon_telemetry::parse::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{path}: not a trace (no traceEvents array)"))?;

    let mut hub = CpdHub::new(StreamConfig::default());
    let mut intervals_seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let field =
        |ev: &regmon_telemetry::parse::JsonValue, key: &str| ev.get(key).and_then(|v| v.as_f64());
    for ev in events {
        let Some(name) = ev.get("name").and_then(|v| v.as_str()) else {
            continue;
        };
        let Some(tenant) = field(ev, "pid") else {
            continue;
        };
        let tenant = tenant as u64;
        let Some(args) = ev.get("args") else {
            continue;
        };
        match name {
            "interval_end" => {
                let (Some(interval), Some(ucr)) = (field(args, "interval"), field(args, "ucr"))
                else {
                    continue;
                };
                let interval = interval as u64;
                intervals_seen.insert(tenant, interval + 1);
                hub.observe(
                    SeriesKey {
                        tenant,
                        region: NO_REGION,
                        metric: Metric::Ucr,
                    },
                    interval,
                    ucr,
                );
            }
            "lpd_transition" => {
                let (Some(region), Some(r), Some(rt)) =
                    (field(args, "region"), field(args, "r"), field(args, "rt"))
                else {
                    continue;
                };
                let ordinal = intervals_seen.get(&tenant).copied().unwrap_or(0);
                let region = region as u64;
                hub.observe(
                    SeriesKey {
                        tenant,
                        region,
                        metric: Metric::PearsonR,
                    },
                    ordinal,
                    r,
                );
                hub.observe(
                    SeriesKey {
                        tenant,
                        region,
                        metric: Metric::SimilarityThreshold,
                    },
                    ordinal,
                    rt,
                );
            }
            _ => {}
        }
    }
    hub.flush();
    let rows = hub
        .take_detections()
        .into_iter()
        .map(|cp| ChangePointRow {
            label: cp.series.label(),
            round: cp.round,
            magnitude: cp.magnitude,
            confidence: cp.confidence,
        })
        .collect();
    Ok(rank_rows(rows))
}

/// Batch change-point detection over bench-history documents: each
/// top-level numeric field of each file is one point in that field's
/// series, in file order. Histories are short, so the kernel runs with
/// a small minimum segment and more permutations.
fn cpd_over_bench_history(list: &str) -> Result<Vec<ChangePointRow>, String> {
    let files: Vec<&str> = list.split(',').filter(|f| !f.is_empty()).collect();
    if files.is_empty() {
        return Err("--bench: no files given".into());
    }
    let mut series: std::collections::BTreeMap<String, Vec<f64>> =
        std::collections::BTreeMap::new();
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("--bench {file}: {e}"))?;
        let doc = regmon_telemetry::parse::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        let members = doc
            .as_object()
            .ok_or_else(|| format!("{file}: not a JSON object"))?;
        for (key, value) in members {
            if let Some(v) = value.as_f64() {
                series.entry(key.clone()).or_default().push(v);
            } else if let Some(obj) = value.as_object() {
                // One level of nesting covers the snapshots' `headline`
                // objects, where the guarded figures live.
                for (inner, value) in obj {
                    if let Some(v) = value.as_f64() {
                        series.entry(format!("{key}.{inner}")).or_default().push(v);
                    }
                }
            }
        }
    }
    let config = EDivConfig {
        min_segment: 2,
        permutations: 199,
        ..EDivConfig::default()
    };
    let mut rows = Vec::new();
    for (name, values) in &series {
        for d in regmon_cpd::detect(values, &config) {
            rows.push(ChangePointRow {
                label: name.clone(),
                round: d.index as u64,
                magnitude: d.magnitude,
                confidence: d.confidence,
            });
        }
    }
    if series.values().all(|v| v.len() < 2 * config.min_segment) {
        eprintln!(
            "note: {} file(s) give series of at most {} point(s); change-point detection \
             needs at least {}",
            files.len(),
            series.values().map(Vec::len).max().unwrap_or(0),
            2 * config.min_segment
        );
    }
    Ok(rank_rows(rows))
}

/// `regmon baselines <benchmark>` — all three global schemes side by side.
pub fn baselines(argv: &[String]) -> Result<(), String> {
    let p = parse(argv)?;
    let w = workload(p.positional(0))?;
    let period: u64 = p.value_or("period", 45_000)?;
    let intervals: usize = p.value_or("intervals", 400)?;

    let config = SessionConfig::new(period);
    let mut session = MonitoringSession::new(config.clone());
    session.attach_binary(&w);
    let mut bbv = BbvDetector::new(BbvConfig::default());
    let mut wss = WssDetector::new(WssConfig::default());
    for interval in Sampler::new(&w, config.sampling).take(intervals) {
        bbv.observe(w.binary(), &interval.samples);
        wss.observe(w.binary(), &interval.samples);
        session.process_interval(&interval);
    }
    let summary = session.summary(w.name());

    println!(
        "== {} @ {period} cycles/interrupt, {} intervals ==",
        w.name(),
        summary.intervals
    );
    println!(
        "{:<26} {:>13} {:>10}",
        "detector", "phase changes", "% stable"
    );
    let rows = [
        (
            "centroid (paper GPD)",
            summary.gpd.phase_changes,
            summary.gpd.stable_fraction(),
        ),
        (
            "basic-block vector",
            bbv.stats().phase_changes,
            bbv.stats().stable_fraction(),
        ),
        (
            "working-set signature",
            wss.stats().phase_changes,
            wss.stats().stable_fraction(),
        ),
    ];
    for (label, changes, frac) in rows {
        println!("{label:<26} {changes:>13} {:>9.1}%", frac * 100.0);
    }
    println!(
        "{:<26} {:>13} {:>9.1}%   (per-region; the paper's contribution)",
        "local (LPD, mean region)",
        summary.lpd_total_phase_changes(),
        summary.lpd_mean_stable_fraction() * 100.0
    );
    Ok(())
}
