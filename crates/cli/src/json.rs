//! A deliberately tiny JSON emitter (object/array/number/string), enough
//! for machine-readable reports without pulling in a serializer.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum Json {
    /// A JSON number (always emitted via `f64`).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
    /// An ordered object.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Self::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Self::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Self::Null => out.push_str("null"),
            Self::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Self::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Self::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", Json::Str("181.mcf".into())),
            ("stable", Json::Bool(true)),
            ("values", Json::Arr(vec![Json::Num(1.0), Json::Num(0.5)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"181.mcf","stable":true,"values":[1,0.5]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn integers_render_without_point() {
        assert_eq!(Json::Num(45000.0).render(), "45000");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }
}
