//! `regmon` — command-line front end to the phase-detection library.
//!
//! ```text
//! regmon list
//! regmon run 181.mcf [--period 45000] [--intervals 200] [--json]
//! regmon sweep 187.facerec [--intervals-45k 400]
//! regmon rto 181.mcf [--period 1500000] [--intervals 200]
//! regmon baselines 187.facerec [--period 45000] [--intervals 200]
//! regmon fleet all [--tenants 64] [--shards 4] [--intervals 50] [--json]
//! regmon replay session.rgj [--json] [--snapshot-at 20 --snapshot-out ck.rgsn]
//! regmon serve --unix /tmp/regmon.sock [--expect-sessions 4] [--json]
//! regmon send session.rgj --unix /tmp/regmon.sock [--wire-version auto] [--compress]
//! regmon migrate session.rgj --at 20 --from /tmp/a.sock --to /tmp/b.sock
//! regmon metrics [187.facerec] [--json] | regmon metrics --check trace.json
//! regmon cpd --trace trace.json [--json] | regmon cpd --bench BENCH_a.json,BENCH_b.json
//! ```

mod args;
mod commands;
mod json;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "list" => {
            commands::list();
            Ok(())
        }
        "run" => commands::run(rest),
        "features" => commands::features(rest),
        "sweep" => commands::sweep(rest),
        "rto" => commands::rto(rest),
        "baselines" => commands::baselines(rest),
        "fleet" => commands::fleet(rest),
        "replay" => commands::replay(rest),
        "serve" => commands::serve(rest),
        "send" => commands::send(rest),
        "migrate" => commands::migrate(rest),
        "metrics" => commands::metrics(rest),
        "cpd" => commands::cpd(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(unknown_subcommand(other)),
    }
}

const SUBCOMMANDS: [&str; 13] = [
    "list",
    "run",
    "features",
    "sweep",
    "rto",
    "baselines",
    "fleet",
    "replay",
    "serve",
    "send",
    "migrate",
    "metrics",
    "cpd",
];

/// `unknown subcommand "cdp"; did you mean "cpd"?` — the same
/// ergonomics the benchmark argument already has.
fn unknown_subcommand(given: &str) -> String {
    match commands::closest(given, &SUBCOMMANDS) {
        Some(best) => format!("unknown subcommand {given:?}; did you mean {best:?}?"),
        None => format!("unknown subcommand {given:?}"),
    }
}
