//! End-to-end tests of the `regmon` binary.

use std::process::Command;

fn regmon(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args(args)
        .output()
        .expect("spawn regmon");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_every_benchmark() {
    let (ok, stdout, _) = regmon(&["list"]);
    assert!(ok);
    for name in ["164.gzip", "181.mcf", "301.apsi"] {
        assert!(stdout.contains(name), "{name} missing");
    }
}

#[test]
fn run_reports_both_detectors() {
    let (ok, stdout, _) = regmon(&["run", "172.mgrid", "--intervals", "20"]);
    assert!(ok);
    assert!(stdout.contains("GPD"));
    assert!(stdout.contains("LPD"));
    assert!(stdout.contains("regions formed"));
}

#[test]
fn run_json_is_parseable_shape() {
    let (ok, stdout, _) = regmon(&["run", "mcf", "--intervals", "10", "--json"]);
    assert!(ok);
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'));
    assert!(line.contains("\"benchmark\":\"181.mcf\""));
    assert!(line.contains("\"regions\":["));
    // Balanced braces/brackets (the emitter is hand-rolled).
    let opens = line.matches('{').count();
    let closes = line.matches('}').count();
    assert_eq!(opens, closes);
}

#[test]
fn fuzzy_names_resolve_unambiguously() {
    let (ok, stdout, _) = regmon(&["run", "facerec", "--intervals", "8"]);
    assert!(ok);
    assert!(stdout.contains("187.facerec"));
}

#[test]
fn unknown_benchmark_fails_with_hint() {
    let (ok, _, stderr) = regmon(&["run", "999.nope"]);
    assert!(!ok);
    assert!(stderr.contains("regmon list"));
}

#[test]
fn unknown_subcommand_prints_usage() {
    let (ok, _, stderr) = regmon(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn missing_flag_value_is_an_error() {
    let (ok, _, stderr) = regmon(&["run", "172.mgrid", "--period"]);
    assert!(!ok);
    assert!(stderr.contains("requires a value"));
}

#[test]
fn baselines_compares_four_detectors() {
    let (ok, stdout, _) = regmon(&["baselines", "172.mgrid", "--intervals", "20"]);
    assert!(ok);
    for detector in [
        "centroid",
        "basic-block vector",
        "working-set signature",
        "local",
    ] {
        assert!(stdout.contains(detector), "{detector} missing");
    }
}

#[test]
fn rto_reports_speedup() {
    let (ok, stdout, _) = regmon(&[
        "rto",
        "172.mgrid",
        "--period",
        "100000",
        "--intervals",
        "30",
    ]);
    assert!(ok);
    assert!(stdout.contains("RTO_LPD over RTO_ORIG"));
}
