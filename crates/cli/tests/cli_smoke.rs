//! End-to-end tests of the `regmon` binary.

use std::process::Command;

fn regmon(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args(args)
        .output()
        .expect("spawn regmon");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_every_benchmark() {
    let (ok, stdout, _) = regmon(&["list"]);
    assert!(ok);
    for name in ["164.gzip", "181.mcf", "301.apsi"] {
        assert!(stdout.contains(name), "{name} missing");
    }
}

#[test]
fn run_reports_both_detectors() {
    let (ok, stdout, _) = regmon(&["run", "172.mgrid", "--intervals", "20"]);
    assert!(ok);
    assert!(stdout.contains("GPD"));
    assert!(stdout.contains("LPD"));
    assert!(stdout.contains("regions formed"));
}

#[test]
fn run_json_is_parseable_shape() {
    let (ok, stdout, _) = regmon(&["run", "mcf", "--intervals", "10", "--json"]);
    assert!(ok);
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'));
    assert!(line.contains("\"benchmark\":\"181.mcf\""));
    assert!(line.contains("\"regions\":["));
    // Balanced braces/brackets (the emitter is hand-rolled).
    let opens = line.matches('{').count();
    let closes = line.matches('}').count();
    assert_eq!(opens, closes);
}

#[test]
fn fuzzy_names_resolve_unambiguously() {
    let (ok, stdout, _) = regmon(&["run", "facerec", "--intervals", "8"]);
    assert!(ok);
    assert!(stdout.contains("187.facerec"));
}

#[test]
fn unknown_benchmark_fails_with_hint() {
    let (ok, _, stderr) = regmon(&["run", "999.nope"]);
    assert!(!ok);
    assert!(stderr.contains("regmon list"));
}

#[test]
fn unknown_subcommand_prints_usage() {
    let (ok, _, stderr) = regmon(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn missing_flag_value_is_an_error() {
    let (ok, _, stderr) = regmon(&["run", "172.mgrid", "--period"]);
    assert!(!ok);
    assert!(stderr.contains("requires a value"));
}

#[test]
fn baselines_compares_four_detectors() {
    let (ok, stdout, _) = regmon(&["baselines", "172.mgrid", "--intervals", "20"]);
    assert!(ok);
    for detector in [
        "centroid",
        "basic-block vector",
        "working-set signature",
        "local",
    ] {
        assert!(stdout.contains(detector), "{detector} missing");
    }
}

#[test]
fn fleet_text_reports_shards_and_aggregate() {
    let (ok, stdout, _) = regmon(&[
        "fleet",
        "all",
        "--tenants",
        "12",
        "--shards",
        "3",
        "--intervals",
        "10",
    ]);
    assert!(ok);
    assert!(stdout.contains("12 tenants over 3 shards"));
    assert!(stdout.contains("completed 12"));
    assert!(stdout.contains("high-water"));
}

#[test]
fn fleet_json_is_deterministic_across_runs() {
    let args = [
        "fleet",
        "all",
        "--tenants",
        "16",
        "--shards",
        "4",
        "--intervals",
        "12",
        "--json",
    ];
    let (ok_a, a, _) = regmon(&args);
    let (ok_b, b, _) = regmon(&args);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "fleet --json must be byte-identical across runs");
    let line = a.trim();
    assert!(line.starts_with('{') && line.ends_with('}'));
    for key in [
        "\"aggregate\":",
        "\"shards_detail\":",
        "\"tenants_detail\":",
        "\"backpressure_stalls\":",
        "\"gpd_phase_changes\":",
        "\"lpd_phase_changes\":",
        "\"ucr_median",
    ] {
        assert!(line.contains(key), "{key} missing from fleet JSON");
    }
    assert!(
        !line.contains("wall_ms"),
        "wall clock must stay out of JSON"
    );
    assert_eq!(line.matches('{').count(), line.matches('}').count());
}

#[test]
fn fleet_single_benchmark_and_drop_policy() {
    let (ok, stdout, _) = regmon(&[
        "fleet",
        "mcf",
        "--tenants",
        "6",
        "--shards",
        "2",
        "--intervals",
        "8",
        "--queue-depth",
        "1",
        "--policy",
        "drop-oldest",
    ]);
    assert!(ok);
    assert!(stdout.contains("181.mcf"));
    assert!(stdout.contains("completed 6"));
}

#[test]
fn fleet_rejects_bad_policy_and_zero_sizes() {
    let (ok, _, stderr) = regmon(&["fleet", "all", "--policy", "newest-wins"]);
    assert!(!ok);
    assert!(stderr.contains("queue policy"));
    for spelling in ["block", "drop-oldest", "drop_oldest", "dropoldest", "drop"] {
        assert!(
            stderr.contains(spelling),
            "policy error must list the {spelling:?} spelling"
        );
    }
    let (ok, _, stderr) = regmon(&["fleet", "all", "--shards", "0"]);
    assert!(!ok);
    assert!(stderr.contains("positive"));
    let (ok, _, stderr) = regmon(&["fleet", "all", "--batch", "0"]);
    assert!(!ok);
    assert!(stderr.contains("positive"));
    let (ok, _, stderr) = regmon(&["fleet", "all", "--pacing", "warp"]);
    assert!(!ok);
    assert!(stderr.contains("lockstep"));
}

#[test]
fn fleet_accepts_drop_alias() {
    let (ok, stdout, _) = regmon(&[
        "fleet",
        "mcf",
        "--tenants",
        "4",
        "--shards",
        "2",
        "--intervals",
        "6",
        "--queue-depth",
        "1",
        "--policy",
        "drop",
    ]);
    assert!(ok, "--policy drop (short alias) must be accepted");
    assert!(stdout.contains("DropOldest"));
}

#[test]
fn fleet_batch_and_steal_json_matches_per_interval_baseline() {
    let base = [
        "fleet",
        "all",
        "--tenants",
        "12",
        "--shards",
        "3",
        "--intervals",
        "10",
        "--json",
    ];
    let (ok_a, a, _) = regmon(&base);
    let mut batched: Vec<&str> = base.to_vec();
    batched.extend(["--batch", "8", "--steal"]);
    let (ok_b, b, _) = regmon(&batched);
    assert!(ok_a && ok_b);
    assert!(a.contains("\"batch\":1"));
    assert!(b.contains("\"batch\":8"));
    assert!(b.contains("\"steal\":true"));
    assert!(b.contains("\"batch_sizes\":"));
    assert!(b.contains("\"tenants_migrated\":"));
    // The per-tenant detector results must not depend on transport
    // batching or lease stealing: compare the tenants_detail blobs.
    let detail = |s: &str| {
        let start = s.find("\"tenants_detail\":").expect("tenants_detail");
        s[start..].to_string()
    };
    // Tenant shard assignments may differ under stealing, so strip them.
    let strip_shard = |s: String| -> String {
        let mut out = String::with_capacity(s.len());
        let mut rest = s.as_str();
        while let Some(at) = rest.find("\"shard\":") {
            let (head, tail) = rest.split_at(at);
            out.push_str(head);
            let end = tail.find(',').expect("shard field terminated");
            rest = &tail[end + 1..];
        }
        out.push_str(rest);
        out
    };
    assert_eq!(
        strip_shard(detail(&a)),
        strip_shard(detail(&b)),
        "batching + stealing must not change any tenant's results"
    );
}

#[test]
fn rto_reports_speedup() {
    let (ok, stdout, _) = regmon(&[
        "rto",
        "172.mgrid",
        "--period",
        "100000",
        "--intervals",
        "30",
    ]);
    assert!(ok);
    assert!(stdout.contains("RTO_LPD over RTO_ORIG"));
}
