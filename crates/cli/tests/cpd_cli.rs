//! End-to-end CLI contract for change-point detection:
//!
//! - `fleet --json` must be byte-identical with `--cpd` off, and with
//!   it on the document must be the same bytes plus one trailing
//!   `"cpd"` member — across the batching and stealing matrix.
//! - Offline `regmon cpd --trace` must find the same planted change
//!   point the online run reported.
//! - `regmon cpd` output must be byte-identical across `--simd` levels
//!   and across the shard (worker thread) count of the recording run.
//! - Typos get spelling suggestions, and `metrics --check` understands
//!   traces that carry change-point events.

use std::process::Command;

fn regmon(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args(args)
        .output()
        .expect("spawn regmon");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("regmon_cpd_cli_{}_{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn fleet_json_gains_only_a_trailing_cpd_member() {
    for &batch in &["1", "8"] {
        for &steal in &[false, true] {
            let mut base = vec![
                "fleet",
                "all",
                "--tenants",
                "6",
                "--shards",
                "2",
                "--intervals",
                "48",
                "--batch",
                batch,
                "--degrade",
                "3:20",
                "--json",
            ];
            if steal {
                base.push("--steal");
            }
            let (ok, plain, _) = regmon(&base);
            assert!(ok, "plain fleet run failed (batch {batch} steal {steal})");

            let mut with_cpd = base.clone();
            with_cpd.push("--cpd");
            let (ok, cpd, _) = regmon(&with_cpd);
            assert!(ok, "cpd fleet run failed (batch {batch} steal {steal})");

            // Identical prefix: strip the final `}` from the plain doc,
            // the cpd doc must continue it with exactly `,"cpd":`.
            let prefix = plain.trim_end().strip_suffix('}').expect("json object");
            assert!(
                cpd.starts_with(prefix),
                "--cpd perturbed earlier fields (batch {batch} steal {steal})"
            );
            assert!(
                cpd[prefix.len()..].starts_with(",\"cpd\":{"),
                "--cpd must only append a trailing member, got {:?}",
                &cpd[prefix.len()..cpd.len().min(prefix.len() + 40)]
            );
        }
    }
}

#[test]
fn cpd_detections_are_identical_across_batch_and_steal() {
    let mut outputs = Vec::new();
    for &batch in &["1", "8"] {
        for &steal in &[false, true] {
            let mut args = vec![
                "fleet",
                "all",
                "--tenants",
                "6",
                "--shards",
                "2",
                "--intervals",
                "48",
                "--batch",
                batch,
                "--cpd",
                "--degrade",
                "3:20",
                "--json",
            ];
            if steal {
                args.push("--steal");
            }
            let (ok, out, _) = regmon(&args);
            assert!(ok);
            // The document as a whole legitimately encodes the batch
            // and steal settings; the detection member may not.
            let cpd_member = out
                .find("\"cpd\":")
                .map(|i| out[i..].to_string())
                .expect("cpd member present");
            outputs.push(cpd_member);
        }
    }
    for other in &outputs[1..] {
        assert_eq!(
            other, &outputs[0],
            "cpd detections must be byte-identical across batch x steal"
        );
    }
}

#[test]
fn offline_trace_finds_the_online_change_point() {
    let trace = temp_path("trace.json");
    let (ok, online, _) = regmon(&[
        "fleet",
        "all",
        "--tenants",
        "6",
        "--shards",
        "2",
        "--intervals",
        "96",
        "--cpd",
        "--degrade",
        "3:40",
        "--json",
        "--trace-out",
        &trace,
    ]);
    assert!(ok, "online run failed");
    let needle = "\"tenant\":3,\"region\":null,\"metric\":\"ucr\",\"round\":40";
    assert!(
        online.contains(needle),
        "online --cpd must attribute the planted regression: {online}"
    );

    let (ok, offline, _) = regmon(&["cpd", "--trace", &trace, "--json"]);
    assert!(ok, "offline analysis failed");
    assert!(
        offline.contains("\"series\":\"tenant 3 ucr\",\"round\":40"),
        "offline --trace must find the same change point: {offline}"
    );

    // metrics --check recognizes the change-point events in the trace.
    let (ok, check, _) = regmon(&["metrics", "--check", &trace]);
    assert!(ok);
    assert!(
        check.contains("change-point"),
        "metrics --check must count cpd events: {check}"
    );
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn cpd_output_is_byte_identical_across_simd_and_worker_counts() {
    // Two recordings of the same tenants over different worker (shard)
    // counts: the per-tenant series in the trace are equivalence-
    // guaranteed, so the offline analysis must not see a difference.
    let mut outputs = Vec::new();
    for (shards, name) in [("2", "s2.json"), ("4", "s4.json")] {
        let trace = temp_path(name);
        let (ok, _, _) = regmon(&[
            "fleet",
            "all",
            "--tenants",
            "6",
            "--shards",
            shards,
            "--intervals",
            "64",
            "--cpd",
            "--degrade",
            "3:30",
            "--trace-out",
            &trace,
        ]);
        assert!(ok);
        for simd in [None, Some("scalar")] {
            let mut args = vec!["cpd", "--trace", trace.as_str(), "--json"];
            if let Some(level) = simd {
                args.extend(["--simd", level]);
            }
            let (ok, out, _) = regmon(&args);
            assert!(ok, "cpd --trace failed (shards {shards} simd {simd:?})");
            // Outputs carry the trace path; normalize it away so the
            // two recordings compare.
            outputs.push(out.replace(trace.as_str(), "TRACE"));
        }
        let _ = std::fs::remove_file(&trace);
    }
    for other in &outputs[1..] {
        assert_eq!(
            other, &outputs[0],
            "offline cpd output must be byte-identical across simd levels and shard counts"
        );
    }
}

#[test]
fn typos_get_spelling_suggestions() {
    let (ok, _, err) = regmon(&["cdp"]);
    assert!(!ok);
    assert!(
        err.contains("did you mean \"cpd\"?"),
        "subcommand typo must suggest cpd: {err}"
    );

    let (ok, _, err) = regmon(&["cpd", "trace"]);
    assert!(!ok);
    assert!(
        err.contains("did you mean --trace?"),
        "positional mode must suggest the flag: {err}"
    );

    let (ok, _, err) = regmon(&["fleet", "all", "--cpd", "--pacing", "freerun"]);
    assert!(!ok);
    assert!(
        err.contains("lockstep"),
        "--cpd under freerun must explain the pacing requirement: {err}"
    );
}
