//! End-to-end tests of the serve-mode subcommands: `--record`,
//! `replay`, `serve` and `send`.
//!
//! The core guarantee under test: every transport — in-process run,
//! journal replay, checkpoint/resume replay, and a served wire stream —
//! emits *byte-identical* `--json` reports for the same session.

use std::path::PathBuf;
use std::process::Command;

fn regmon(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args(args)
        .output()
        .expect("spawn regmon");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_dir(stem: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regmon-serve-cli-{stem}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn record_then_replay_is_byte_identical_to_run() {
    let dir = temp_dir("replay");
    let journal = dir.join("session.rgj");
    let journal = journal.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--intervals",
        "30",
        "--json",
        "--record",
        journal,
    ]);
    assert!(ok);
    let (ok, replay_json, _) = regmon(&["replay", journal, "--json"]);
    assert!(ok);
    assert_eq!(
        run_json, replay_json,
        "replay --json diverged from run --json"
    );

    // Text mode agrees too.
    let (ok, run_text, _) = regmon(&["run", "181.mcf", "--intervals", "30"]);
    assert!(ok);
    let (ok, replay_text, _) = regmon(&["replay", journal]);
    assert!(ok);
    assert_eq!(run_text, replay_text);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_and_resume_replays_match_the_straight_run() {
    let dir = temp_dir("resume");
    let journal = dir.join("session.rgj");
    let journal = journal.to_str().unwrap();
    let checkpoint = dir.join("ck.rgsn");
    let checkpoint = checkpoint.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "254.gap",
        "--intervals",
        "36",
        "--json",
        "--record",
        journal,
    ]);
    assert!(ok);
    let (ok, snap_json, stderr) = regmon(&[
        "replay",
        journal,
        "--json",
        "--snapshot-at",
        "13",
        "--snapshot-out",
        checkpoint,
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("checkpoint written"));
    let (ok, resume_json, _) = regmon(&["replay", journal, "--json", "--resume", checkpoint]);
    assert!(ok);
    assert_eq!(run_json, snap_json, "checkpointing perturbed the replay");
    assert_eq!(run_json, resume_json, "resumed replay diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_record_writes_replayable_per_tenant_journals() {
    let dir = temp_dir("fleet");
    let journals = dir.join("journals");
    let journals_s = journals.to_str().unwrap();

    let (ok, _, stderr) = regmon(&[
        "fleet",
        "mcf",
        "--tenants",
        "3",
        "--shards",
        "2",
        "--intervals",
        "8",
        "--period",
        "90000",
        "--record",
        journals_s,
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("3 wire journal(s)"));

    // Each journal replays to the equivalent single run.
    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--period",
        "90000",
        "--intervals",
        "8",
        "--json",
    ]);
    assert!(ok);
    for i in 0..3 {
        let journal = journals.join(format!("tenant-{i:03}.rgj"));
        assert!(journal.is_file(), "{} missing", journal.display());
        let (ok, replay_json, _) = regmon(&["replay", journal.to_str().unwrap(), "--json"]);
        assert!(ok);
        assert_eq!(run_json, replay_json, "tenant {i} journal diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_journal_is_refused_by_replay() {
    let dir = temp_dir("corrupt");
    let journal = dir.join("session.rgj");
    let journal_s = journal.to_str().unwrap();
    let (ok, _, _) = regmon(&[
        "run",
        "172.mgrid",
        "--intervals",
        "6",
        "--json",
        "--record",
        journal_s,
    ]);
    assert!(ok);

    let mut bytes = std::fs::read(&journal).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&journal, &bytes).unwrap();
    let (ok, _, stderr) = regmon(&["replay", journal_s, "--json"]);
    assert!(!ok, "corrupted journal must be refused");
    assert!(stderr.contains("error"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_flag_pairing_is_enforced() {
    let (ok, _, stderr) = regmon(&["replay", "whatever.rgj", "--snapshot-at", "5"]);
    assert!(!ok);
    assert!(stderr.contains("--snapshot-out"));
    let (ok, _, stderr) = regmon(&["serve"]);
    assert!(!ok);
    assert!(stderr.contains("--unix PATH or --tcp ADDR"));
    let (ok, _, stderr) = regmon(&["send", "whatever.rgj"]);
    assert!(!ok);
    assert!(stderr.contains("--unix PATH or --tcp ADDR"));
}

/// Spawns `regmon serve --unix <sock> --expect-sessions 1 --json
/// <extra...>` and waits for the socket to appear.
#[cfg(unix)]
fn spawn_server(sock: &std::path::Path, extra: &[&str]) -> std::process::Child {
    use std::process::Stdio;
    use std::time::{Duration, Instant};
    let mut args = vec![
        "serve",
        "--unix",
        sock.to_str().unwrap(),
        "--expect-sessions",
        "1",
        "--json",
    ];
    args.extend_from_slice(extra);
    let server = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn regmon serve");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    server
}

/// Every wire version × compression × serve loop combination must emit
/// the byte-identical `--json` report of the in-process run — including
/// both halves of version negotiation (new client × old server, old
/// client × new server).
#[cfg(unix)]
#[test]
fn wire_version_matrix_is_byte_identical_to_run() {
    let dir = temp_dir("matrix");
    let journal = dir.join("session.rgj");
    let journal_s = journal.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--intervals",
        "20",
        "--json",
        "--record",
        journal_s,
    ]);
    assert!(ok);

    let cases: &[(&str, &[&str], &[&str])] = &[
        ("v2 server, v1 sender", &[], &["--wire-version", "1"]),
        ("v1 server, v2 sender", &["--wire-version", "1"], &[]),
        ("v2 negotiated", &[], &["--wire-version", "2"]),
        ("v2 compressed", &[], &["--compress"]),
        (
            "event loop, v2 compressed",
            &["--serve-loop", "events", "--event-workers", "2"],
            &["--compress"],
        ),
        (
            "event loop, v1 sender",
            &["--serve-loop", "events"],
            &["--wire-version", "1"],
        ),
    ];
    for (label, serve_extra, send_extra) in cases {
        let sock = dir.join("regmon.sock");
        let server = spawn_server(&sock, serve_extra);
        let mut send_args = vec!["send", journal_s, "--unix", sock.to_str().unwrap()];
        send_args.extend_from_slice(send_extra);
        let (ok, _, send_err) = regmon(&send_args);
        assert!(ok, "{label}: {send_err}");
        assert!(send_err.contains("bytes streamed"), "{label}: {send_err}");

        let out = server.wait_with_output().expect("server exit");
        let served_json = String::from_utf8_lossy(&out.stdout).into_owned();
        let served_err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(out.status.success(), "{label}: {served_err}");
        assert_eq!(
            run_json, served_json,
            "{label}: served --json diverged from run --json"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `regmon migrate` hands a session from server A to server B
/// mid-stream; B's report must be byte-identical to the uninterrupted
/// run and A must account the tenant as migrated, not lost.
#[cfg(unix)]
#[test]
fn migrated_session_resumes_byte_identically() {
    let dir = temp_dir("migrate");
    let journal = dir.join("session.rgj");
    let journal_s = journal.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "172.mgrid",
        "--intervals",
        "24",
        "--json",
        "--record",
        journal_s,
    ]);
    assert!(ok);

    let sock_a = dir.join("a.sock");
    let sock_b = dir.join("b.sock");
    let server_a = spawn_server(&sock_a, &[]);
    let server_b = spawn_server(&sock_b, &[]);

    let (ok, _, stderr) = regmon(&[
        "migrate",
        journal_s,
        "--at",
        "11",
        "--from",
        sock_a.to_str().unwrap(),
        "--to",
        sock_b.to_str().unwrap(),
        "--compress",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("handed off after 11/24"), "{stderr}");

    let out_a = server_a.wait_with_output().expect("server A exit");
    let err_a = String::from_utf8_lossy(&out_a.stderr).into_owned();
    assert!(out_a.status.success(), "{err_a}");
    assert!(err_a.contains("migrated away"), "{err_a}");
    assert_eq!(
        String::from_utf8_lossy(&out_a.stdout),
        "",
        "the migrated-away session must not be reported by server A"
    );

    let out_b = server_b.wait_with_output().expect("server B exit");
    let err_b = String::from_utf8_lossy(&out_b.stderr).into_owned();
    assert!(out_b.status.success(), "{err_b}");
    let served_json = String::from_utf8_lossy(&out_b.stdout).into_owned();
    assert_eq!(
        run_json, served_json,
        "migrated session diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The durability smoke, end to end through the CLI: a `--durable`
/// server is SIGKILLed mid-ingest, restarted with `--recover`, and a
/// `send --resume` completes the stream — the final `--json` report is
/// byte-identical to the uninterrupted in-process run.
#[cfg(unix)]
#[test]
fn kill9_recovery_resumes_byte_identically() {
    use std::time::{Duration, Instant};

    let dir = temp_dir("kill9");
    let wal_dir = dir.join("wal");
    let wal_dir_s = wal_dir.to_str().unwrap();
    let full = dir.join("full.rgj");
    let full_s = full.to_str().unwrap();
    let prefix = dir.join("prefix.rgj");
    let prefix_s = prefix.to_str().unwrap();
    let sock = dir.join("regmon.sock");
    let sock_s = sock.to_str().unwrap();

    // The same workload/config samples identically, so the 12-interval
    // journal is an exact prefix of the 30-interval one.
    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--intervals",
        "30",
        "--json",
        "--record",
        full_s,
    ]);
    assert!(ok);
    let (ok, _, _) = regmon(&["run", "181.mcf", "--intervals", "12", "--record", prefix_s]);
    assert!(ok);

    let mut server = spawn_server(&sock, &["--durable", wal_dir_s, "--checkpoint-every", "5"]);
    let (ok, _, stderr) = regmon(&["send", prefix_s, "--unix", sock_s, "--no-finish"]);
    assert!(ok, "{stderr}");

    // Wait for the write-ahead log to exist, then SIGKILL mid-session.
    let wal = wal_dir.join("session-0000.wal");
    let deadline = Instant::now() + Duration::from_secs(10);
    while std::fs::metadata(&wal).map_or(true, |m| m.len() == 0) {
        assert!(Instant::now() < deadline, "WAL never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.kill().expect("kill -9 the server");
    server.wait().expect("reap the killed server");
    std::fs::remove_file(&sock).ok();

    let server = spawn_server(&sock, &["--recover", wal_dir_s]);
    let (ok, _, stderr) = regmon(&[
        "send",
        full_s,
        "--unix",
        sock_s,
        "--resume",
        "--retries",
        "3",
    ]);
    assert!(ok, "{stderr}");

    let out = server.wait_with_output().expect("server exit");
    let served_json = String::from_utf8_lossy(&out.stdout).into_owned();
    let served_err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "{served_err}");
    assert!(served_err.contains("recovered"), "{served_err}");
    assert_eq!(
        run_json, served_json,
        "recovered session diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A send whose retry budget is exhausted exits nonzero and reports
/// the exact stream position it reached.
#[test]
fn exhausted_send_reports_position_and_exits_nonzero() {
    let dir = temp_dir("exhausted");
    let journal = dir.join("session.rgj");
    let journal_s = journal.to_str().unwrap();
    let (ok, _, _) = regmon(&["run", "181.mcf", "--intervals", "6", "--record", journal_s]);
    assert!(ok);

    // Nobody is listening: connection refused on every attempt.
    let (ok, _, stderr) = regmon(&[
        "send",
        journal_s,
        "--tcp",
        "127.0.0.1:1",
        "--retries",
        "1",
        "--backoff-ms",
        "1",
    ]);
    assert!(!ok, "send against a dead server must fail");
    assert!(
        stderr.contains("connection dropped at frame") && stderr.contains("after 2 attempt(s)"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wire_flag_typos_get_spelling_help() {
    let (ok, _, stderr) = regmon(&["send", "x.rgj", "--unix", "/nope", "--wire-version", "3"]);
    assert!(!ok);
    assert!(stderr.contains("\"auto\""), "{stderr}");
    let (ok, _, stderr) = regmon(&["serve", "--unix", "/nope", "--serve-loop", "eventz"]);
    assert!(!ok);
    assert!(stderr.contains("\"events\""), "{stderr}");
    assert!(stderr.contains("\"threads\""), "{stderr}");
}

/// The serve smoke: a server on a unix socket, a producer streaming a
/// recorded journal with `regmon send`, and the served `--json` report
/// byte-identical to the in-process `regmon run --json`.
#[cfg(unix)]
#[test]
fn served_session_json_matches_in_process_run() {
    use std::process::Stdio;
    use std::time::{Duration, Instant};

    let dir = temp_dir("serve");
    let journal = dir.join("session.rgj");
    let journal_s = journal.to_str().unwrap();
    let sock = dir.join("regmon.sock");
    let sock_s = sock.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--intervals",
        "25",
        "--json",
        "--record",
        journal_s,
    ]);
    assert!(ok);

    let server = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args([
            "serve",
            "--unix",
            sock_s,
            "--expect-sessions",
            "1",
            "--json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn regmon serve");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (ok, _, stderr) = regmon(&["send", journal_s, "--unix", sock_s]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("bytes streamed"));

    let out = server.wait_with_output().expect("server exit");
    let served_json = String::from_utf8_lossy(&out.stdout).into_owned();
    let served_err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "{served_err}");
    assert!(served_err.contains("1 session(s)"), "{served_err}");
    assert_eq!(
        run_json, served_json,
        "served --json diverged from run --json"
    );
    std::fs::remove_dir_all(&dir).ok();
}
