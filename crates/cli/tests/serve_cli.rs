//! End-to-end tests of the serve-mode subcommands: `--record`,
//! `replay`, `serve` and `send`.
//!
//! The core guarantee under test: every transport — in-process run,
//! journal replay, checkpoint/resume replay, and a served wire stream —
//! emits *byte-identical* `--json` reports for the same session.

use std::path::PathBuf;
use std::process::Command;

fn regmon(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args(args)
        .output()
        .expect("spawn regmon");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_dir(stem: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regmon-serve-cli-{stem}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn record_then_replay_is_byte_identical_to_run() {
    let dir = temp_dir("replay");
    let journal = dir.join("session.rgj");
    let journal = journal.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--intervals",
        "30",
        "--json",
        "--record",
        journal,
    ]);
    assert!(ok);
    let (ok, replay_json, _) = regmon(&["replay", journal, "--json"]);
    assert!(ok);
    assert_eq!(
        run_json, replay_json,
        "replay --json diverged from run --json"
    );

    // Text mode agrees too.
    let (ok, run_text, _) = regmon(&["run", "181.mcf", "--intervals", "30"]);
    assert!(ok);
    let (ok, replay_text, _) = regmon(&["replay", journal]);
    assert!(ok);
    assert_eq!(run_text, replay_text);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_and_resume_replays_match_the_straight_run() {
    let dir = temp_dir("resume");
    let journal = dir.join("session.rgj");
    let journal = journal.to_str().unwrap();
    let checkpoint = dir.join("ck.rgsn");
    let checkpoint = checkpoint.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "254.gap",
        "--intervals",
        "36",
        "--json",
        "--record",
        journal,
    ]);
    assert!(ok);
    let (ok, snap_json, stderr) = regmon(&[
        "replay",
        journal,
        "--json",
        "--snapshot-at",
        "13",
        "--snapshot-out",
        checkpoint,
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("checkpoint written"));
    let (ok, resume_json, _) = regmon(&["replay", journal, "--json", "--resume", checkpoint]);
    assert!(ok);
    assert_eq!(run_json, snap_json, "checkpointing perturbed the replay");
    assert_eq!(run_json, resume_json, "resumed replay diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_record_writes_replayable_per_tenant_journals() {
    let dir = temp_dir("fleet");
    let journals = dir.join("journals");
    let journals_s = journals.to_str().unwrap();

    let (ok, _, stderr) = regmon(&[
        "fleet",
        "mcf",
        "--tenants",
        "3",
        "--shards",
        "2",
        "--intervals",
        "8",
        "--period",
        "90000",
        "--record",
        journals_s,
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("3 wire journal(s)"));

    // Each journal replays to the equivalent single run.
    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--period",
        "90000",
        "--intervals",
        "8",
        "--json",
    ]);
    assert!(ok);
    for i in 0..3 {
        let journal = journals.join(format!("tenant-{i:03}.rgj"));
        assert!(journal.is_file(), "{} missing", journal.display());
        let (ok, replay_json, _) = regmon(&["replay", journal.to_str().unwrap(), "--json"]);
        assert!(ok);
        assert_eq!(run_json, replay_json, "tenant {i} journal diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_journal_is_refused_by_replay() {
    let dir = temp_dir("corrupt");
    let journal = dir.join("session.rgj");
    let journal_s = journal.to_str().unwrap();
    let (ok, _, _) = regmon(&[
        "run",
        "172.mgrid",
        "--intervals",
        "6",
        "--json",
        "--record",
        journal_s,
    ]);
    assert!(ok);

    let mut bytes = std::fs::read(&journal).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&journal, &bytes).unwrap();
    let (ok, _, stderr) = regmon(&["replay", journal_s, "--json"]);
    assert!(!ok, "corrupted journal must be refused");
    assert!(stderr.contains("error"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_flag_pairing_is_enforced() {
    let (ok, _, stderr) = regmon(&["replay", "whatever.rgj", "--snapshot-at", "5"]);
    assert!(!ok);
    assert!(stderr.contains("--snapshot-out"));
    let (ok, _, stderr) = regmon(&["serve"]);
    assert!(!ok);
    assert!(stderr.contains("--unix PATH or --tcp ADDR"));
    let (ok, _, stderr) = regmon(&["send", "whatever.rgj"]);
    assert!(!ok);
    assert!(stderr.contains("--unix PATH or --tcp ADDR"));
}

/// The serve smoke: a server on a unix socket, a producer streaming a
/// recorded journal with `regmon send`, and the served `--json` report
/// byte-identical to the in-process `regmon run --json`.
#[cfg(unix)]
#[test]
fn served_session_json_matches_in_process_run() {
    use std::process::Stdio;
    use std::time::{Duration, Instant};

    let dir = temp_dir("serve");
    let journal = dir.join("session.rgj");
    let journal_s = journal.to_str().unwrap();
    let sock = dir.join("regmon.sock");
    let sock_s = sock.to_str().unwrap();

    let (ok, run_json, _) = regmon(&[
        "run",
        "181.mcf",
        "--intervals",
        "25",
        "--json",
        "--record",
        journal_s,
    ]);
    assert!(ok);

    let server = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args([
            "serve",
            "--unix",
            sock_s,
            "--expect-sessions",
            "1",
            "--json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn regmon serve");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (ok, _, stderr) = regmon(&["send", journal_s, "--unix", sock_s]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("bytes streamed"));

    let out = server.wait_with_output().expect("server exit");
    let served_json = String::from_utf8_lossy(&out.stdout).into_owned();
    let served_err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "{served_err}");
    assert!(served_err.contains("1 session(s)"), "{served_err}");
    assert_eq!(
        run_json, served_json,
        "served --json diverged from run --json"
    );
    std::fs::remove_dir_all(&dir).ok();
}
