//! Telemetry must be a pure observer: enabling the journal, the trace
//! writer and the periodic exposition may not perturb a lockstep
//! fleet's `--json` output by a single byte, across the batching and
//! stealing matrix. Also smoke-tests the `regmon metrics` surface
//! end-to-end through the real binary.

use std::process::Command;

fn regmon(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_regmon"))
        .args(args)
        .output()
        .expect("spawn regmon");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "regmon_telemetry_cli_{}_{name}",
        std::process::id()
    ));
    p
}

#[test]
fn fleet_json_is_byte_identical_with_telemetry_on() {
    for &batch in &["1", "8"] {
        for &steal in &[false, true] {
            let mut base = vec![
                "fleet",
                "all",
                "--tenants",
                "8",
                "--shards",
                "2",
                "--intervals",
                "10",
                "--batch",
                batch,
                "--json",
            ];
            if steal {
                base.push("--steal");
            }
            let (ok, plain, _) = regmon(&base);
            assert!(ok, "plain fleet run failed (batch {batch}, steal {steal})");

            let trace = temp_path(&format!("trace_b{batch}_s{steal}.json"));
            let trace_str = trace.to_str().expect("utf8 temp path");
            let mut instrumented = base.clone();
            instrumented.extend(["--metrics-every", "1", "--trace-out", trace_str]);
            let (ok, traced, stderr) = regmon(&instrumented);
            assert!(ok, "instrumented fleet run failed: {stderr}");

            assert_eq!(
                plain, traced,
                "telemetry changed fleet --json output (batch {batch}, steal {steal})"
            );
            // The periodic exposition goes to stderr, never stdout.
            assert!(
                stderr.contains("regmon_intervals_processed_total"),
                "--metrics-every 1 produced no exposition on stderr"
            );
            let written = std::fs::read_to_string(&trace).expect("trace file written");
            assert!(written.contains("\"traceEvents\""));
            std::fs::remove_file(&trace).ok();
        }
    }
}

#[test]
fn metrics_command_emits_valid_exposition_and_checks_artifacts() {
    let (ok, stdout, _) = regmon(&["metrics", "mcf", "--intervals", "30"]);
    assert!(ok);
    assert!(stdout.contains("# TYPE regmon_intervals_processed_total counter"));
    assert!(stdout.contains("regmon_attrib_interval_samples_bucket{le=\"+Inf\"}"));

    // The exposition it printed must pass its own validator.
    let expo = temp_path("expo.prom");
    std::fs::write(&expo, &stdout).expect("write exposition");
    let (ok, stdout, _) = regmon(&["metrics", "--check", expo.to_str().expect("utf8 temp path")]);
    assert!(ok);
    assert!(stdout.contains("ok: prometheus exposition"));
    std::fs::remove_file(&expo).ok();

    // A solo run's trace file must check out too (journal non-empty).
    let trace = temp_path("run_trace.json");
    let trace_str = trace.to_str().expect("utf8 temp path");
    let (ok, _, _) = regmon(&["run", "mcf", "--intervals", "40", "--trace-out", trace_str]);
    assert!(ok);
    let (ok, stdout, _) = regmon(&["metrics", "--check", trace_str]);
    assert!(ok, "trace file failed --check");
    assert!(stdout.contains("ok: trace with"));
    std::fs::remove_file(&trace).ok();

    // Garbage must be rejected.
    let bad = temp_path("bad.json");
    std::fs::write(&bad, "{\"traceEvents\":").expect("write bad file");
    let (ok, _, stderr) = regmon(&["metrics", "--check", bad.to_str().expect("utf8 temp path")]);
    assert!(!ok, "malformed file must fail --check");
    assert!(stderr.contains("error"));
    std::fs::remove_file(&bad).ok();
}

#[test]
fn metrics_json_snapshot_has_schema_and_clock() {
    let (ok, stdout, _) = regmon(&["metrics", "mcf", "--intervals", "20", "--json"]);
    assert!(ok);
    assert!(stdout.contains("\"schema\":\"regmon-telemetry-v1\""));
    assert!(stdout.contains("\"clock\""));
    assert!(stdout.contains("\"regmon_intervals_processed_total\""));
}
