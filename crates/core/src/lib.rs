//! # regmon — Region Monitoring for Local Phase Detection
//!
//! A faithful, fully-synthetic reproduction of *"Region Monitoring for
//! Local Phase Detection in Dynamic Optimization Systems"* (Das, Lu &
//! Hsu, CGO 2006): global (centroid) and local (per-region Pearson) phase
//! detection, region formation with UCR accounting, list- and
//! interval-tree-based sample attribution, and a runtime-optimizer
//! simulator comparing the two detection schemes — all driven by seeded,
//! deterministic SPEC CPU2000-like workload models.
//!
//! This crate is the facade: it re-exports every subsystem and adds the
//! end-to-end [`MonitoringSession`] pipeline (workload → sampler → region
//! monitor → detectors) used by the examples, the integration tests and
//! the figure-regeneration binaries.
//!
//! ## Quickstart
//!
//! ```
//! use regmon::{MonitoringSession, SessionConfig};
//! use regmon::workload::suite;
//!
//! let workload = suite::by_name("181.mcf").unwrap();
//! let config = SessionConfig::new(45_000);
//! // Process the first 40 sampling intervals.
//! let summary = MonitoringSession::run_limited(&workload, &config, 40);
//! println!(
//!     "GPD: {} phase changes, {:.0}% stable; {} regions monitored",
//!     summary.gpd.phase_changes,
//!     summary.gpd.stable_fraction() * 100.0,
//!     summary.regions_formed,
//! );
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`stats`] | `regmon-stats` | Pearson, histograms, online stats |
//! | [`binary`] | `regmon-binary` | synthetic binaries, CFGs, loops |
//! | [`workload`] | `regmon-workload` | phase scripts + SPEC-like suite |
//! | [`sampling`] | `regmon-sampling` | simulated PMU sampling |
//! | [`regions`] | `regmon-regions` | formation, monitor, interval tree |
//! | [`gpd`] | `regmon-gpd` | centroid global phase detection |
//! | [`lpd`] | `regmon-lpd` | per-region local phase detection |
//! | [`rto`] | `regmon-rto` | optimizer simulator (Figure 17) |

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub use regmon_binary as binary;
pub use regmon_gpd as gpd_crate;
pub use regmon_lpd as lpd_crate;
pub use regmon_regions as regions;
pub use regmon_rto as rto;
pub use regmon_sampling as sampling;
pub use regmon_stats as stats;
pub use regmon_workload as workload;

/// Alias kept for discoverability: the global-phase-detection crate.
pub mod gpd {
    pub use regmon_gpd::*;
}

/// Alias kept for discoverability: the local-phase-detection crate.
pub mod lpd {
    pub use regmon_lpd::*;
}

mod session;
pub mod threaded;

pub use session::{
    IntervalOutcome, MonitoringSession, PruningConfig, SessionConfig, SessionSnapshot,
    SessionSummary,
};
