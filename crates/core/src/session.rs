//! The end-to-end monitoring pipeline.

use std::collections::BTreeMap;

use regmon_gpd::{CentroidDetector, GpdConfig, GpdObservation, GpdSnapshot, PhaseStats};
use regmon_lpd::{LpdConfig, LpdManager, LpdManagerSnapshot, LpdObservation, RegionPhaseStats};
use regmon_regions::{
    FormationConfig, IndexKind, MonitorSnapshot, Pruner, RegionFormation, RegionId, RegionMonitor,
    UcrTracker,
};
use regmon_sampling::{Interval, Sampler, SamplingConfig};
use regmon_workload::Workload;

/// Pruning policy for a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruningConfig {
    /// Consecutive cold intervals before eviction.
    pub cold_intervals: usize,
    /// Minimum samples per interval to count as hot.
    pub min_samples: u64,
}

/// Configuration of a [`MonitoringSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// PMU sampling parameters.
    pub sampling: SamplingConfig,
    /// Region-formation policy.
    pub formation: FormationConfig,
    /// Attribution index implementation.
    pub index: IndexKind,
    /// Global (centroid) detector parameters.
    pub gpd: GpdConfig,
    /// Local (per-region) detector parameters.
    pub lpd: LpdConfig,
    /// Optional cold-region pruning.
    pub pruning: Option<PruningConfig>,
    /// Worker threads for sample attribution. `0` or `1` keeps the
    /// serial zero-allocation arena path; larger values split each
    /// interval's samples across scoped threads sharing the index
    /// (results are identical — see
    /// [`regmon_regions::RegionMonitor::attribute_parallel`]).
    pub parallel_attrib: usize,
}

impl SessionConfig {
    /// A default-configured session at the given sampling period.
    #[must_use]
    pub fn new(period: u64) -> Self {
        Self {
            sampling: SamplingConfig::new(period),
            formation: FormationConfig::default(),
            index: IndexKind::IntervalTree,
            gpd: GpdConfig::default(),
            lpd: LpdConfig::default(),
            pruning: None,
            parallel_attrib: 0,
        }
    }
}

/// Everything one interval produced.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalOutcome {
    /// The interval's index.
    pub index: usize,
    /// The global detector's observation (None for an empty interval).
    pub gpd: Option<GpdObservation>,
    /// Per-region local observations, in region-id order.
    pub lpd: Vec<(RegionId, LpdObservation)>,
    /// This interval's UCR fraction.
    pub ucr_fraction: f64,
    /// Regions formed this interval.
    pub new_regions: Vec<RegionId>,
    /// Regions pruned this interval.
    pub pruned_regions: Vec<RegionId>,
}

/// Aggregated results of a completed session.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// The workload's name.
    pub workload: String,
    /// Sampling period used.
    pub period: u64,
    /// Intervals processed.
    pub intervals: usize,
    /// Global-detector lifetime stats.
    pub gpd: PhaseStats,
    /// Per-region local-detector lifetime stats (live + retired regions).
    pub lpd: BTreeMap<RegionId, RegionPhaseStats>,
    /// Median per-interval UCR fraction (0 when no intervals ran).
    pub ucr_median: f64,
    /// Total regions ever formed.
    pub regions_formed: usize,
    /// Total regions pruned.
    pub regions_pruned: usize,
}

impl SessionSummary {
    /// Total local phase changes summed over all regions.
    #[must_use]
    pub fn lpd_total_phase_changes(&self) -> usize {
        self.lpd.values().map(|s| s.phase_changes).sum()
    }

    /// Mean per-region stable fraction (0 when no regions).
    #[must_use]
    pub fn lpd_mean_stable_fraction(&self) -> f64 {
        if self.lpd.is_empty() {
            return 0.0;
        }
        self.lpd
            .values()
            .map(RegionPhaseStats::stable_fraction)
            .sum::<f64>()
            / self.lpd.len() as f64
    }
}

/// A complete checkpoint of a [`MonitoringSession`] taken at an
/// interval boundary.
///
/// Contains everything needed to reconstruct the session on another
/// process (or after a restart) such that continuing the sample stream
/// produces byte-identical reports to the uninterrupted run: the full
/// configuration, the region table (with the id allocator position),
/// the global and per-region detector states, the UCR timeline, the
/// pruner's cold streaks and the lifetime counters.
///
/// The attribution arena is deliberately *not* captured: it is scratch
/// space that is rebuilt from scratch every interval, so a snapshot at
/// an interval boundary needs none of it. The attached binary image is
/// also excluded — the restoring side re-attaches it from the workload
/// name (see [`MonitoringSession::attach_binary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Full session configuration.
    pub config: SessionConfig,
    /// Intervals processed so far.
    pub intervals: usize,
    /// Total regions ever formed.
    pub regions_formed: usize,
    /// Total regions pruned.
    pub regions_pruned: usize,
    /// Region table + id allocator.
    pub monitor: MonitorSnapshot,
    /// Global (centroid) detector state.
    pub gpd: GpdSnapshot,
    /// Per-region local detector states (live + retired).
    pub lpd: LpdManagerSnapshot,
    /// Per-interval UCR fractions, oldest first.
    pub ucr_timeline: Vec<f64>,
    /// Pruner cold streaks, ascending by region id (empty when pruning
    /// is disabled).
    pub pruner_streaks: Vec<(RegionId, usize)>,
}

/// The assembled pipeline: region monitor + formation + UCR + GPD + LPD
/// (+ optional pruning), fed one sampling interval at a time.
#[derive(Debug)]
pub struct MonitoringSession {
    config: SessionConfig,
    monitor: RegionMonitor,
    formation: RegionFormation,
    gpd: CentroidDetector,
    lpd: LpdManager,
    ucr: UcrTracker,
    pruner: Option<Pruner>,
    binary: Option<regmon_binary::Binary>,
    intervals: usize,
    regions_formed: usize,
    regions_pruned: usize,
}

impl MonitoringSession {
    /// Creates an empty session.
    #[must_use]
    pub fn new(config: SessionConfig) -> Self {
        Self {
            monitor: RegionMonitor::new(config.index),
            formation: RegionFormation::new(config.formation),
            gpd: CentroidDetector::new(config.gpd),
            lpd: LpdManager::new(config.lpd),
            ucr: UcrTracker::new(),
            pruner: config
                .pruning
                .map(|p| Pruner::new(p.cold_intervals, p.min_samples)),
            binary: None,
            config,
            intervals: 0,
            regions_formed: 0,
            regions_pruned: 0,
        }
    }

    /// Processes one sampling interval through the whole pipeline:
    /// distribute → UCR → (maybe) region formation → GPD → LPD →
    /// (maybe) pruning.
    pub fn process_interval(&mut self, interval: &Interval) -> IntervalOutcome {
        self.intervals += 1;
        let telemetry_on = regmon_telemetry::enabled();
        if telemetry_on {
            regmon_telemetry::metrics::INTERVALS_PROCESSED.inc();
            regmon_telemetry::metrics::ATTRIB_INTERVAL_SAMPLES
                .record(interval.samples.len() as u64);
        }

        // The zero-allocation hot path: samples are attributed into the
        // monitor's reusable arena (optionally across scoped worker
        // threads) and every downstream consumer reads the borrow-based
        // arena report — no per-interval maps or histogram copies.
        if self.config.parallel_attrib > 1 {
            self.monitor
                .attribute_parallel(&interval.samples, self.config.parallel_attrib);
        } else {
            self.monitor.attribute(&interval.samples);
        }
        let ucr_fraction = self.monitor.report().ucr_fraction();
        self.ucr.record(ucr_fraction);

        // Formation must see the *current* interval's unattributed
        // samples, then the detectors see the report of what was
        // monitored during the interval. The UCR buffer is taken out of
        // the arena (and restored afterwards) because formation mutates
        // the monitor while reading the samples.
        let new_regions = if self.formation.should_trigger(ucr_fraction) {
            if telemetry_on {
                regmon_telemetry::metrics::UCR_BREACHES.inc();
                regmon_telemetry::journal::record(
                    regmon_telemetry::journal::EventKind::UcrBreach {
                        ucr: ucr_fraction,
                        threshold: self.config.formation.ucr_trigger,
                    },
                );
            }
            let binary = self
                .binary
                .as_ref()
                .expect("attach_binary must be called before processing intervals");
            let unattributed = self.monitor.take_unattributed();
            let outcome =
                self.formation
                    .form(binary, &unattributed, &mut self.monitor, interval.index);
            self.monitor.restore_unattributed(unattributed);
            self.regions_formed += outcome.new_regions.len();
            if telemetry_on {
                regmon_telemetry::metrics::REGIONS_FORMED.add(outcome.new_regions.len() as u64);
                for &id in &outcome.new_regions {
                    regmon_telemetry::journal::record(
                        regmon_telemetry::journal::EventKind::RegionFormed { region: id.0 },
                    );
                }
            }
            outcome.new_regions
        } else {
            Vec::new()
        };

        let gpd_obs = self.gpd.observe(&interval.samples);
        let lpd_obs = {
            let report = self.monitor.report();
            self.lpd.observe_interval(&self.monitor, &report)
        };

        let pruned_regions = match &mut self.pruner {
            Some(p) => {
                let evicted = {
                    let report = self.monitor.report();
                    p.plan(&report, &self.monitor)
                };
                for &id in &evicted {
                    self.monitor.remove_region(id);
                }
                self.regions_pruned += evicted.len();
                if telemetry_on {
                    regmon_telemetry::metrics::REGIONS_PRUNED.add(evicted.len() as u64);
                    for &id in &evicted {
                        regmon_telemetry::journal::record(
                            regmon_telemetry::journal::EventKind::RegionEvicted { region: id.0 },
                        );
                    }
                }
                evicted
            }
            None => Vec::new(),
        };
        if telemetry_on {
            regmon_telemetry::metrics::REGIONS_LIVE.set(self.monitor.len() as i64);
            // The interval index is the session's own deterministic
            // x-axis: journal ticks drift under fleet batching, so the
            // change-point hub keys per-tenant series on this marker.
            regmon_telemetry::journal::record(regmon_telemetry::journal::EventKind::IntervalEnd {
                interval: interval.index as u64,
                ucr: ucr_fraction,
            });
        }

        IntervalOutcome {
            index: interval.index,
            gpd: gpd_obs,
            lpd: lpd_obs,
            ucr_fraction,
            new_regions,
            pruned_regions,
        }
    }

    /// Processes a coalesced batch of intervals through the pipeline.
    ///
    /// Semantically identical to calling
    /// [`MonitoringSession::process_interval`] once per element, in
    /// order — detectors observe every interval individually, so phase
    /// change sequences, summaries and region tables are byte-identical
    /// to the per-interval path. What batching buys is everything
    /// *around* the pipeline: the fleet ships one queue message, takes
    /// one `catch_unwind` frame and performs one tenant-table lookup per
    /// batch instead of per interval. Returns the number of intervals
    /// processed.
    pub fn run_batch(&mut self, intervals: &[Interval]) -> usize {
        for interval in intervals {
            self.process_interval(interval);
        }
        intervals.len()
    }

    /// Intervals fed into the pipeline so far. The count is bumped at
    /// the *start* of each interval, so a caller that catches a panic
    /// out of [`MonitoringSession::run_batch`] can reconstruct exactly
    /// how many intervals completed (`after - before - 1`).
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// The monitored-region table.
    #[must_use]
    pub fn monitor(&self) -> &RegionMonitor {
        &self.monitor
    }

    /// The global detector.
    #[must_use]
    pub fn gpd(&self) -> &CentroidDetector {
        &self.gpd
    }

    /// The local-detector manager.
    #[must_use]
    pub fn lpd(&self) -> &LpdManager {
        &self.lpd
    }

    /// The UCR tracker.
    #[must_use]
    pub fn ucr(&self) -> &UcrTracker {
        &self.ucr
    }

    /// Summarizes the session so far.
    #[must_use]
    pub fn summary(&self, workload_name: &str) -> SessionSummary {
        SessionSummary {
            workload: workload_name.to_string(),
            period: self.config.sampling.period(),
            intervals: self.intervals,
            gpd: self.gpd.stats(),
            lpd: self.lpd.all_stats(),
            ucr_median: self.ucr.median().unwrap_or(0.0),
            regions_formed: self.regions_formed,
            regions_pruned: self.regions_pruned,
        }
    }

    /// Runs a whole workload through a fresh session.
    #[must_use]
    pub fn run(workload: &Workload, config: &SessionConfig) -> SessionSummary {
        Self::run_limited(workload, config, usize::MAX)
    }

    /// Runs at most `max_intervals` of a workload through a fresh session.
    #[must_use]
    pub fn run_limited(
        workload: &Workload,
        config: &SessionConfig,
        max_intervals: usize,
    ) -> SessionSummary {
        let mut session = Self::new(config.clone());
        session.attach_binary(workload);
        for interval in Sampler::new(workload, config.sampling).take(max_intervals) {
            session.process_interval(&interval);
        }
        session.summary(workload.name())
    }

    // --- checkpoint / restore --------------------------------------------

    /// Exports a full checkpoint of the session. Must be called at an
    /// interval boundary (i.e. between `process_interval` calls), which
    /// is the only time the pipeline has no in-flight arena state.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            config: self.config.clone(),
            intervals: self.intervals,
            regions_formed: self.regions_formed,
            regions_pruned: self.regions_pruned,
            monitor: self.monitor.export(),
            gpd: self.gpd.export(),
            lpd: self.lpd.export(),
            ucr_timeline: self.ucr.timeline().to_vec(),
            pruner_streaks: self
                .pruner
                .as_ref()
                .map(Pruner::cold_streaks)
                .unwrap_or_default(),
        }
    }

    /// Reconstructs a session from a checkpoint. The restored session
    /// has no binary attached — call [`MonitoringSession::attach_binary`]
    /// (or [`MonitoringSession::attach_binary_image`]) before processing
    /// further intervals. Continuing the identical interval stream from
    /// the checkpoint position yields byte-identical results to the
    /// uninterrupted session.
    #[must_use]
    pub fn from_snapshot(snapshot: SessionSnapshot) -> Self {
        let config = snapshot.config;
        let pruner = config.pruning.map(|p| {
            let mut pruner = Pruner::new(p.cold_intervals, p.min_samples);
            pruner.restore_streaks(&snapshot.pruner_streaks);
            pruner
        });
        Self {
            monitor: RegionMonitor::restore(config.index, snapshot.monitor),
            formation: RegionFormation::new(config.formation),
            gpd: CentroidDetector::restore(config.gpd, snapshot.gpd),
            lpd: LpdManager::restore(config.lpd, snapshot.lpd),
            ucr: UcrTracker::from_timeline(snapshot.ucr_timeline),
            pruner,
            binary: None,
            config,
            intervals: snapshot.intervals,
            regions_formed: snapshot.regions_formed,
            regions_pruned: snapshot.regions_pruned,
        }
    }

    // --- binary plumbing -------------------------------------------------
    //
    // Formation needs the program image to find loops around hot samples.
    // Sessions created via `run`/`run_limited` hold a clone; sessions fed
    // manually must call `attach_binary` first.

    /// Attaches the workload's binary so region formation can build loop
    /// regions. Must be called before [`MonitoringSession::process_interval`]
    /// on manually-driven sessions.
    pub fn attach_binary(&mut self, workload: &Workload) {
        self.binary = Some(workload.binary().clone());
    }

    /// Attaches a program image directly (without a [`Workload`] in
    /// hand). The fleet engine uses this: shard workers receive the
    /// binary over the admission message rather than borrowing the
    /// driver's workload.
    pub fn attach_binary_image(&mut self, binary: regmon_binary::Binary) {
        self.binary = Some(binary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_workload::suite;

    #[test]
    fn session_forms_regions_and_detects() {
        let w = suite::by_name("172.mgrid").unwrap();
        let config = SessionConfig::new(45_000);
        let summary = MonitoringSession::run_limited(&w, &config, 30);
        assert_eq!(summary.intervals, 30);
        assert!(summary.regions_formed > 0, "no regions formed");
        // mgrid is steady: GPD stabilizes and stays.
        assert!(summary.gpd.stable_fraction() > 0.5);
        // The hot regions stabilize locally; cold ones may flap on
        // sampling noise (the paper's "some regions with few samples show
        // repeated phase changes"), which must not disturb the hot ones.
        let very_stable = summary
            .lpd
            .values()
            .filter(|s| s.stable_fraction() > 0.7)
            .count();
        assert!(very_stable >= 3, "only {very_stable} stable regions");
        // Formation covered the working set: UCR low after warmup.
        assert!(summary.ucr_median < 0.3, "ucr {}", summary.ucr_median);
    }

    #[test]
    fn manual_session_without_binary_panics() {
        let w = suite::by_name("172.mgrid").unwrap();
        let config = SessionConfig::new(45_000);
        let mut session = MonitoringSession::new(config.clone());
        let interval = regmon_sampling::Sampler::new(&w, config.sampling)
            .next()
            .unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.process_interval(&interval)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        // Across index kinds and with pruning on, a session checkpointed
        // mid-stream and restored must finish byte-identical to the
        // uninterrupted run.
        let w = suite::by_name("172.mgrid").unwrap();
        for index in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut config = SessionConfig::new(45_000);
            config.index = index;
            config.pruning = Some(PruningConfig {
                cold_intervals: 8,
                min_samples: 2,
            });

            let intervals: Vec<Interval> = Sampler::new(&w, config.sampling).take(40).collect();

            let mut baseline = MonitoringSession::new(config.clone());
            baseline.attach_binary(&w);
            for interval in &intervals {
                baseline.process_interval(interval);
            }

            let mut first = MonitoringSession::new(config.clone());
            first.attach_binary(&w);
            for interval in &intervals[..17] {
                first.process_interval(interval);
            }
            let snap = first.snapshot();
            assert_eq!(snap.intervals, 17);
            // Restored session re-exports the same snapshot.
            let mut resumed = MonitoringSession::from_snapshot(snap.clone());
            assert_eq!(resumed.snapshot(), snap);
            resumed.attach_binary(&w);
            for interval in &intervals[17..] {
                resumed.process_interval(interval);
            }

            let a = baseline.summary(w.name());
            let b = resumed.summary(w.name());
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "index {index:?}");
            assert_eq!(baseline.snapshot(), resumed.snapshot(), "index {index:?}");
        }
    }

    #[test]
    fn pruning_config_evicts_dead_regions() {
        // gap's short-lived region should eventually be pruned.
        let w = suite::by_name("254.gap").unwrap();
        let mut config = SessionConfig::new(450_000);
        config.pruning = Some(PruningConfig {
            cold_intervals: 10,
            min_samples: 2,
        });
        let summary = MonitoringSession::run_limited(&w, &config, 100);
        // Regions form (gap has loop regions despite its high UCR).
        assert!(summary.regions_formed > 0);
    }
}
