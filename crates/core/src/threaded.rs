//! Off-critical-path monitoring on a separate thread.
//!
//! The paper argues (§3.2.3, §5) that region monitoring's extra cost
//! "is not on the critical path of program execution since region
//! monitoring can occur in a separate thread, in parallel to the main
//! program". This module realizes that split for a single monitored
//! process: a producer thread plays the role of the running program + PMU
//! (the sampler), shipping each full buffer over a bounded standard-library
//! channel to a consumer thread that runs the whole analysis pipeline.
//!
//! This is the degenerate (one-tenant, one-shard) case of the sharded
//! multi-tenant engine in the `regmon-fleet` crate, which generalizes the
//! same producer → bounded queue → monitor-worker split to hundreds of
//! concurrent sessions with lifecycle control and backpressure policies.
//! `regmon-fleet` depends on this crate, so the generic engine lives
//! there; its equivalence tests pin this function, the fleet engine and
//! [`MonitoringSession::run_limited`] to byte-identical summaries.

use std::sync::mpsc::{sync_channel, TrySendError};

use regmon_sampling::{Interval, Sampler};
use regmon_workload::Workload;

use crate::session::{MonitoringSession, SessionConfig, SessionSummary};

/// Statistics of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRun {
    /// The analysis results (identical to a single-threaded run).
    pub summary: SessionSummary,
    /// Number of times the producer had to wait because the monitor
    /// thread fell behind (a full channel), i.e. how often monitoring
    /// *would have* intruded on the critical path with this buffer depth.
    pub backpressure_stalls: usize,
}

/// Runs `max_intervals` of `workload` with sampling on one thread and
/// monitoring on another, connected by a channel holding up to
/// `queue_depth` buffered intervals.
///
/// # Panics
///
/// Panics if `queue_depth == 0` or the monitor thread panics.
#[must_use]
pub fn run_threaded(
    workload: &Workload,
    config: &SessionConfig,
    max_intervals: usize,
    queue_depth: usize,
) -> ThreadedRun {
    assert!(queue_depth > 0, "queue depth must be positive");
    let (tx, rx) = sync_channel::<Interval>(queue_depth);

    let mut stalls = 0usize;
    let summary = std::thread::scope(|scope| {
        let monitor_config = config.clone();
        let consumer = scope.spawn(move || {
            let mut session = MonitoringSession::new(monitor_config);
            // The monitor thread needs the code image for formation.
            session.attach_binary(workload);
            for interval in rx {
                session.process_interval(&interval);
            }
            session.summary(workload.name())
        });

        for interval in Sampler::new(workload, config.sampling).take(max_intervals) {
            // `try_send` first so a full queue is observable: each
            // fallback to the blocking `send` is one backpressure stall.
            match tx.try_send(interval) {
                Ok(()) => {}
                Err(TrySendError::Full(interval)) => {
                    stalls += 1;
                    tx.send(interval).expect("monitor thread hung up early");
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("monitor thread hung up early");
                }
            }
        }
        drop(tx);
        consumer.join().expect("monitor thread panicked")
    });

    ThreadedRun {
        summary,
        backpressure_stalls: stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_workload::suite;

    #[test]
    fn threaded_run_matches_single_threaded() {
        let w = suite::by_name("172.mgrid").unwrap();
        let config = SessionConfig::new(45_000);
        let single = MonitoringSession::run_limited(&w, &config, 20);
        let threaded = run_threaded(&w, &config, 20, 4);
        assert_eq!(single.intervals, threaded.summary.intervals);
        assert_eq!(single.gpd, threaded.summary.gpd);
        assert_eq!(
            single.lpd_total_phase_changes(),
            threaded.summary.lpd_total_phase_changes()
        );
        assert_eq!(single.regions_formed, threaded.summary.regions_formed);
        assert!((single.ucr_median - threaded.summary.ucr_median).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_panics() {
        let w = suite::by_name("172.mgrid").unwrap();
        let config = SessionConfig::new(45_000);
        let _ = run_threaded(&w, &config, 1, 0);
    }
}
