//! Batch E-divisive means change-point detection.
//!
//! Given a series `x[0..n]`, the kernel searches for the split `τ` that
//! maximizes the sample divergence energy statistic
//!
//! ```text
//! Q(τ) = (m·n)/(m+n) · Ê(L, R)
//! Ê    = 2/(m·n) Σ|xᵢ−yⱼ| − C(m,2)⁻¹ Σ|xᵢ−xₖ| − C(n,2)⁻¹ Σ|yⱼ−yₗ|
//! ```
//!
//! where `L = x[..τ]` (size `m`) and `R = x[τ..]` (size `n`). `Ê` is an
//! unbiased estimator of the energy distance between the two segment
//! distributions; it is zero when both segments are drawn from the same
//! distribution and grows with any distributional difference — mean,
//! variance, or shape — which is why E-divisive needs no per-series
//! threshold tuning (Matteson & James; applied to performance series by
//! arXiv:2003.00584 and Hunter, arXiv:2301.03034).
//!
//! Significance comes from a permutation test: shuffle the segment with
//! a deterministic splitmix64 PRNG, re-maximize `Q`, and count how often
//! chance beats the observed statistic. Change points recurse
//! hierarchically: each significant split is recorded and both halves
//! are searched again.
//!
//! All scans are `O(n²)` per segment via incremental pair-sum updates
//! (moving one element between segments adjusts the three pair sums in
//! `O(n)`), which is plenty for the bounded windows the streaming layer
//! feeds us.

/// Tuning knobs for the batch kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EDivConfig {
    /// Minimum points on each side of a candidate split (≥ 2).
    pub min_segment: usize,
    /// Number of random permutations backing the significance test.
    /// `p`-values are quantized to multiples of `1/(permutations+1)`.
    pub permutations: usize,
    /// Largest permutation `p`-value still reported as a change point.
    pub significance: f64,
    /// Cap on detections per call (hierarchical recursion stops there).
    pub max_change_points: usize,
    /// Seed for the deterministic permutation PRNG.
    pub seed: u64,
}

impl Default for EDivConfig {
    fn default() -> Self {
        Self {
            min_segment: 8,
            permutations: 63,
            significance: 0.05,
            max_change_points: 8,
            seed: 0x5eed_c9d0_2301_0358,
        }
    }
}

/// One detected change point within the analyzed series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index of the first point of the *new* regime (`series[index]` is
    /// the first post-change observation).
    pub index: usize,
    /// `mean(after) − mean(before)` across the split, in series units.
    pub magnitude: f64,
    /// `1 − p` from the permutation test, in `(0, 1]`.
    pub confidence: f64,
}

/// Detects change points in `series`, sorted ascending by index.
///
/// Returns an empty vector when the series is shorter than
/// `2 · min_segment` or statistically homogeneous.
#[must_use]
pub fn detect(series: &[f64], config: &EDivConfig) -> Vec<Detection> {
    let cfg = config.sanitized();
    let mut found = Vec::new();
    segment(series, 0, series.len(), &cfg, &mut found);
    found.sort_by_key(|d| d.index);
    found
}

/// Rank-transform variant: detects on tie-averaged ranks (robust to
/// outliers and monotone rescaling), but reports `magnitude` in the
/// original series units so callers can still rank by effect size.
#[must_use]
pub fn detect_rank(series: &[f64], config: &EDivConfig) -> Vec<Detection> {
    let ranks = rank_transform(series);
    let mut found = detect(&ranks, config);
    for d in &mut found {
        d.magnitude = mean(&series[d.index..]) - mean(&series[..d.index]);
    }
    found
}

impl EDivConfig {
    fn sanitized(&self) -> Self {
        Self {
            min_segment: self.min_segment.max(2),
            permutations: self.permutations.max(1),
            significance: self.significance.clamp(0.0, 1.0),
            max_change_points: self.max_change_points,
            seed: self.seed,
        }
    }
}

/// Recursive hierarchical search over `series[lo..hi)`.
fn segment(series: &[f64], lo: usize, hi: usize, cfg: &EDivConfig, out: &mut Vec<Detection>) {
    if out.len() >= cfg.max_change_points || hi - lo < 2 * cfg.min_segment {
        return;
    }
    let xs = &series[lo..hi];
    let Some((tau, q)) = best_split(xs, cfg.min_segment) else {
        return;
    };
    // A flat (or near-flat) segment maximizes at Q ≈ 0; permuting it
    // would tie everywhere, so call it homogeneous outright.
    if q <= f64::EPSILON {
        return;
    }
    let p = permutation_p_value(xs, q, cfg, segment_seed(cfg.seed, lo, hi));
    if p > cfg.significance {
        return;
    }
    out.push(Detection {
        index: lo + tau,
        magnitude: mean(&xs[tau..]) - mean(&xs[..tau]),
        confidence: 1.0 - p,
    });
    segment(series, lo, lo + tau, cfg, out);
    segment(series, lo + tau, hi, cfg, out);
}

/// The split `τ ∈ [min_segment, n−min_segment]` maximizing `Q(τ)`,
/// computed in `O(n²)` total via incremental pair-sum updates.
fn best_split(xs: &[f64], min_segment: usize) -> Option<(usize, f64)> {
    let n = xs.len();
    if n < 2 * min_segment {
        return None;
    }
    // Pair sums at the initial split τ = min_segment.
    let tau0 = min_segment;
    let mut within_l = pair_sum(&xs[..tau0]);
    let mut within_r = pair_sum(&xs[tau0..]);
    let mut cross = cross_sum(&xs[..tau0], &xs[tau0..]);

    let mut best = (tau0, q_stat(tau0, n - tau0, within_l, within_r, cross));
    for tau in tau0 + 1..=n - min_segment {
        // Move v = xs[tau-1] from the right segment to the left.
        let v = xs[tau - 1];
        let mut sum_l = 0.0;
        for &x in &xs[..tau - 1] {
            sum_l += (x - v).abs();
        }
        let mut sum_r = 0.0;
        for &x in &xs[tau..] {
            sum_r += (x - v).abs();
        }
        within_l += sum_l;
        within_r -= sum_r;
        cross += sum_r - sum_l;
        let q = q_stat(tau, n - tau, within_l, within_r, cross);
        if q > best.1 {
            best = (tau, q);
        }
    }
    Some(best)
}

/// `Q(τ)` from the three pair sums.
fn q_stat(m: usize, n: usize, within_l: f64, within_r: f64, cross: f64) -> f64 {
    let (mf, nf) = (m as f64, n as f64);
    let e_hat = 2.0 * cross / (mf * nf)
        - within_l / (mf * (mf - 1.0) / 2.0)
        - within_r / (nf * (nf - 1.0) / 2.0);
    (mf * nf) / (mf + nf) * e_hat
}

/// `Σ_{i<j} |x_i − x_j|`.
fn pair_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (i, &a) in xs.iter().enumerate() {
        for &b in &xs[i + 1..] {
            sum += (a - b).abs();
        }
    }
    sum
}

/// `Σ_i Σ_j |x_i − y_j|`.
fn cross_sum(left: &[f64], right: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &a in left {
        for &b in right {
            sum += (a - b).abs();
        }
    }
    sum
}

/// Permutation `p`-value: how often a shuffled copy of `xs` achieves a
/// split statistic at least as large as the observed `q_obs`.
fn permutation_p_value(xs: &[f64], q_obs: f64, cfg: &EDivConfig, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut scratch = xs.to_vec();
    let mut at_least = 0usize;
    for _ in 0..cfg.permutations {
        shuffle(&mut scratch, &mut rng);
        if let Some((_, q)) = best_split(&scratch, cfg.min_segment) {
            if q >= q_obs {
                at_least += 1;
            }
        }
    }
    (at_least + 1) as f64 / (cfg.permutations + 1) as f64
}

/// Deterministic per-segment seed so detections do not depend on the
/// order segments happen to be visited in.
fn segment_seed(seed: u64, lo: usize, hi: usize) -> u64 {
    seed ^ (lo as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (hi as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

/// Tie-averaged rank transform (ranks start at 1; equal values share
/// the mean of the ranks they span).
fn rank_transform(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Fixed-sequence splitmix64: the same generator the proptest shim and
/// serve fault harness use, so every permutation test replays exactly.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Fisher–Yates shuffle driven by the deterministic PRNG.
fn shuffle(xs: &mut [f64], rng: &mut SplitMix64) {
    for i in (1..xs.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(n: usize, at: usize, low: f64, high: f64) -> Vec<f64> {
        (0..n).map(|i| if i < at { low } else { high }).collect()
    }

    /// Deterministic noise in `[-amp, amp]`.
    fn noise(n: usize, seed: u64, amp: f64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| (rng.next_u64() as f64 / u64::MAX as f64 * 2.0 - 1.0) * amp)
            .collect()
    }

    #[test]
    fn clean_step_found_exactly() {
        let xs = step(64, 40, 1.0, 6.0);
        let found = detect(&xs, &EDivConfig::default());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].index, 40);
        assert!((found[0].magnitude - 5.0).abs() < 1e-9);
        assert!(found[0].confidence > 0.9);
    }

    #[test]
    fn noisy_step_found_within_one_window() {
        let mut xs = step(64, 32, 10.0, 14.0);
        for (x, e) in xs.iter_mut().zip(noise(64, 7, 0.8)) {
            *x += e;
        }
        let found = detect(&xs, &EDivConfig::default());
        assert_eq!(found.len(), 1, "{found:?}");
        let err = found[0].index.abs_diff(32);
        assert!(err <= 1, "split off by {err}: {found:?}");
        assert!(found[0].magnitude > 2.0);
    }

    #[test]
    fn ramp_splits_near_the_middle() {
        // A linear ramp has no single change point; E-divisive bisects
        // it near the centre where the means differ most.
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let found = detect(&xs, &EDivConfig::default());
        assert!(!found.is_empty());
        let first = found.iter().min_by_key(|d| d.index.abs_diff(32)).unwrap();
        assert!(first.index.abs_diff(32) <= 4, "{found:?}");
    }

    #[test]
    fn pure_noise_yields_nothing() {
        for seed in 0..8 {
            let xs = noise(64, seed, 1.0);
            let found = detect(&xs, &EDivConfig::default());
            assert!(found.is_empty(), "seed {seed}: {found:?}");
        }
    }

    #[test]
    fn constant_series_yields_nothing() {
        let xs = vec![3.25; 64];
        assert!(detect(&xs, &EDivConfig::default()).is_empty());
    }

    #[test]
    fn short_series_yields_nothing() {
        let xs = step(12, 6, 0.0, 9.0);
        assert!(detect(&xs, &EDivConfig::default()).is_empty());
    }

    #[test]
    fn two_steps_both_found() {
        let xs: Vec<f64> = (0..96)
            .map(|i| match i {
                0..=31 => 1.0,
                32..=63 => 5.0,
                _ => 2.0,
            })
            .collect();
        let found = detect(&xs, &EDivConfig::default());
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].index.abs_diff(32) <= 1, "{found:?}");
        assert!(found[1].index.abs_diff(64) <= 1, "{found:?}");
        assert!(found[0].magnitude > 0.0);
        assert!(found[1].magnitude < 0.0);
    }

    #[test]
    fn confidence_is_quantized_by_permutation_count() {
        // With P permutations the smallest p is 1/(P+1), so the largest
        // confidence is P/(P+1) — never 1.0 exactly.
        let cfg = EDivConfig {
            permutations: 19,
            ..EDivConfig::default()
        };
        let xs = step(64, 32, 0.0, 10.0);
        let found = detect(&xs, &cfg);
        assert_eq!(found.len(), 1);
        let max_conf = 19.0 / 20.0;
        assert!((found[0].confidence - max_conf).abs() < 1e-9, "{found:?}");
    }

    #[test]
    fn weak_step_less_confident_than_strong_step() {
        let mut weak = step(64, 32, 0.0, 0.8);
        let mut strong = step(64, 32, 0.0, 20.0);
        let e = noise(64, 11, 1.0);
        for i in 0..64 {
            weak[i] += e[i];
            strong[i] += e[i];
        }
        let cfg = EDivConfig {
            permutations: 199,
            significance: 1.0, // report even weak splits so we can compare
            max_change_points: 1,
            ..EDivConfig::default()
        };
        let w = detect(&weak, &cfg);
        let s = detect(&strong, &cfg);
        assert_eq!((w.len(), s.len()), (1, 1));
        assert!(
            s[0].confidence >= w[0].confidence,
            "strong {:?} < weak {:?}",
            s[0],
            w[0]
        );
    }

    #[test]
    fn rank_agrees_with_means_on_clean_step() {
        let xs = step(64, 24, 2.0, 7.0);
        let by_means = detect(&xs, &EDivConfig::default());
        let by_rank = detect_rank(&xs, &EDivConfig::default());
        assert_eq!(by_means.len(), 1);
        assert_eq!(by_rank.len(), 1);
        assert_eq!(by_means[0].index, by_rank[0].index);
        // The rank variant reports magnitude in original units too.
        assert!((by_rank[0].magnitude - by_means[0].magnitude).abs() < 1e-9);
    }

    #[test]
    fn rank_shrugs_off_a_huge_outlier() {
        let mut xs = step(64, 32, 1.0, 3.0);
        xs[5] = 1.0e6; // one wild outlier in the pre-change regime
        let found = detect_rank(&xs, &EDivConfig::default());
        assert!(found.iter().any(|d| d.index.abs_diff(32) <= 1), "{found:?}");
    }

    #[test]
    fn detection_is_deterministic() {
        let mut xs = step(80, 48, 5.0, 9.0);
        for (x, e) in xs.iter_mut().zip(noise(80, 3, 0.5)) {
            *x += e;
        }
        let a = detect(&xs, &EDivConfig::default());
        let b = detect(&xs, &EDivConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn rank_transform_averages_ties() {
        let ranks = rank_transform(&[2.0, 1.0, 2.0, 5.0]);
        assert_eq!(ranks, vec![2.5, 1.0, 2.5, 4.0]);
    }
}
