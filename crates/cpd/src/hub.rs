//! A keyed collection of streaming detectors: one per
//! tenant × region × metric series.
//!
//! The fleet driver feeds a [`CpdHub`] from drained telemetry journal
//! events each round; the offline `regmon cpd` analyzer feeds one from
//! a recorded trace. Both paths observe per-series point sequences that
//! are deterministic for a given workload (per-tenant journal streams
//! are FIFO; queue series come off the lockstep driver thread), and the
//! hub stores series in a `BTreeMap`, so the detection report is
//! byte-stable regardless of shard count, batching, or stealing.

use crate::stream::{StreamConfig, StreamingCpd};
use std::collections::BTreeMap;

/// `tenant` value for series that belong to no tenant (fleet-wide
/// series such as per-shard queue stalls).
pub const NO_TENANT: u64 = u64::MAX;

/// `region` value for series not scoped to a monitored region.
pub const NO_REGION: u64 = u64::MAX;

/// Which telemetry series a detector tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Per-region Pearson correlation `r` from LPD transitions.
    PearsonR,
    /// Per-region similarity threshold `rt` in force at each transition.
    SimilarityThreshold,
    /// Per-tenant unmonitored-code ratio, one point per interval.
    Ucr,
    /// Per-shard backpressure stalls per round.
    QueueStalls,
}

impl Metric {
    /// Stable lowercase identifier used in reports and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::PearsonR => "r",
            Metric::SimilarityThreshold => "rt",
            Metric::Ucr => "ucr",
            Metric::QueueStalls => "queue_stalls",
        }
    }
}

/// Identity of one tracked series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// Owning tenant id, or [`NO_TENANT`] for fleet-wide series (the
    /// queue series reuse `region` as the shard index).
    pub tenant: u64,
    /// Region id within the tenant's session, or [`NO_REGION`].
    pub region: u64,
    /// The tracked metric.
    pub metric: Metric,
}

impl SeriesKey {
    /// Human-readable `tenant/region/metric` label for text reports.
    #[must_use]
    pub fn label(&self) -> String {
        let mut out = String::new();
        if self.tenant == NO_TENANT {
            out.push_str("fleet");
        } else {
            out.push_str(&format!("tenant {}", self.tenant));
        }
        if self.region != NO_REGION {
            if self.metric == Metric::QueueStalls {
                out.push_str(&format!(" shard {}", self.region));
            } else {
                out.push_str(&format!(" region {:x}", self.region));
            }
        }
        out.push(' ');
        out.push_str(self.metric.name());
        out
    }
}

/// One detected change point, attributed to its series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// The series the change was found in.
    pub series: SeriesKey,
    /// Round (tenant series: interval index; queue series: driver
    /// round) of the first post-change observation.
    pub round: u64,
    /// `mean(after) − mean(before)` in series units.
    pub magnitude: f64,
    /// `1 − p` from the permutation test.
    pub confidence: f64,
}

/// Streaming detectors for a whole fleet of series.
#[derive(Debug)]
pub struct CpdHub {
    config: StreamConfig,
    series: BTreeMap<SeriesKey, StreamingCpd>,
    points: u64,
    pending: Vec<ChangePoint>,
}

impl CpdHub {
    /// Creates an empty hub; every series inherits `config`.
    #[must_use]
    pub fn new(config: StreamConfig) -> Self {
        Self {
            config,
            series: BTreeMap::new(),
            points: 0,
            pending: Vec::new(),
        }
    }

    /// Feeds one observation, lazily creating the series detector.
    pub fn observe(&mut self, key: SeriesKey, round: u64, value: f64) {
        self.points += 1;
        let config = self.config;
        let detector = self
            .series
            .entry(key)
            .or_insert_with(|| StreamingCpd::new(config));
        for d in detector.push(round, value) {
            self.pending.push(ChangePoint {
                series: key,
                round: d.round,
                magnitude: d.magnitude,
                confidence: d.confidence,
            });
        }
    }

    /// Final detection pass over every series (end of run), so changes
    /// near the last round are not lost to the detection stride.
    pub fn flush(&mut self) {
        for (key, detector) in &mut self.series {
            for d in detector.flush() {
                self.pending.push(ChangePoint {
                    series: *key,
                    round: d.round,
                    magnitude: d.magnitude,
                    confidence: d.confidence,
                });
            }
        }
    }

    /// Takes detections accumulated since the previous call, sorted by
    /// series key then round. Sorting here (rather than relying on
    /// observation interleaving) is what keeps fleet reports
    /// byte-identical across batch × steal schedules.
    pub fn take_detections(&mut self) -> Vec<ChangePoint> {
        let mut out = std::mem::take(&mut self.pending);
        out.sort_by_key(|a| (a.series, a.round));
        out
    }

    /// Number of distinct series seen so far.
    #[must_use]
    pub fn series_tracked(&self) -> usize {
        self.series.len()
    }

    /// Total points ingested across all series.
    #[must_use]
    pub fn points_ingested(&self) -> u64 {
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tenant: u64, metric: Metric) -> SeriesKey {
        SeriesKey {
            tenant,
            region: NO_REGION,
            metric,
        }
    }

    #[test]
    fn attributes_a_step_to_the_right_series() {
        let mut hub = CpdHub::new(StreamConfig::default());
        for round in 0..64u64 {
            hub.observe(
                key(3, Metric::Ucr),
                round,
                if round < 40 { 0.1 } else { 0.9 },
            );
            hub.observe(key(7, Metric::Ucr), round, 0.1);
        }
        hub.flush();
        let found = hub.take_detections();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].series.tenant, 3);
        assert_eq!(found[0].round, 40);
        assert!(found[0].magnitude > 0.5);
        assert_eq!(hub.series_tracked(), 2);
        assert_eq!(hub.points_ingested(), 128);
    }

    #[test]
    fn detections_are_sorted_by_key_then_round() {
        let mut hub = CpdHub::new(StreamConfig::default());
        // Feed tenants in descending order; output must still ascend.
        for round in 0..64u64 {
            for tenant in [9u64, 2, 5] {
                let v = if round < 32 { 1.0 } else { 4.0 + tenant as f64 };
                hub.observe(key(tenant, Metric::Ucr), round, v);
            }
        }
        hub.flush();
        let found = hub.take_detections();
        assert_eq!(found.len(), 3, "{found:?}");
        let tenants: Vec<u64> = found.iter().map(|c| c.series.tenant).collect();
        assert_eq!(tenants, vec![2, 5, 9]);
    }

    #[test]
    fn take_detections_drains() {
        let mut hub = CpdHub::new(StreamConfig::default());
        for round in 0..64u64 {
            hub.observe(
                key(1, Metric::Ucr),
                round,
                if round < 32 { 0.0 } else { 1.0 },
            );
        }
        hub.flush();
        assert_eq!(hub.take_detections().len(), 1);
        assert!(hub.take_detections().is_empty());
    }

    #[test]
    fn labels_read_naturally() {
        let k = SeriesKey {
            tenant: 4,
            region: 0x146f0,
            metric: Metric::PearsonR,
        };
        assert_eq!(k.label(), "tenant 4 region 146f0 r");
        let q = SeriesKey {
            tenant: NO_TENANT,
            region: 2,
            metric: Metric::QueueStalls,
        };
        assert_eq!(q.label(), "fleet shard 2 queue_stalls");
        let u = SeriesKey {
            tenant: 11,
            region: NO_REGION,
            metric: Metric::Ucr,
        };
        assert_eq!(u.label(), "tenant 11 ucr");
    }
}
