//! Change-point detection (CPD) for fleet telemetry time series.
//!
//! The paper's region monitor answers "did *this region's* behaviour
//! change?" per interval. Operating millions of sessions needs the
//! fleet-level analogue: "which tenant's series stepped, and at which
//! round?". This crate implements the E-divisive means family of
//! change-point detectors — the technique behind Hunter
//! (arXiv:2301.03034) and MongoDB's CI change-point system
//! (arXiv:2003.00584) — which beats threshold alerting because it needs
//! no per-series tuning: a change point is wherever splitting the series
//! maximizes the between-segment energy statistic, and its confidence
//! comes from a permutation test rather than a magic constant.
//!
//! * [`ediv`] — the batch kernel: hierarchical E-divisive means with a
//!   deterministic permutation significance test, plus a rank-transform
//!   variant that is robust to outliers.
//! * [`stream`] — a bounded-ring streaming wrapper that re-runs the
//!   batch kernel on a sliding window and emits each change point once.
//! * [`hub`] — a keyed collection of streaming detectors (one per
//!   tenant × region × metric) as used by the fleet driver and the
//!   offline `regmon cpd` analyzer.
//!
//! Everything here is deterministic: the permutation PRNG is a fixed
//! splitmix64 sequence, detection cadence is a pure function of the
//! point sequence, and the hub iterates series in `BTreeMap` order — so
//! identical inputs produce byte-identical reports regardless of thread
//! count, SIMD level, or shard batching.
//!
//! # Example
//!
//! ```
//! use regmon_cpd::{detect, EDivConfig};
//!
//! // A clean level shift at index 32.
//! let series: Vec<f64> = (0..64).map(|i| if i < 32 { 1.0 } else { 5.0 }).collect();
//! let found = detect(&series, &EDivConfig::default());
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].index, 32);
//! assert!(found[0].magnitude > 3.0);
//! assert!(found[0].confidence > 0.9);
//! ```

#![forbid(unsafe_code)]

pub mod ediv;
pub mod hub;
pub mod stream;

pub use ediv::{detect, detect_rank, Detection, EDivConfig};
pub use hub::{ChangePoint, CpdHub, Metric, SeriesKey, NO_REGION, NO_TENANT};
pub use stream::{StreamConfig, StreamDetection, StreamingCpd};
