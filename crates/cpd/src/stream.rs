//! Streaming change-point detection over a bounded ring.
//!
//! [`StreamingCpd`] keeps the last `window` points of one series as
//! `(round, value)` pairs and re-runs the batch kernel every
//! `detect_every` pushes. Detection cadence is counted in *points*, not
//! wall rounds, so two runs that feed the same point sequence detect at
//! identical moments regardless of how pushes interleave with other
//! series — the property the fleet's byte-identity contract relies on.
//!
//! Each change point is emitted exactly once: the ring maps a detected
//! split index back to the round label of its first post-change point,
//! and rounds at or before the high-water mark of previous emissions
//! are suppressed. (Change points arrive in round order in practice —
//! a regime shift keeps its round label as the window slides — so a
//! monotone high-water mark is enough for deduplication.)

use crate::ediv::{detect, detect_rank, EDivConfig};
use std::collections::VecDeque;

/// Configuration for one streaming detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Ring capacity: how many trailing points each series keeps.
    pub window: usize,
    /// Run the batch kernel every this many pushes (≥ 1).
    pub detect_every: usize,
    /// Use the rank-transform kernel instead of plain means.
    pub rank: bool,
    /// Batch kernel settings shared by every detection pass.
    pub ediv: EDivConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            window: 64,
            detect_every: 8,
            rank: false,
            ediv: EDivConfig::default(),
        }
    }
}

/// A change point surfaced by the streaming layer, labelled with the
/// round of its first post-change observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDetection {
    /// Round label supplied with the first post-change point.
    pub round: u64,
    /// `mean(after) − mean(before)` within the detection window.
    pub magnitude: f64,
    /// `1 − p` from the permutation test.
    pub confidence: f64,
}

/// Bounded-ring streaming wrapper around the batch E-divisive kernel.
#[derive(Debug, Clone)]
pub struct StreamingCpd {
    config: StreamConfig,
    ring: VecDeque<(u64, f64)>,
    since_detect: usize,
    /// Highest round already emitted; earlier rounds are suppressed.
    emitted_up_to: Option<u64>,
}

impl StreamingCpd {
    /// Creates an empty detector. `window` and `detect_every` are
    /// clamped to at least 1.
    #[must_use]
    pub fn new(config: StreamConfig) -> Self {
        let config = StreamConfig {
            window: config.window.max(1),
            detect_every: config.detect_every.max(1),
            ..config
        };
        Self {
            config,
            ring: VecDeque::with_capacity(config.window.max(1)),
            since_detect: 0,
            emitted_up_to: None,
        }
    }

    /// Appends one observation and returns any change points that
    /// became detectable. Non-finite values are clamped to zero so a
    /// stray NaN cannot poison the pair sums.
    pub fn push(&mut self, round: u64, value: f64) -> Vec<StreamDetection> {
        let value = if value.is_finite() { value } else { 0.0 };
        if self.ring.len() == self.config.window {
            self.ring.pop_front();
        }
        self.ring.push_back((round, value));
        self.since_detect += 1;
        if self.since_detect >= self.config.detect_every {
            self.since_detect = 0;
            self.detect_now(true)
        } else {
            Vec::new()
        }
    }

    /// Runs one final detection pass over whatever the ring holds,
    /// regardless of cadence or confirmation. Called at end of run so a
    /// change close to the last round is not lost to the `detect_every`
    /// stride.
    pub fn flush(&mut self) -> Vec<StreamDetection> {
        self.since_detect = 0;
        self.detect_now(false)
    }

    /// Points currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no points are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    fn detect_now(&mut self, confirmed_only: bool) -> Vec<StreamDetection> {
        let values: Vec<f64> = self.ring.iter().map(|&(_, v)| v).collect();
        let detections = if self.config.rank {
            detect_rank(&values, &self.config.ediv)
        } else {
            detect(&values, &self.config.ediv)
        };
        // Confirmation: as a regime shift slides *into* the window the
        // kernel briefly maximizes at the minimum-size tail segment,
        // mislocating the split. Mid-stream passes therefore only
        // report a split once 2·min_segment post-change points exist;
        // the end-of-run flush waives this (no more data is coming).
        let confirm = 2 * self.config.ediv.min_segment.max(2);
        let mut fresh = Vec::new();
        for d in detections {
            if confirmed_only && d.index + confirm > values.len() {
                continue;
            }
            let round = self.ring[d.index].0;
            if self.emitted_up_to.is_some_and(|hi| round <= hi) {
                continue;
            }
            self.emitted_up_to = Some(round);
            fresh.push(StreamDetection {
                round,
                magnitude: d.magnitude,
                confidence: d.confidence,
            });
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> StreamConfig {
        StreamConfig::default()
    }

    #[test]
    fn step_detected_shortly_after_it_happens() {
        let mut s = StreamingCpd::new(cfg());
        let mut hits = Vec::new();
        for round in 0..64u64 {
            let v = if round < 40 { 1.0 } else { 6.0 };
            for d in s.push(round, v) {
                hits.push((round, d));
            }
        }
        assert_eq!(hits.len(), 1, "{hits:?}");
        let (seen_at, d) = hits[0];
        assert_eq!(d.round, 40);
        // Detected within two detection windows of the change.
        assert!(
            seen_at - d.round <= 2 * cfg().detect_every as u64,
            "change at {} only seen at {seen_at}",
            d.round
        );
    }

    #[test]
    fn each_change_point_emitted_once() {
        let mut s = StreamingCpd::new(cfg());
        let mut emitted = Vec::new();
        for round in 0..128u64 {
            let v = if round < 40 { 1.0 } else { 6.0 };
            emitted.extend(s.push(round, v));
        }
        emitted.extend(s.flush());
        assert_eq!(emitted.len(), 1, "{emitted:?}");
        assert_eq!(emitted[0].round, 40);
    }

    #[test]
    fn flush_catches_late_changes() {
        let mut s = StreamingCpd::new(StreamConfig {
            detect_every: 1000, // cadence alone would never fire
            ..cfg()
        });
        for round in 0..60u64 {
            let v = if round < 30 { 2.0 } else { 9.0 };
            assert!(s.push(round, v).is_empty());
        }
        let final_pass = s.flush();
        assert_eq!(final_pass.len(), 1, "{final_pass:?}");
        assert_eq!(final_pass[0].round, 30);
    }

    #[test]
    fn ring_is_bounded() {
        let mut s = StreamingCpd::new(StreamConfig {
            window: 16,
            ..cfg()
        });
        for round in 0..1000u64 {
            s.push(round, 1.0);
        }
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn rounds_survive_ring_wraparound() {
        // Change lands after the ring has already slid: the detection
        // must still carry the original round label, not a ring index.
        let mut s = StreamingCpd::new(cfg());
        let mut emitted = Vec::new();
        for round in 0..200u64 {
            let v = if round < 150 { 1.0 } else { 5.0 };
            emitted.extend(s.push(round, v));
        }
        assert_eq!(emitted.len(), 1, "{emitted:?}");
        assert_eq!(emitted[0].round, 150);
    }

    #[test]
    fn non_finite_values_are_clamped() {
        let mut s = StreamingCpd::new(cfg());
        for round in 0..64u64 {
            let v = if round % 7 == 0 { f64::NAN } else { 1.0 };
            for d in s.push(round, v) {
                assert!(d.magnitude.is_finite());
            }
        }
    }

    proptest! {
        /// With the window covering the whole series and detection
        /// triggered once at the end, the streaming wrapper must agree
        /// exactly with the batch kernel on the same input: same split
        /// rounds, same magnitudes, same confidences.
        #[test]
        fn streaming_matches_batch_on_identical_input(
            values in prop::collection::vec(-1e3..1e3f64, 16..80),
            step_at in 4..60usize,
            shift in 50.0..200.0f64,
        ) {
            let mut series = values;
            let at = step_at.min(series.len().saturating_sub(1));
            for v in &mut series[at..] {
                *v += shift;
            }
            let batch = crate::ediv::detect(&series, &EDivConfig::default());

            let mut stream = StreamingCpd::new(StreamConfig {
                window: series.len(),
                detect_every: series.len(),
                ..StreamConfig::default()
            });
            let mut emitted = Vec::new();
            for (round, &v) in series.iter().enumerate() {
                emitted.extend(stream.push(round as u64, v));
            }
            emitted.extend(stream.flush());

            prop_assert_eq!(emitted.len(), batch.len());
            for (s, b) in emitted.iter().zip(&batch) {
                prop_assert_eq!(s.round, b.index as u64);
                prop_assert!((s.magnitude - b.magnitude).abs() < 1e-12);
                prop_assert!((s.confidence - b.confidence).abs() < 1e-12);
            }
        }
    }
}
