//! Offline stand-in for the crates-io `criterion` crate.
//!
//! The workspace must build with **zero network access**, so the bench
//! harness cannot pull real criterion (plotters, rayon, serde, ...).
//! This crate implements the subset the regmon benches use — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotation, `criterion_group!` / `criterion_main!` and `black_box` —
//! as a simple wall-clock harness printing one line per benchmark:
//!
//! ```text
//! group/name/param        time: [1.2340 µs]  (1234 iters)
//! ```
//!
//! Statistical machinery (outlier rejection, HTML reports, regression
//! detection) is intentionally out of scope; results are indicative
//! timings, not publication-grade measurements. A `QUICK_BENCH=1`
//! environment variable caps measurement at one batch per benchmark so
//! smoke tests can execute every bench binary cheaply.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier under criterion's name.
pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            full: format!("{function}/{parameter}"),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.full.fmt(f)
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement configuration and report sink.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_one(self, &mut f);
        print_line(&id.to_string(), None, &report);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let report = run_one(self.criterion, &mut f);
        print_line(&label, self.throughput, &report);
        self
    }

    /// Runs one benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let report = run_one(self.criterion, &mut |b: &mut Bencher| f(b, input));
        print_line(&label, self.throughput, &report);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; collects timed iterations.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` consecutive calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times batches created by `setup` and consumed by `routine`
    /// (setup time excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

#[derive(Debug)]
struct Report {
    mean_ns: f64,
    iters: u64,
}

/// Process-wide quick-mode latch set by `--smoke` (see [`force_quick`]).
static FORCED_QUICK: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Forces quick (one-batch-per-benchmark) mode for the rest of the
/// process, exactly as if `QUICK_BENCH=1` were set in the environment.
///
/// [`criterion_main!`] calls this when the bench binary receives a
/// `--smoke` argument (`cargo bench --bench foo -- --smoke`), which is
/// how CI executes every bench as a cheap compile-and-run check without
/// touching the environment of other steps.
pub fn force_quick() {
    FORCED_QUICK.store(true, std::sync::atomic::Ordering::Relaxed);
}

fn quick_mode() -> bool {
    FORCED_QUICK.load(std::sync::atomic::Ordering::Relaxed)
        || std::env::var("QUICK_BENCH").is_ok_and(|v| v != "0")
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, f: &mut F) -> Report {
    // Calibration: run single iterations until ~5% of the budget is
    // spent (or 10 iterations) to estimate per-iteration cost.
    let calibration_budget = config.measurement_time / 20;
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let calib_start = Instant::now();
    let mut calib_runs = 0u32;
    let mut calib_total = Duration::ZERO;
    while calib_runs < 10 && calib_start.elapsed() < calibration_budget {
        f(&mut calib);
        calib_total += calib.elapsed;
        calib_runs += 1;
    }
    let per_iter = calib_total
        .checked_div(calib_runs.max(1))
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));

    // Choose a batch size so `sample_size` batches fit the budget.
    let budget = config.measurement_time;
    let target_batch =
        budget.as_nanos() / (per_iter.as_nanos().max(1) * config.sample_size as u128);
    let batch = target_batch.clamp(1, u128::from(u32::MAX)) as u64;

    let samples = if quick_mode() { 1 } else { config.sample_size };
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let run_start = Instant::now();
    for _ in 0..samples {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
        if run_start.elapsed() > budget * 2 {
            break; // keep slow benches bounded
        }
    }
    Report {
        mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
        iters,
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.4} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.4} ms", ns / 1_000_000.0)
    } else {
        format!("{:.4} s", ns / 1_000_000_000.0)
    }
}

fn print_line(label: &str, throughput: Option<Throughput>, report: &Report) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if report.mean_ns > 0.0 => {
            let per_sec = n as f64 / (report.mean_ns / 1e9);
            format!("  ({per_sec:.0} elem/s)")
        }
        Some(Throughput::Bytes(n)) if report.mean_ns > 0.0 => {
            let per_sec = n as f64 / (report.mean_ns / 1e9);
            format!("  ({per_sec:.0} B/s)")
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} time: [{}]  ({} iters){rate}",
        human_time(report.mean_ns),
        report.iters
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
/// Supports both the `name = ..; config = ..; targets = ..` form and the
/// positional `criterion_group!(benches, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, invoking each group.
///
/// A `--smoke` argument (typically `cargo bench --bench x -- --smoke`)
/// switches the harness to quick mode — one batch per benchmark — so CI
/// can execute every bench binary in seconds.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--smoke") {
                $crate::force_quick();
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_nop(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.bench_function("label", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5).measurement_time(Duration::from_millis(5));
        targets = bench_nop
    }

    #[test]
    fn harness_runs_quickly() {
        benches();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(human_time(12.0), "12.00 ns");
        assert!(human_time(1_500.0).ends_with("µs"));
        assert!(human_time(2_000_000.0).ends_with("ms"));
        assert!(human_time(3e9).ends_with('s'));
    }
}
