//! Best-effort CPU placement for shard workers.
//!
//! Pinning a shard worker (and therefore its ring queue's consumer
//! side) to one core keeps the queue's cache lines resident in that
//! core's private cache instead of bouncing with the scheduler, and
//! gives the steal heuristic a stable notion of *distance*: a victim
//! whose core shares the thief's last-level cache hands over a tenant
//! whose working set is already warm nearby.
//!
//! Everything here is strictly best-effort. On Linux the pinning call
//! is `sched_setaffinity(2)` (declared directly against glibc — no
//! external crate); on every other platform, and whenever the syscall
//! fails (cgroup masks, exotic kernels), workers simply run unpinned
//! and report so. Placement never affects results: fleet outputs are
//! byte-identical with pinning on or off.
//!
//! Topology comes from sysfs: cores sharing
//! `/sys/devices/system/cpu/cpuN/cache/index3/shared_cpu_list` (the
//! last-level cache) form one *complex*. Hosts without an exposed LLC
//! (or without sysfs) collapse to a single complex, which degrades the
//! steal preference to the plain deepest-backlog rule.

use std::fmt;

/// Which CPU a shard worker should ask for: shards round-robin over
/// the CPUs the process may run on.
#[must_use]
pub(crate) fn cpu_for_shard(shard: usize, cpus: usize) -> usize {
    if cpus == 0 {
        0
    } else {
        shard % cpus
    }
}

/// Number of CPUs the process may schedule on (affinity-mask aware on
/// Linux, `available_parallelism` elsewhere), at least 1.
#[must_use]
pub fn available_cpus() -> usize {
    #[cfg(target_os = "linux")]
    if let Some(mask) = linux::current_mask() {
        let n = mask.count();
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Best-effort: pin the calling thread to `cpu`. Returns whether the
/// kernel accepted the mask. Always `false` off Linux.
pub(crate) fn pin_current_thread(cpu: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        linux::pin_to(cpu)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cpu;
        false
    }
}

/// Whether this build can pin at all (compile-time capability — the
/// runtime outcome is per-worker).
#[must_use]
pub fn pinning_supported() -> bool {
    cfg!(target_os = "linux")
}

/// Static CPU→core-complex map, resolved once per engine from sysfs.
#[derive(Clone, Default)]
pub(crate) struct Topology {
    /// `complex[cpu]` is the complex id of `cpu`; empty when unknown
    /// (everything then counts as one complex).
    complex: Vec<usize>,
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("cpus", &self.complex.len())
            .field("complexes", &self.complexes())
            .finish()
    }
}

impl Topology {
    /// Reads the LLC-sharing topology from sysfs (Linux); elsewhere, or
    /// on read failure, returns the single-complex fallback.
    pub fn detect() -> Self {
        Self::from_reader(|cpu| {
            std::fs::read_to_string(format!(
                "/sys/devices/system/cpu/cpu{cpu}/cache/index3/shared_cpu_list"
            ))
            .ok()
        })
    }

    /// Builds the map from a `cpu -> shared_cpu_list` lookup (the sysfs
    /// read, injected for tests).
    pub fn from_reader(read: impl Fn(usize) -> Option<String>) -> Self {
        let mut complex = Vec::new();
        let mut next = 0usize;
        for cpu in 0.. {
            let Some(list) = read(cpu) else { break };
            // The complex is identified by the lowest CPU in the shared
            // list: every member reads the same list, so they all agree.
            let leader = parse_cpu_list(list.trim()).into_iter().min().unwrap_or(cpu);
            if leader == cpu {
                complex.push(next);
                next += 1;
            } else {
                complex.push(complex.get(leader).copied().unwrap_or(0));
            }
        }
        Self { complex }
    }

    /// Complex id of `cpu` (0 when topology is unknown).
    pub fn complex_of(&self, cpu: usize) -> usize {
        self.complex.get(cpu).copied().unwrap_or(0)
    }

    /// Number of distinct complexes (1 when unknown).
    pub fn complexes(&self) -> usize {
        self.complex.iter().copied().max().map_or(1, |m| m + 1)
    }
}

/// Parses a sysfs cpulist (`"0-3,8,10-11"`) into its members.
fn parse_cpu_list(list: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for part in list.split(',').filter(|p| !p.is_empty()) {
        match part.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse::<usize>()) {
                    cpus.extend(lo..=hi);
                }
            }
            None => {
                if let Ok(cpu) = part.trim().parse() {
                    cpus.push(cpu);
                }
            }
        }
    }
    cpus
}

/// The raw `sched_{set,get}affinity` calls, declared directly against
/// glibc — the process is linked against it on every Linux target this
/// crate builds for, so no external crate is needed.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod linux {
    /// 1024-bit cpu mask, matching glibc's `cpu_set_t`.
    const MASK_WORDS: usize = 1024 / 64;

    #[derive(Clone, Copy)]
    pub(super) struct CpuMask {
        words: [u64; MASK_WORDS],
    }

    impl CpuMask {
        fn zero() -> Self {
            Self {
                words: [0; MASK_WORDS],
            }
        }

        fn set(&mut self, cpu: usize) {
            if cpu < MASK_WORDS * 64 {
                self.words[cpu / 64] |= 1u64 << (cpu % 64);
            }
        }

        pub(super) fn count(&self) -> usize {
            self.words.iter().map(|w| w.count_ones() as usize).sum()
        }
    }

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    }

    /// Pins the calling thread (pid 0 = self) to `cpu`.
    pub(super) fn pin_to(cpu: usize) -> bool {
        let mut mask = CpuMask::zero();
        mask.set(cpu);
        // SAFETY: the mask buffer is a valid, initialized allocation of
        // exactly `cpusetsize` bytes for the duration of the call, and
        // `sched_setaffinity` only reads it.
        let rc = unsafe {
            sched_setaffinity(
                0,
                core::mem::size_of::<[u64; MASK_WORDS]>(),
                mask.words.as_ptr(),
            )
        };
        rc == 0
    }

    /// The calling thread's current affinity mask.
    pub(super) fn current_mask() -> Option<CpuMask> {
        let mut mask = CpuMask::zero();
        // SAFETY: the mask buffer is writable for exactly `cpusetsize`
        // bytes, and `sched_getaffinity` writes at most that many.
        let rc = unsafe {
            sched_getaffinity(
                0,
                core::mem::size_of::<[u64; MASK_WORDS]>(),
                mask.words.as_mut_ptr(),
            )
        };
        (rc == 0).then_some(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_list_parsing_handles_ranges_and_singles() {
        assert_eq!(parse_cpu_list("0-3,8,10-11"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpu_list("5"), vec![5]);
        assert_eq!(parse_cpu_list(""), Vec::<usize>::new());
        assert_eq!(parse_cpu_list("junk"), Vec::<usize>::new());
    }

    #[test]
    fn topology_groups_by_llc_leader() {
        // 8 CPUs in two 4-wide complexes.
        let topo = Topology::from_reader(|cpu| {
            (cpu < 8).then(|| if cpu < 4 { "0-3" } else { "4-7" }.to_string())
        });
        assert_eq!(topo.complexes(), 2);
        for cpu in 0..4 {
            assert_eq!(topo.complex_of(cpu), 0);
        }
        for cpu in 4..8 {
            assert_eq!(topo.complex_of(cpu), 1);
        }
        // Unknown CPUs fold into complex 0.
        assert_eq!(topo.complex_of(99), 0);
    }

    #[test]
    fn unknown_topology_is_one_complex() {
        let topo = Topology::from_reader(|_| None);
        assert_eq!(topo.complexes(), 1);
        assert_eq!(topo.complex_of(0), 0);
        assert_eq!(topo.complex_of(7), 0);
    }

    #[test]
    fn shard_cpus_round_robin() {
        assert_eq!(cpu_for_shard(0, 4), 0);
        assert_eq!(cpu_for_shard(5, 4), 1);
        assert_eq!(cpu_for_shard(3, 0), 0);
    }

    #[test]
    fn available_cpus_is_positive() {
        assert!(available_cpus() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_current_thread_to_cpu_zero_succeeds() {
        // CPU 0 is in every default affinity mask; restore afterwards
        // by re-pinning to every available CPU is unnecessary — tests
        // run on their own threads.
        assert!(pinning_supported());
        assert!(pin_current_thread(0));
    }
}
