//! The online change-point feed: bridges the telemetry journal into a
//! [`CpdHub`] as the fleet driver runs.
//!
//! # Determinism
//!
//! Journal *ticks* are recorded by shard workers racing the driver's
//! advancing round counter, and drift further under interval batching —
//! so the feed never keys a tenant series on a tick. Instead it uses the
//! per-tenant x-axes that *are* deterministic:
//!
//! - Every processed interval records an [`EventKind::IntervalEnd`]
//!   marker carrying the session's own interval index, which gives a
//!   dense per-tenant UCR series and, by counting markers, assigns the
//!   current interval ordinal to region-scoped LPD events (per-tenant
//!   journal streams are FIFO, and LPD transitions of interval `k` are
//!   recorded before interval `k`'s end marker).
//! - Queue-stall series come from the lockstep simulation's per-home-
//!   shard counters, which the fleet equivalence contract already keeps
//!   byte-identical across batch sizes and stealing modes.
//!
//! Detection cadence inside each [`StreamingCpd`] counts *points*, not
//! rounds, so while the driver round at which a change point
//! materializes shifts with batching (events drain later), the detected
//! rounds, magnitudes and confidences do not. The final report sorts
//! change points by series key and round, discarding materialization
//! order — which is what keeps `fleet --json` byte-identical across
//! batch × steal schedules with `--cpd` on.

use regmon_cpd::{ChangePoint, CpdHub, Metric, SeriesKey, StreamConfig, NO_REGION, NO_TENANT};
use regmon_telemetry::journal::{self, Event, EventKind};
use regmon_telemetry::metrics;
use std::collections::HashMap;

/// What the change-point layer contributes to a [`FleetReport`].
///
/// [`FleetReport`]: crate::FleetReport
#[derive(Debug, Clone, Default)]
pub struct CpdReport {
    /// Detected change points, sorted by series key then round.
    pub change_points: Vec<ChangePoint>,
    /// Distinct series the hub tracked.
    pub series_tracked: usize,
    /// Telemetry points ingested across all series.
    pub points_ingested: u64,
    /// Every journal event drained during the run (the feed drains the
    /// journal each round, so end-of-run trace writers read from here
    /// instead of draining an already-empty journal).
    pub events: Vec<Event>,
    /// Journal events lost to ring wraparound. Drain timing (and
    /// therefore this count) is scheduling-dependent, so it is
    /// reported but excluded from deterministic JSON output.
    pub lost: u64,
}

/// Per-round journal-to-hub bridge owned by the fleet driver.
#[derive(Debug)]
pub struct CpdFeed {
    hub: CpdHub,
    /// IntervalEnd markers seen per tenant: the ordinal assigned to the
    /// tenant's next region-scoped events.
    intervals_seen: HashMap<u64, u64>,
    /// Previous cumulative stalls+drops per shard (for round deltas).
    prev_queue: Vec<u64>,
    events: Vec<Event>,
    lost: u64,
    detected: Vec<ChangePoint>,
    /// Points already added to the process-global ingestion counter.
    points_published: u64,
}

impl CpdFeed {
    /// Creates a feed for `shards` home shards with default windowing.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            hub: CpdHub::new(StreamConfig::default()),
            intervals_seen: HashMap::new(),
            prev_queue: vec![0; shards],
            events: Vec::new(),
            lost: 0,
            detected: Vec::new(),
            points_published: 0,
        }
    }

    /// One driver round: drain the journal, ingest tenant series, feed
    /// per-shard queue-stall deltas, then journal any fresh detections.
    /// `queue_totals` is the cumulative stalls+drops per home shard
    /// from the lockstep simulation.
    pub fn end_round(&mut self, round: u64, queue_totals: &[u64]) {
        let drained = journal::drain();
        self.lost += drained.lost;
        self.ingest(&drained.events);
        self.events.extend(drained.events);

        for (shard, &total) in queue_totals.iter().enumerate() {
            let delta = total.saturating_sub(self.prev_queue[shard]);
            self.prev_queue[shard] = total;
            self.hub.observe(
                SeriesKey {
                    tenant: NO_TENANT,
                    region: shard as u64,
                    metric: Metric::QueueStalls,
                },
                round,
                delta as f64,
            );
        }
        self.publish();
    }

    /// End of run: drain stragglers, run the final detection pass, and
    /// assemble the report.
    #[must_use]
    pub fn finish(mut self) -> CpdReport {
        let drained = journal::drain();
        self.lost += drained.lost;
        self.ingest(&drained.events);
        self.events.extend(drained.events);
        self.hub.flush();
        self.publish();
        // Change-point journal events recorded by `publish` are picked
        // up here so the trace artifact carries them too.
        let tail = journal::drain();
        self.lost += tail.lost;
        self.events.extend(tail.events);

        let mut change_points = self.detected;
        change_points.sort_by_key(|a| (a.series, a.round));
        CpdReport {
            change_points,
            series_tracked: self.hub.series_tracked(),
            points_ingested: self.hub.points_ingested(),
            events: self.events,
            lost: self.lost,
        }
    }

    fn ingest(&mut self, events: &[Event]) {
        for ev in events {
            match ev.kind {
                EventKind::IntervalEnd { interval, ucr } => {
                    self.intervals_seen.insert(ev.tenant, interval + 1);
                    self.hub.observe(
                        SeriesKey {
                            tenant: ev.tenant,
                            region: NO_REGION,
                            metric: Metric::Ucr,
                        },
                        interval,
                        ucr,
                    );
                }
                EventKind::LpdTransition { region, r, rt, .. } => {
                    let ordinal = self.intervals_seen.get(&ev.tenant).copied().unwrap_or(0);
                    self.hub.observe(
                        SeriesKey {
                            tenant: ev.tenant,
                            region,
                            metric: Metric::PearsonR,
                        },
                        ordinal,
                        r,
                    );
                    self.hub.observe(
                        SeriesKey {
                            tenant: ev.tenant,
                            region,
                            metric: Metric::SimilarityThreshold,
                        },
                        ordinal,
                        rt,
                    );
                }
                // Our own detections re-entering through the journal,
                // and everything tick-keyed (queue stalls come from the
                // simulation instead — see module docs).
                _ => {}
            }
        }
        metrics::CPD_SERIES_TRACKED.set(self.hub.series_tracked() as i64);
    }

    /// Moves fresh hub detections into the report set, journaling each
    /// as an [`EventKind::ChangePoint`] attributed to its tenant.
    fn publish(&mut self) {
        let fresh = self.hub.take_detections();
        let points = self.hub.points_ingested();
        metrics::CPD_POINTS_INGESTED.add(points.saturating_sub(self.points_published));
        self.points_published = points;
        for cp in &fresh {
            metrics::CPD_CHANGEPOINTS.inc();
            let tenant = if cp.series.tenant == NO_TENANT {
                0
            } else {
                cp.series.tenant
            };
            journal::set_tenant(tenant);
            journal::record(EventKind::ChangePoint {
                region: cp.series.region,
                metric: cp.series.metric.name(),
                magnitude: cp.magnitude,
                confidence: cp.confidence,
            });
        }
        journal::set_tenant(0);
        self.detected.extend(fresh);
    }
}
