//! The fleet driver: owns the workloads and samplers, produces interval
//! traffic round-robin across tenants and applies lifecycle schedules.
//!
//! # Pacing and determinism
//!
//! Backpressure counters of a free-running producer/consumer pair are
//! inherently timing-dependent: whether a push finds the queue full
//! depends on how far the consumer got. The driver therefore offers two
//! pacing modes:
//!
//! - [`Pacing::Lockstep`] (default): production advances in rounds (one
//!   interval per running tenant per round). Per shard, the driver
//!   maintains a *local* bounded buffer with the configured depth and
//!   applies the queue policy to it deterministically: an overflow under
//!   [`QueuePolicy::Block`] counts one stall and clears the buffer (the
//!   logical equivalent of the producer waiting for the worker to catch
//!   up); an overflow under [`QueuePolicy::DropOldest`] evicts the
//!   buffer head and counts one drop — that interval is truly never
//!   delivered. All counters (stalls, drops, high-water) are thus pure
//!   functions of tenant placement, round sizes and queue depth: same
//!   inputs, same numbers, every run, every machine — and independent of
//!   the physical batching factor and of lease rebalancing, because the
//!   simulation is keyed to *home* shards.
//! - [`Pacing::Freerun`]: intervals are pushed straight into the shard
//!   queues and the *real* queue counters are reported. Results per
//!   tenant are still exact under `Block` (the queue is lossless FIFO);
//!   only the counters vary with scheduling. This is the mode for
//!   benchmarks and stress tests.
//!
//! # Interval batching
//!
//! With [`EngineConfig::batch`] `> 1` the driver coalesces a tenant's
//! intervals into [`ShardMsg::Batch`] messages of up to `batch`
//! intervals, amortizing one queue operation (and one worker
//! `catch_unwind` frame) over the whole run of intervals. Under
//! lockstep, intervals leave the deterministic simulation into a
//! per-tenant *staging* vector and ship whenever a full chunk is ready;
//! lifecycle edges (pause/evict/restart/finish/snapshot/end-of-run)
//! force-ship the remainder first, so per-tenant message order is
//! unchanged. Under freerun the driver pulls whole batches straight off
//! the sampler ([`Sampler::next_batch`]). In both modes the per-tenant
//! interval sequence — and therefore every summary and phase-change
//! sequence — is byte-identical to the `batch = 1` path.
//!
//! # Work stealing
//!
//! With [`EngineConfig::steal`] enabled, tenant ownership may move
//! between shards. Under freerun, idle workers steal from backlogged
//! peers on their own (see [`crate::shard`]). Under lockstep the driver
//! itself rebalances deterministically: at each round boundary, if the
//! busiest shard leases at least two more producing tenants than the
//! idlest, the lowest-id producing tenant migrates — so summaries *and*
//! backpressure counters stay byte-identical to the pinned schedule.
//!
//! In all modes, per-tenant interval order is preserved end-to-end, so
//! under `Block` every tenant's [`SessionSummary`] is byte-identical to
//! a standalone [`MonitoringSession::run_limited`] run — the fleet
//! equivalence tests assert exactly that, across shard counts, batch
//! sizes and stealing modes.
//!
//! [`EngineConfig::batch`]: crate::EngineConfig::batch
//! [`EngineConfig::steal`]: crate::EngineConfig::steal
//! [`ShardMsg::Batch`]: crate::shard::ShardMsg
//! [`MonitoringSession::run_limited`]: regmon::MonitoringSession::run_limited
//! [`SessionSummary`]: regmon::SessionSummary
//! [`Sampler::next_batch`]: regmon_sampling::Sampler::next_batch

use std::collections::VecDeque;
use std::time::Instant;

use regmon_sampling::{Interval, Sampler};
use regmon_telemetry as telemetry;
use regmon_telemetry::journal;

use crate::cpdfeed::CpdFeed;
use crate::engine::{EngineConfig, FleetEngine};
use crate::queue::QueuePolicy;
use crate::report::{FleetReport, FleetSnapshot, ShardReport, TenantReport};
use crate::tenant::{ColdTenantPolicy, EvictReason, TenantId, TenantSpec};

/// How the driver paces production against the shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Deterministic round-based production with driver-side
    /// backpressure accounting (see module docs).
    #[default]
    Lockstep,
    /// Free-running production against the live bounded queues.
    Freerun,
}

impl Pacing {
    /// Parses a CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns an error listing every accepted spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "lockstep" => Ok(Self::Lockstep),
            "freerun" | "free-run" | "free_run" => Ok(Self::Freerun),
            other => Err(format!(
                "unknown pacing {other:?}; expected one of: lockstep, freerun, free-run, free_run"
            )),
        }
    }
}

/// Full configuration of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Shard pool and queue parameters.
    pub engine: EngineConfig,
    /// Production pacing.
    pub pacing: Pacing,
    /// Optional cold-tenant eviction policy.
    pub cold_tenant: Option<ColdTenantPolicy>,
    /// Emit a telemetry exposition to stderr every N driver rounds
    /// (`None` = never). Exposition goes to stderr so `--json` stdout
    /// stays byte-identical.
    pub metrics_every: Option<usize>,
    /// Run the online change-point detector over the run's telemetry
    /// (requires lockstep pacing and enabled telemetry; see
    /// [`crate::CpdFeed`]). The detections land in
    /// [`FleetReport::cpd`].
    ///
    /// [`FleetReport::cpd`]: crate::FleetReport::cpd
    pub cpd: bool,
}

impl FleetConfig {
    /// A lockstep fleet with `shards` workers and `queue_depth` buffers.
    #[must_use]
    pub fn new(shards: usize, queue_depth: usize) -> Self {
        Self {
            engine: EngineConfig::new(shards, queue_depth),
            pacing: Pacing::Lockstep,
            cold_tenant: None,
            metrics_every: None,
            cpd: false,
        }
    }

    /// Replaces the backpressure policy.
    #[must_use]
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.engine = self.engine.with_policy(policy);
        self
    }

    /// Switches pacing mode.
    #[must_use]
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Sets the interval batching factor (1 = per-interval shipping).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.engine = self.engine.with_batch(batch);
        self
    }

    /// Enables tenant-lease stealing / rebalancing.
    #[must_use]
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.engine = self.engine.with_steal(steal);
        self
    }

    /// Enables best-effort worker CPU pinning (never affects results).
    #[must_use]
    pub fn with_pin(mut self, pin: bool) -> Self {
        self.engine = self.engine.with_pin(pin);
        self
    }

    /// Installs a cold-tenant eviction policy.
    #[must_use]
    pub fn with_cold_tenant(mut self, policy: ColdTenantPolicy) -> Self {
        self.cold_tenant = Some(policy);
        self
    }

    /// Emits a Prometheus exposition to stderr every `rounds` driver
    /// rounds (0 disables).
    #[must_use]
    pub fn with_metrics_every(mut self, rounds: usize) -> Self {
        self.metrics_every = (rounds > 0).then_some(rounds);
        self
    }

    /// Enables the online change-point detector.
    #[must_use]
    pub fn with_cpd(mut self, cpd: bool) -> Self {
        self.cpd = cpd;
        self
    }
}

/// One lifecycle command in a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Stop producing for (and processing of) a tenant.
    Pause(TenantId),
    /// Resume a paused tenant where it left off.
    Resume(TenantId),
    /// Remove a tenant from the fleet.
    Evict(TenantId),
    /// Give a tenant a fresh session and replay its workload from the
    /// start (works on running, completed, evicted and failed tenants).
    Restart(TenantId),
    /// Capture a fleet-wide snapshot into the report.
    Snapshot,
}

/// A deterministic lifecycle script: actions applied at the *start* of
/// given driver rounds (round 0 is before any interval is produced).
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<(usize, ControlAction)>,
}

impl Schedule {
    /// The empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `action` at the start of `round` (builder style).
    #[must_use]
    pub fn at(mut self, round: usize, action: ControlAction) -> Self {
        self.entries.push((round, action));
        self
    }

    fn max_round(&self) -> Option<usize> {
        self.entries.iter().map(|(r, _)| *r).max()
    }

    fn at_round(&self, round: usize) -> impl Iterator<Item = ControlAction> + '_ {
        self.entries
            .iter()
            .filter(move |(r, _)| *r == round)
            .map(|(_, a)| *a)
    }
}

/// Driver-side view of one tenant.
struct DriverTenant<'a> {
    id: TenantId,
    spec: &'a TenantSpec,
    sampler: Sampler<'a>,
    /// Intervals produced since (re)start.
    produced: usize,
    cold_streak: usize,
    producing: bool,
    paused: bool,
}

impl<'a> DriverTenant<'a> {
    fn new(id: TenantId, spec: &'a TenantSpec) -> Self {
        Self {
            id,
            spec,
            sampler: Sampler::new(&spec.workload, spec.config.sampling),
            produced: 0,
            cold_streak: 0,
            producing: true,
            paused: false,
        }
    }

    fn restart(&mut self) {
        self.sampler = Sampler::new(&self.spec.workload, self.spec.config.sampling);
        self.produced = 0;
        self.cold_streak = 0;
        self.producing = true;
        self.paused = false;
    }

    fn active(&self) -> bool {
        self.producing && !self.paused
    }

    /// Advances the cold-streak accounting for one produced interval and
    /// reports whether the policy fires on it.
    fn cold_step(&mut self, interval: &Interval, policy: Option<ColdTenantPolicy>) -> bool {
        policy.is_some_and(|ColdTenantPolicy(p)| {
            if (interval.samples.len() as u64) < p.min_samples {
                self.cold_streak += 1;
            } else {
                self.cold_streak = 0;
            }
            self.cold_streak >= p.cold_intervals
        })
    }
}

/// Deterministic per-shard backpressure accounting for lockstep pacing.
#[derive(Debug, Clone, Copy, Default)]
struct SimCounters {
    stalls: usize,
    drops: usize,
    high_water: usize,
}

/// Lockstep state: the deterministic per-home-shard queue simulation
/// plus the per-tenant physical staging vectors that decouple *what the
/// counters say* (pure simulation, batching-independent) from *how
/// intervals ship* (coalesced batch messages).
struct Lockstep {
    depth: usize,
    batch: usize,
    buffers: Vec<VecDeque<(TenantId, Interval)>>,
    sim: Vec<SimCounters>,
    /// Per-tenant intervals that survived the simulation and await
    /// physical shipment (indexed by dense tenant id).
    pending: Vec<Vec<Interval>>,
}

impl Lockstep {
    fn new(shards: usize, depth: usize, batch: usize, tenants: usize) -> Self {
        Self {
            depth,
            batch: batch.max(1),
            buffers: (0..shards)
                .map(|_| VecDeque::with_capacity(depth))
                .collect(),
            sim: vec![SimCounters::default(); shards],
            pending: vec![Vec::new(); tenants],
        }
    }

    /// The PR 1 simulation step, verbatim: overflow under `Block` counts
    /// one stall and empties the buffer (into staging — physical
    /// shipping is decoupled); overflow under `DropOldest` evicts the
    /// buffer head, which is then truly never delivered.
    fn push(&mut self, id: TenantId, interval: Interval, policy: QueuePolicy, shards: usize) {
        let shard = id.shard(shards);
        if self.buffers[shard].len() >= self.depth {
            match policy {
                QueuePolicy::Block => {
                    self.sim[shard].stalls = self.sim[shard].stalls.saturating_add(1);
                    journal::record(journal::EventKind::Backpressure {
                        shard: shard as u64,
                        units: 1,
                    });
                    self.stage(shard);
                }
                QueuePolicy::DropOldest => {
                    self.buffers[shard].pop_front();
                    self.sim[shard].drops = self.sim[shard].drops.saturating_add(1);
                    journal::record(journal::EventKind::Backpressure {
                        shard: shard as u64,
                        units: 1,
                    });
                }
            }
        }
        self.buffers[shard].push_back((id, interval));
        self.sim[shard].high_water = self.sim[shard].high_water.max(self.buffers[shard].len());
    }

    /// Moves a home shard's simulated buffer into per-tenant staging
    /// (FIFO order preserved per tenant).
    fn stage(&mut self, shard: usize) {
        while let Some((id, interval)) = self.buffers[shard].pop_front() {
            self.pending[id.0 as usize].push(interval);
        }
    }

    /// Ships every *full* chunk staged for tenant `t`.
    fn ship_ready(&mut self, engine: &FleetEngine, t: TenantId) {
        let p = &mut self.pending[t.0 as usize];
        while p.len() >= self.batch {
            let chunk: Vec<Interval> = p.drain(..self.batch).collect();
            let _ = engine.send_batch_blocking(t, chunk);
        }
    }

    /// Force-ships everything staged for tenant `t` (lifecycle edges:
    /// the next message for `t` must be FIFO-ordered after its
    /// intervals).
    fn ship_all(&mut self, engine: &FleetEngine, t: TenantId) {
        let p = &mut self.pending[t.0 as usize];
        while !p.is_empty() {
            let n = p.len().min(self.batch);
            let chunk: Vec<Interval> = p.drain(..n).collect();
            let _ = engine.send_batch_blocking(t, chunk);
        }
    }

    /// Force-ships every tenant's staging (snapshot / end of run).
    fn ship_everything(&mut self, engine: &FleetEngine) {
        for i in 0..self.pending.len() {
            self.ship_all(engine, TenantId(i as u32));
        }
    }
}

/// Runs a whole fleet to completion and reports.
///
/// Tenants are admitted in spec order, receiving dense ids `0..n`; a
/// tenant's home shard is `id % shards`. The run ends when no tenant is
/// producing and the schedule has no future entries.
///
/// # Panics
///
/// Panics on an invalid configuration (zero shards / queue depth) or if
/// a shard worker dies, which the quarantine design rules out for
/// tenant-level failures.
#[must_use]
pub fn run_fleet(config: &FleetConfig, specs: &[TenantSpec], schedule: &Schedule) -> FleetReport {
    let start = Instant::now();
    let shards = config.engine.shards;
    let lockstep = config.pacing == Pacing::Lockstep;
    // Virtual clock: journal timestamps are the deterministic round
    // index in lockstep, wall-clock only in freerun, so enabling
    // telemetry cannot perturb `fleet --json`.
    telemetry::clock::set_mode(if lockstep {
        telemetry::clock::ClockMode::Lockstep
    } else {
        telemetry::clock::ClockMode::Freerun
    });
    telemetry::metrics::FLEET_TENANTS.set(specs.len() as i64);
    let batch = config.engine.batch.max(1);
    // Workers only self-steal in freerun; the lockstep driver rebalances
    // deterministically itself.
    let mut engine = FleetEngine::with_worker_steal(config.engine, !lockstep);
    let mut tenants: Vec<DriverTenant> = specs
        .iter()
        .map(|spec| DriverTenant::new(engine.admit(spec), spec))
        .collect();

    let mut ls =
        lockstep.then(|| Lockstep::new(shards, config.engine.queue_depth, batch, tenants.len()));
    // Change-point detection needs the deterministic round/interval
    // axes only lockstep provides; under freerun the flag is ignored.
    let mut feed = (config.cpd && lockstep).then(|| CpdFeed::new(shards));
    let mut snapshots: Vec<FleetSnapshot> = Vec::new();
    let max_sched_round = schedule.max_round();

    let mut round = 0usize;
    loop {
        if lockstep {
            telemetry::clock::set_tick(round as u64);
        }
        // --- lifecycle actions scheduled for this round ----------------
        // (Simulated buffers are empty here: every round ends staged.)
        for action in schedule.at_round(round) {
            apply_action(
                action,
                &mut tenants,
                &engine,
                ls.as_mut(),
                round,
                &mut snapshots,
            );
        }

        // --- produce for every active tenant ---------------------------
        let mut produced_any = false;
        if let Some(ls) = ls.as_mut() {
            // Lockstep: one interval per tenant per round through the
            // deterministic simulation, exactly as the per-interval
            // engine did it.
            for tenant in &mut tenants {
                if !tenant.active() {
                    continue;
                }
                let Some(mut interval) = tenant.sampler.next() else {
                    complete_tenant(tenant, &engine, Some(ls));
                    continue;
                };
                if tenant
                    .spec
                    .degrade_from
                    .is_some_and(|n| interval.index >= n)
                {
                    degrade_interval(&mut interval);
                }
                produced_any = true;
                tenant.produced = tenant.produced.saturating_add(1);
                let cold_fire = tenant.cold_step(&interval, config.cold_tenant);
                let id = tenant.id;
                ls.push(id, interval, config.engine.policy, shards);

                if cold_fire {
                    ls.stage(id.shard(shards));
                    ls.ship_all(&engine, id);
                    engine.evict(id, EvictReason::Cold);
                    tenant.producing = false;
                } else if tenant.produced >= tenant.spec.max_intervals {
                    complete_tenant(tenant, &engine, Some(ls));
                }
            }

            // --- end-of-round: stage the simulation, ship full chunks --
            for shard in 0..shards {
                ls.stage(shard);
            }
            for i in 0..tenants.len() {
                ls.ship_ready(&engine, TenantId(i as u32));
            }
            if config.engine.steal {
                rebalance(&engine, &tenants);
            }
        } else {
            // Freerun: pull whole batches straight off the sampler and
            // ship them against the live queues.
            for tenant in &mut tenants {
                if !tenant.active() {
                    continue;
                }
                let want = batch
                    .min(tenant.spec.max_intervals.saturating_sub(tenant.produced))
                    .max(1);
                let mut intervals = tenant.sampler.next_batch(want);
                if intervals.is_empty() {
                    complete_tenant(tenant, &engine, None);
                    continue;
                }
                if let Some(n) = tenant.spec.degrade_from {
                    for interval in intervals.iter_mut().filter(|i| i.index >= n) {
                        degrade_interval(interval);
                    }
                }
                produced_any = true;
                let mut cold_fire = false;
                let mut keep = intervals.len();
                for (k, interval) in intervals.iter().enumerate() {
                    if tenant.cold_step(interval, config.cold_tenant) {
                        cold_fire = true;
                        keep = k + 1;
                        break;
                    }
                }
                intervals.truncate(keep);
                tenant.produced = tenant.produced.saturating_add(intervals.len());
                let id = tenant.id;
                let _ = engine.offer_batch(id, intervals);
                if cold_fire {
                    engine.evict(id, EvictReason::Cold);
                    tenant.producing = false;
                } else if tenant.produced >= tenant.spec.max_intervals {
                    complete_tenant(tenant, &engine, None);
                }
            }
        }

        // --- change-point feed: catch the workers up, drain, detect ----
        if let Some(feed) = feed.as_mut() {
            engine.drain_barrier();
            let queue_totals: Vec<u64> = ls
                .as_ref()
                .map(|ls| ls.sim.iter().map(|s| (s.stalls + s.drops) as u64).collect())
                .unwrap_or_default();
            feed.end_round(round as u64, &queue_totals);
        }

        if telemetry::enabled() {
            if let Some(every) = config.metrics_every {
                if round % every == 0 {
                    eprint!("{}", telemetry::expo::prometheus_text());
                }
            }
        }

        let future_actions = max_sched_round.is_some_and(|m| m > round);
        if !produced_any && !future_actions {
            break;
        }
        round += 1;
    }

    // --- ship stragglers (paused tenants' staging), then shut down -----
    if let Some(ls) = ls.as_mut() {
        ls.ship_everything(&engine);
    }
    let finals = engine.shutdown();
    // Workers are gone: the final drain below sees every event.
    let cpd = feed.map(CpdFeed::finish);

    let mut tenant_reports: Vec<TenantReport> = Vec::with_capacity(tenants.len());
    for f in &finals {
        for snap in &f.tenants {
            let driver = tenants
                .iter()
                .find(|t| t.id == snap.id)
                .expect("worker reported unknown tenant");
            tenant_reports.push(TenantReport {
                id: snap.id,
                name: snap.name.clone(),
                workload: driver.spec.workload.name().to_string(),
                shard: f.shard,
                state: snap.state.clone(),
                intervals_produced: driver.produced,
                intervals_processed: snap.intervals_processed,
                intervals_ignored: snap.intervals_ignored,
                restarts: snap.restarts,
                summary: snap.summary.clone(),
                error: snap.error.clone(),
            });
        }
    }
    tenant_reports.sort_by_key(|t| t.id);

    let shard_reports: Vec<ShardReport> = finals
        .iter()
        .map(|f| {
            let (stalls, drops, high_water) = match &ls {
                Some(ls) => {
                    let s = ls.sim[f.shard];
                    (s.stalls, s.drops, s.high_water)
                }
                None => (f.queue.stalls, f.queue.dropped, f.queue.high_water),
            };
            ShardReport {
                shard: f.shard,
                tenants: f.tenants.len(),
                messages_processed: f.messages_processed,
                backpressure_stalls: stalls,
                dropped_intervals: drops,
                queue_high_water: high_water,
                batch_sizes: f.queue.batch_sizes,
                tenants_stolen: f.tenants_stolen,
            }
        })
        .collect();

    let aggregate = FleetReport::aggregate_from(&tenant_reports, &shard_reports);
    FleetReport {
        tenants: tenant_reports,
        shards: shard_reports,
        aggregate,
        snapshots,
        cpd,
        wall_ms: start.elapsed().as_millis(),
    }
}

/// Applies the planted regression: shifts every sample PC far outside
/// the synthetic binary's address space, so region formation stops
/// attributing samples and the tenant's UCR steps up. Deterministic and
/// reversible only by re-running without the flag.
fn degrade_interval(interval: &mut Interval) {
    const DEGRADE_BIT: u64 = 1 << 40;
    for s in &mut interval.samples {
        s.addr = regmon_binary::Addr::new(s.addr.get() | DEGRADE_BIT);
    }
}

/// Marks a tenant complete, ordering the Finish after its staged
/// intervals.
fn complete_tenant(tenant: &mut DriverTenant<'_>, engine: &FleetEngine, ls: Option<&mut Lockstep>) {
    if let Some(ls) = ls {
        ls.stage(tenant.id.shard(engine.shards()));
        ls.ship_all(engine, tenant.id);
    }
    engine.finish(tenant.id);
    tenant.producing = false;
}

/// Lockstep lease rebalancing: if the busiest shard leases at least two
/// more producing tenants than the idlest, migrate the lowest-id
/// producing tenant. Pure function of leases and production state, so
/// runs and stealing-mode comparisons stay byte-identical.
fn rebalance(engine: &FleetEngine, tenants: &[DriverTenant<'_>]) {
    let shards = engine.shards();
    if shards < 2 {
        return;
    }
    let mut counts = vec![0usize; shards];
    for t in tenants {
        if t.producing {
            counts[engine.shard_of(t.id)] += 1;
        }
    }
    let (mut max_s, mut min_s) = (0usize, 0usize);
    for s in 1..shards {
        if counts[s] > counts[max_s] {
            max_s = s;
        }
        if counts[s] < counts[min_s] {
            min_s = s;
        }
    }
    if counts[max_s] >= counts[min_s] + 2 {
        if let Some(t) = tenants
            .iter()
            .find(|t| t.producing && engine.shard_of(t.id) == max_s)
        {
            engine.migrate(t.id, min_s);
        }
    }
}

/// Applies one schedule action (round start; simulated buffers are
/// empty, but a tenant may have staged intervals that must ship before
/// its control message).
fn apply_action(
    action: ControlAction,
    tenants: &mut [DriverTenant<'_>],
    engine: &FleetEngine,
    mut ls: Option<&mut Lockstep>,
    round: usize,
    snapshots: &mut Vec<FleetSnapshot>,
) {
    match action {
        ControlAction::Pause(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                if let Some(ls) = ls.as_deref_mut() {
                    ls.ship_all(engine, id);
                }
                engine.pause(id);
                t.paused = true;
            }
        }
        ControlAction::Resume(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                engine.resume(id);
                t.paused = false;
            }
        }
        ControlAction::Evict(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                if let Some(ls) = ls.as_deref_mut() {
                    ls.ship_all(engine, id);
                }
                engine.evict(id, EvictReason::Requested);
                t.producing = false;
            }
        }
        ControlAction::Restart(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                if let Some(ls) = ls.as_deref_mut() {
                    ls.ship_all(engine, id);
                }
                engine.restart(id);
                t.restart();
            }
        }
        ControlAction::Snapshot => {
            if let Some(ls) = ls {
                ls.ship_everything(engine);
                engine.drain_barrier();
            }
            snapshots.push(FleetSnapshot {
                round,
                shards: engine.snapshot(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantState;
    use regmon::SessionConfig;
    use regmon_workload::suite;

    fn specs(n: usize, intervals: usize) -> Vec<TenantSpec> {
        let names = suite::names();
        (0..n)
            .map(|i| {
                let name = names[i % names.len()];
                TenantSpec::new(
                    format!("{name}#{i}"),
                    suite::by_name(name).unwrap(),
                    SessionConfig::new(45_000),
                    intervals,
                )
            })
            .collect()
    }

    /// Specs with per-tenant interval budgets that drain shards
    /// unevenly, so the lockstep rebalancer actually migrates. Tenants
    /// homed on shard 1 of a 4-shard fleet (`i % 4 == 1`) outlive
    /// everyone else by 16 rounds: once the short tenants complete,
    /// shard 1 leases two producing tenants against zero elsewhere and
    /// the `max >= min + 2` trigger fires.
    fn ragged_specs(n: usize) -> Vec<TenantSpec> {
        let names = suite::names();
        (0..n)
            .map(|i| {
                let name = names[i % names.len()];
                TenantSpec::new(
                    format!("{name}#{i}"),
                    suite::by_name(name).unwrap(),
                    SessionConfig::new(45_000),
                    4 + 16 * usize::from(i % 4 == 1),
                )
            })
            .collect()
    }

    #[test]
    fn lockstep_counters_are_reproducible() {
        let config = FleetConfig::new(3, 4);
        let a = run_fleet(&config, &specs(9, 12), &Schedule::new());
        let b = run_fleet(&config, &specs(9, 12), &Schedule::new());
        assert_eq!(a.tenants.len(), 9);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.backpressure_stalls, y.backpressure_stalls);
            assert_eq!(x.dropped_intervals, y.dropped_intervals);
            assert_eq!(x.queue_high_water, y.queue_high_water);
            assert_eq!(x.messages_processed, y.messages_processed);
            assert_eq!(x.batch_sizes, y.batch_sizes);
        }
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(
                format!("{:?}", x.summary),
                format!("{:?}", y.summary),
                "tenant {} summaries diverged",
                x.id
            );
        }
    }

    #[test]
    fn block_lockstep_stalls_when_round_exceeds_depth() {
        // 6 tenants on 1 shard with depth 4: every round overflows once.
        let config = FleetConfig::new(1, 4);
        let report = run_fleet(&config, &specs(6, 5), &Schedule::new());
        assert!(report.shards[0].backpressure_stalls > 0);
        assert_eq!(report.aggregate.dropped_intervals, 0);
        assert_eq!(report.aggregate.completed, 6);
        // Lossless: everything produced was processed.
        assert_eq!(
            report.aggregate.intervals_produced,
            report.aggregate.intervals_processed
        );
    }

    #[test]
    fn drop_oldest_lockstep_drops_deterministically() {
        let config = FleetConfig::new(1, 4).with_policy(QueuePolicy::DropOldest);
        let a = run_fleet(&config, &specs(6, 5), &Schedule::new());
        let b = run_fleet(&config, &specs(6, 5), &Schedule::new());
        assert!(a.shards[0].dropped_intervals > 0);
        assert_eq!(a.shards[0].dropped_intervals, b.shards[0].dropped_intervals);
        assert_eq!(a.shards[0].backpressure_stalls, 0);
        assert!(a.aggregate.intervals_processed < a.aggregate.intervals_produced);
    }

    #[test]
    fn schedule_pause_resume_completes() {
        let config = FleetConfig::new(2, 8);
        let schedule = Schedule::new()
            .at(2, ControlAction::Pause(TenantId(0)))
            .at(5, ControlAction::Resume(TenantId(0)))
            .at(3, ControlAction::Snapshot);
        let report = run_fleet(&config, &specs(4, 8), &schedule);
        assert_eq!(report.aggregate.completed, 4);
        assert_eq!(report.snapshots.len(), 1);
        assert_eq!(report.snapshots[0].round, 3);
        let t0 = report.tenant(TenantId(0)).unwrap();
        assert_eq!(t0.intervals_processed, 8, "paused tenant must finish");
    }

    #[test]
    fn cold_tenant_policy_evicts() {
        // An absurd sample floor makes every interval cold: tenants are
        // evicted after exactly `cold_intervals` intervals.
        let config = FleetConfig::new(2, 8).with_cold_tenant(ColdTenantPolicy::new(3, u64::MAX));
        let report = run_fleet(&config, &specs(4, 20), &Schedule::new());
        assert_eq!(report.aggregate.evicted, 4);
        for t in &report.tenants {
            assert_eq!(t.state, TenantState::Evicted(EvictReason::Cold));
            assert_eq!(t.intervals_produced, 3);
        }
    }

    #[test]
    fn batching_preserves_lockstep_counters_and_summaries() {
        let baseline = run_fleet(&FleetConfig::new(3, 4), &specs(9, 12), &Schedule::new());
        for batch in [2usize, 4, 32] {
            let batched = run_fleet(
                &FleetConfig::new(3, 4).with_batch(batch),
                &specs(9, 12),
                &Schedule::new(),
            );
            for (x, y) in baseline.shards.iter().zip(&batched.shards) {
                assert_eq!(
                    x.backpressure_stalls, y.backpressure_stalls,
                    "batch {batch}"
                );
                assert_eq!(x.dropped_intervals, y.dropped_intervals, "batch {batch}");
                assert_eq!(x.queue_high_water, y.queue_high_water, "batch {batch}");
            }
            for (x, y) in baseline.tenants.iter().zip(&batched.tenants) {
                assert_eq!(
                    format!("{:?}", x.summary),
                    format!("{:?}", y.summary),
                    "tenant {} diverged at batch {batch}",
                    x.id
                );
            }
            // Batching must actually coalesce queue traffic.
            let msgs =
                |r: &FleetReport| r.shards.iter().map(|s| s.messages_processed).sum::<usize>();
            assert!(
                msgs(&batched) < msgs(&baseline),
                "batch {batch} did not reduce message count"
            );
        }
    }

    #[test]
    fn lockstep_rebalance_migrates_and_preserves_results() {
        let specs = ragged_specs(8);
        let pinned = run_fleet(&FleetConfig::new(4, 4), &specs, &Schedule::new());
        let stolen = run_fleet(
            &FleetConfig::new(4, 4).with_steal(true),
            &specs,
            &Schedule::new(),
        );
        assert!(
            stolen.aggregate.tenants_migrated > 0,
            "ragged completion must trigger at least one migration"
        );
        assert_eq!(pinned.aggregate.tenants_migrated, 0);
        for (x, y) in pinned.tenants.iter().zip(&stolen.tenants) {
            assert_eq!(
                format!("{:?}", x.summary),
                format!("{:?}", y.summary),
                "tenant {} diverged under rebalancing",
                x.id
            );
        }
        for (x, y) in pinned.shards.iter().zip(&stolen.shards) {
            assert_eq!(x.backpressure_stalls, y.backpressure_stalls);
            assert_eq!(x.dropped_intervals, y.dropped_intervals);
            assert_eq!(x.queue_high_water, y.queue_high_water);
        }
    }
}
