//! The fleet driver: owns the workloads and samplers, produces interval
//! traffic round-robin across tenants and applies lifecycle schedules.
//!
//! # Pacing and determinism
//!
//! Backpressure counters of a free-running producer/consumer pair are
//! inherently timing-dependent: whether a push finds the queue full
//! depends on how far the consumer got. The driver therefore offers two
//! pacing modes:
//!
//! - [`Pacing::Lockstep`] (default): production advances in rounds (one
//!   interval per running tenant per round). Per shard, the driver
//!   maintains a *local* bounded buffer with the configured depth and
//!   applies the queue policy to it deterministically: an overflow under
//!   [`QueuePolicy::Block`] counts one stall and flushes the buffer
//!   (ship + barrier — the logical equivalent of the producer waiting
//!   for the worker to catch up); an overflow under
//!   [`QueuePolicy::DropOldest`] evicts the buffer head and counts one
//!   drop — that interval is truly never delivered. All counters
//!   (stalls, drops, high-water) are thus pure functions of tenant
//!   placement, round sizes and queue depth: same inputs, same numbers,
//!   every run, every machine.
//! - [`Pacing::Freerun`]: intervals are pushed straight into the shard
//!   queues and the *real* queue counters are reported. Results per
//!   tenant are still exact under `Block` (the queue is lossless FIFO);
//!   only the counters vary with scheduling. This is the mode for
//!   benchmarks and stress tests.
//!
//! In both modes, per-tenant interval order is preserved end-to-end, so
//! under `Block` every tenant's [`SessionSummary`] is byte-identical to
//! a standalone [`MonitoringSession::run_limited`] run — the fleet
//! equivalence tests assert exactly that, for several shard counts.
//!
//! [`MonitoringSession::run_limited`]: regmon::MonitoringSession::run_limited
//! [`SessionSummary`]: regmon::SessionSummary

use std::collections::VecDeque;
use std::time::Instant;

use regmon_sampling::{Interval, Sampler};

use crate::engine::{EngineConfig, FleetEngine};
use crate::queue::QueuePolicy;
use crate::report::{FleetReport, FleetSnapshot, ShardReport, TenantReport};
use crate::tenant::{ColdTenantPolicy, EvictReason, TenantId, TenantSpec};

/// How the driver paces production against the shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Deterministic round-based production with driver-side
    /// backpressure accounting (see module docs).
    #[default]
    Lockstep,
    /// Free-running production against the live bounded queues.
    Freerun,
}

/// Full configuration of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Shard pool and queue parameters.
    pub engine: EngineConfig,
    /// Production pacing.
    pub pacing: Pacing,
    /// Optional cold-tenant eviction policy.
    pub cold_tenant: Option<ColdTenantPolicy>,
}

impl FleetConfig {
    /// A lockstep fleet with `shards` workers and `queue_depth` buffers.
    #[must_use]
    pub fn new(shards: usize, queue_depth: usize) -> Self {
        Self {
            engine: EngineConfig::new(shards, queue_depth),
            pacing: Pacing::Lockstep,
            cold_tenant: None,
        }
    }

    /// Replaces the backpressure policy.
    #[must_use]
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.engine = self.engine.with_policy(policy);
        self
    }

    /// Switches pacing mode.
    #[must_use]
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Installs a cold-tenant eviction policy.
    #[must_use]
    pub fn with_cold_tenant(mut self, policy: ColdTenantPolicy) -> Self {
        self.cold_tenant = Some(policy);
        self
    }
}

/// One lifecycle command in a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Stop producing for (and processing of) a tenant.
    Pause(TenantId),
    /// Resume a paused tenant where it left off.
    Resume(TenantId),
    /// Remove a tenant from the fleet.
    Evict(TenantId),
    /// Give a tenant a fresh session and replay its workload from the
    /// start (works on running, completed, evicted and failed tenants).
    Restart(TenantId),
    /// Capture a fleet-wide snapshot into the report.
    Snapshot,
}

/// A deterministic lifecycle script: actions applied at the *start* of
/// given driver rounds (round 0 is before any interval is produced).
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<(usize, ControlAction)>,
}

impl Schedule {
    /// The empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `action` at the start of `round` (builder style).
    #[must_use]
    pub fn at(mut self, round: usize, action: ControlAction) -> Self {
        self.entries.push((round, action));
        self
    }

    fn max_round(&self) -> Option<usize> {
        self.entries.iter().map(|(r, _)| *r).max()
    }

    fn at_round(&self, round: usize) -> impl Iterator<Item = ControlAction> + '_ {
        self.entries
            .iter()
            .filter(move |(r, _)| *r == round)
            .map(|(_, a)| *a)
    }
}

/// Driver-side view of one tenant.
struct DriverTenant<'a> {
    id: TenantId,
    spec: &'a TenantSpec,
    sampler: Sampler<'a>,
    /// Intervals produced since (re)start.
    produced: usize,
    cold_streak: usize,
    producing: bool,
    paused: bool,
}

impl<'a> DriverTenant<'a> {
    fn new(id: TenantId, spec: &'a TenantSpec) -> Self {
        Self {
            id,
            spec,
            sampler: Sampler::new(&spec.workload, spec.config.sampling),
            produced: 0,
            cold_streak: 0,
            producing: true,
            paused: false,
        }
    }

    fn restart(&mut self) {
        self.sampler = Sampler::new(&self.spec.workload, self.spec.config.sampling);
        self.produced = 0;
        self.cold_streak = 0;
        self.producing = true;
        self.paused = false;
    }

    fn active(&self) -> bool {
        self.producing && !self.paused
    }
}

/// Deterministic per-shard backpressure accounting for lockstep pacing.
#[derive(Debug, Clone, Copy, Default)]
struct SimCounters {
    stalls: usize,
    drops: usize,
    high_water: usize,
}

/// Runs a whole fleet to completion and reports.
///
/// Tenants are admitted in spec order, receiving dense ids `0..n`; a
/// tenant's shard is `id % shards`. The run ends when no tenant is
/// producing and the schedule has no future entries.
///
/// # Panics
///
/// Panics on an invalid configuration (zero shards / queue depth) or if
/// a shard worker dies, which the quarantine design rules out for
/// tenant-level failures.
#[must_use]
pub fn run_fleet(config: &FleetConfig, specs: &[TenantSpec], schedule: &Schedule) -> FleetReport {
    let start = Instant::now();
    let shards = config.engine.shards;
    let mut engine = FleetEngine::new(config.engine);
    let mut tenants: Vec<DriverTenant> = specs
        .iter()
        .map(|spec| DriverTenant::new(engine.admit(spec), spec))
        .collect();

    let mut buffers: Vec<VecDeque<(TenantId, Interval)>> = (0..shards)
        .map(|_| VecDeque::with_capacity(config.engine.queue_depth))
        .collect();
    let mut sim: Vec<SimCounters> = vec![SimCounters::default(); shards];
    let mut snapshots: Vec<FleetSnapshot> = Vec::new();

    let lockstep = config.pacing == Pacing::Lockstep;
    let max_sched_round = schedule.max_round();

    let mut round = 0usize;
    loop {
        // --- lifecycle actions scheduled for this round ----------------
        // (Lockstep buffers are empty here: every round ends in a flush.)
        for action in schedule.at_round(round) {
            apply_action(
                action,
                &mut tenants,
                &engine,
                &mut buffers,
                lockstep,
                round,
                &mut snapshots,
            );
        }

        // --- produce one interval per active tenant --------------------
        let mut produced_any = false;
        for tenant in &mut tenants {
            if !tenant.active() {
                continue;
            }
            let Some(interval) = tenant.sampler.next() else {
                complete_tenant(tenant, &engine, &mut buffers, lockstep);
                continue;
            };
            produced_any = true;
            tenant.produced += 1;

            // Cold-tenant accounting (same shape as region pruning: a
            // streak of intervals under the sample floor evicts).
            let cold_fire = config.cold_tenant.is_some_and(|ColdTenantPolicy(p)| {
                if (interval.samples.len() as u64) < p.min_samples {
                    tenant.cold_streak += 1;
                } else {
                    tenant.cold_streak = 0;
                }
                tenant.cold_streak >= p.cold_intervals
            });

            let id = tenant.id;
            if lockstep {
                push_lockstep(
                    &engine,
                    &mut buffers,
                    &mut sim,
                    id,
                    interval,
                    config.engine.policy,
                );
            } else {
                // Freerun: the live queue applies the policy and counts.
                let _ = engine.offer_interval(id, interval);
            }

            if cold_fire {
                flush_shard(&engine, &mut buffers[id.shard(shards)], lockstep);
                engine.evict(id, EvictReason::Cold);
                tenant.producing = false;
            } else if tenant.produced >= tenant.spec.max_intervals {
                complete_tenant(tenant, &engine, &mut buffers, lockstep);
            }
        }

        // --- end-of-round flush (lockstep) -----------------------------
        if lockstep {
            for buffer in &mut buffers {
                flush_shard(&engine, buffer, true);
            }
        }

        let future_actions = max_sched_round.is_some_and(|m| m > round);
        if !produced_any && !future_actions {
            break;
        }
        round += 1;
    }

    // --- shutdown and report assembly ----------------------------------
    let finals = engine.shutdown();

    let mut tenant_reports: Vec<TenantReport> = Vec::with_capacity(tenants.len());
    for f in &finals {
        for snap in &f.tenants {
            let driver = tenants
                .iter()
                .find(|t| t.id == snap.id)
                .expect("worker reported unknown tenant");
            tenant_reports.push(TenantReport {
                id: snap.id,
                name: snap.name.clone(),
                workload: driver.spec.workload.name().to_string(),
                shard: f.shard,
                state: snap.state.clone(),
                intervals_produced: driver.produced,
                intervals_processed: snap.intervals_processed,
                intervals_ignored: snap.intervals_ignored,
                restarts: snap.restarts,
                summary: snap.summary.clone(),
                error: snap.error.clone(),
            });
        }
    }
    tenant_reports.sort_by_key(|t| t.id);

    let shard_reports: Vec<ShardReport> = finals
        .iter()
        .map(|f| {
            let (stalls, drops, high_water) = if lockstep {
                let s = sim[f.shard];
                (s.stalls, s.drops, s.high_water)
            } else {
                (f.queue.stalls, f.queue.dropped, f.queue.high_water)
            };
            ShardReport {
                shard: f.shard,
                tenants: f.tenants.len(),
                messages_processed: f.messages_processed,
                backpressure_stalls: stalls,
                dropped_intervals: drops,
                queue_high_water: high_water,
            }
        })
        .collect();

    let aggregate = FleetReport::aggregate_from(&tenant_reports, &shard_reports);
    FleetReport {
        tenants: tenant_reports,
        shards: shard_reports,
        aggregate,
        snapshots,
        wall_ms: start.elapsed().as_millis(),
    }
}

/// Lockstep push into the driver-side bounded buffer.
fn push_lockstep(
    engine: &FleetEngine,
    buffers: &mut [VecDeque<(TenantId, Interval)>],
    sim: &mut [SimCounters],
    id: TenantId,
    interval: Interval,
    policy: QueuePolicy,
) {
    let shard = id.shard(engine.shards());
    let depth = engine.config().queue_depth;
    if buffers[shard].len() >= depth {
        match policy {
            QueuePolicy::Block => {
                // The producer would wait here: one stall, then the
                // worker drains (ship + barrier).
                sim[shard].stalls += 1;
                flush_shard(engine, &mut buffers[shard], true);
            }
            QueuePolicy::DropOldest => {
                buffers[shard].pop_front();
                sim[shard].drops += 1;
            }
        }
    }
    buffers[shard].push_back((id, interval));
    sim[shard].high_water = sim[shard].high_water.max(buffers[shard].len());
}

/// Ships a shard's buffered intervals and waits for the worker to fully
/// process them (no-op outside lockstep pacing, where buffers are unused).
fn flush_shard(engine: &FleetEngine, buffer: &mut VecDeque<(TenantId, Interval)>, lockstep: bool) {
    if !lockstep || buffer.is_empty() {
        return;
    }
    let shard = buffer
        .front()
        .map(|(id, _)| id.shard(engine.shards()))
        .expect("non-empty buffer");
    while let Some((id, interval)) = buffer.pop_front() {
        let _ = engine.send_interval_blocking(id, interval);
    }
    engine.drain_shard(shard);
}

/// Marks a tenant complete, ordering the Finish after its buffered
/// intervals.
fn complete_tenant(
    tenant: &mut DriverTenant<'_>,
    engine: &FleetEngine,
    buffers: &mut [VecDeque<(TenantId, Interval)>],
    lockstep: bool,
) {
    let shard = tenant.id.shard(engine.shards());
    flush_shard(engine, &mut buffers[shard], lockstep);
    engine.finish(tenant.id);
    tenant.producing = false;
}

/// Applies one schedule action (round start; lockstep buffers empty
/// except for cold/complete flushes, which have already run).
fn apply_action(
    action: ControlAction,
    tenants: &mut [DriverTenant<'_>],
    engine: &FleetEngine,
    buffers: &mut [VecDeque<(TenantId, Interval)>],
    lockstep: bool,
    round: usize,
    snapshots: &mut Vec<FleetSnapshot>,
) {
    let shards = engine.shards();
    match action {
        ControlAction::Pause(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                flush_shard(engine, &mut buffers[id.shard(shards)], lockstep);
                engine.pause(id);
                t.paused = true;
            }
        }
        ControlAction::Resume(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                engine.resume(id);
                t.paused = false;
            }
        }
        ControlAction::Evict(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                flush_shard(engine, &mut buffers[id.shard(shards)], lockstep);
                engine.evict(id, EvictReason::Requested);
                t.producing = false;
            }
        }
        ControlAction::Restart(id) => {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == id) {
                flush_shard(engine, &mut buffers[id.shard(shards)], lockstep);
                engine.restart(id);
                t.restart();
            }
        }
        ControlAction::Snapshot => {
            if lockstep {
                for buffer in buffers.iter_mut() {
                    flush_shard(engine, buffer, true);
                }
                engine.drain_barrier();
            }
            snapshots.push(FleetSnapshot {
                round,
                shards: engine.snapshot(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantState;
    use regmon::SessionConfig;
    use regmon_workload::suite;

    fn specs(n: usize, intervals: usize) -> Vec<TenantSpec> {
        let names = suite::names();
        (0..n)
            .map(|i| {
                let name = names[i % names.len()];
                TenantSpec::new(
                    format!("{name}#{i}"),
                    suite::by_name(name).unwrap(),
                    SessionConfig::new(45_000),
                    intervals,
                )
            })
            .collect()
    }

    #[test]
    fn lockstep_counters_are_reproducible() {
        let config = FleetConfig::new(3, 4);
        let a = run_fleet(&config, &specs(9, 12), &Schedule::new());
        let b = run_fleet(&config, &specs(9, 12), &Schedule::new());
        assert_eq!(a.tenants.len(), 9);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.backpressure_stalls, y.backpressure_stalls);
            assert_eq!(x.dropped_intervals, y.dropped_intervals);
            assert_eq!(x.queue_high_water, y.queue_high_water);
            assert_eq!(x.messages_processed, y.messages_processed);
        }
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(
                format!("{:?}", x.summary),
                format!("{:?}", y.summary),
                "tenant {} summaries diverged",
                x.id
            );
        }
    }

    #[test]
    fn block_lockstep_stalls_when_round_exceeds_depth() {
        // 6 tenants on 1 shard with depth 4: every round overflows once.
        let config = FleetConfig::new(1, 4);
        let report = run_fleet(&config, &specs(6, 5), &Schedule::new());
        assert!(report.shards[0].backpressure_stalls > 0);
        assert_eq!(report.aggregate.dropped_intervals, 0);
        assert_eq!(report.aggregate.completed, 6);
        // Lossless: everything produced was processed.
        assert_eq!(
            report.aggregate.intervals_produced,
            report.aggregate.intervals_processed
        );
    }

    #[test]
    fn drop_oldest_lockstep_drops_deterministically() {
        let config = FleetConfig::new(1, 4).with_policy(QueuePolicy::DropOldest);
        let a = run_fleet(&config, &specs(6, 5), &Schedule::new());
        let b = run_fleet(&config, &specs(6, 5), &Schedule::new());
        assert!(a.shards[0].dropped_intervals > 0);
        assert_eq!(a.shards[0].dropped_intervals, b.shards[0].dropped_intervals);
        assert_eq!(a.shards[0].backpressure_stalls, 0);
        assert!(a.aggregate.intervals_processed < a.aggregate.intervals_produced);
    }

    #[test]
    fn schedule_pause_resume_completes() {
        let config = FleetConfig::new(2, 8);
        let schedule = Schedule::new()
            .at(2, ControlAction::Pause(TenantId(0)))
            .at(5, ControlAction::Resume(TenantId(0)))
            .at(3, ControlAction::Snapshot);
        let report = run_fleet(&config, &specs(4, 8), &schedule);
        assert_eq!(report.aggregate.completed, 4);
        assert_eq!(report.snapshots.len(), 1);
        assert_eq!(report.snapshots[0].round, 3);
        let t0 = report.tenant(TenantId(0)).unwrap();
        assert_eq!(t0.intervals_processed, 8, "paused tenant must finish");
    }

    #[test]
    fn cold_tenant_policy_evicts() {
        // An absurd sample floor makes every interval cold: tenants are
        // evicted after exactly `cold_intervals` intervals.
        let config = FleetConfig::new(2, 8).with_cold_tenant(ColdTenantPolicy::new(3, u64::MAX));
        let report = run_fleet(&config, &specs(4, 20), &Schedule::new());
        assert_eq!(report.aggregate.evicted, 4);
        for t in &report.tenants {
            assert_eq!(t.state, TenantState::Evicted(EvictReason::Cold));
            assert_eq!(t.intervals_produced, 3);
        }
    }
}
