//! The fleet engine: a fixed pool of shard workers behind bounded
//! queues, plus the lifecycle-command surface.
//!
//! The engine is transport + workers only; it does not run samplers.
//! Interval production (and therefore pacing and admission ordering) is
//! the [`crate::driver::FleetDriver`]'s job. Splitting the two keeps the
//! engine free of borrows into workload storage and makes every engine
//! operation available mid-run: tests and embedders can admit, pause,
//! evict, restart and snapshot tenants while intervals are in flight.

use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;

use regmon_sampling::Interval;

use crate::queue::{BoundedQueue, QueuePolicy};
use crate::shard::{run_worker, AdmitMsg, ShardFinal, ShardMsg, ShardSnapshot};
use crate::tenant::{EvictReason, TenantId, TenantSpec};

/// Engine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shard workers (and queues).
    pub shards: usize,
    /// Bounded depth of each shard queue, in messages.
    pub queue_depth: usize,
    /// Backpressure policy applied to interval traffic.
    pub policy: QueuePolicy,
}

impl EngineConfig {
    /// An engine with `shards` workers and the given queue depth,
    /// blocking on full queues.
    #[must_use]
    pub fn new(shards: usize, queue_depth: usize) -> Self {
        Self {
            shards,
            queue_depth,
            policy: QueuePolicy::Block,
        }
    }

    /// Replaces the backpressure policy.
    #[must_use]
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// A running fleet: shard workers consuming from bounded queues.
#[derive(Debug)]
pub struct FleetEngine {
    config: EngineConfig,
    queues: Vec<Arc<BoundedQueue<ShardMsg>>>,
    workers: Vec<JoinHandle<ShardFinal>>,
    next_id: u32,
}

impl FleetEngine {
    /// Spawns the shard workers.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` or `queue_depth == 0`.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.shards > 0, "fleet needs at least one shard");
        let queues: Vec<_> = (0..config.shards)
            .map(|_| Arc::new(BoundedQueue::new(config.queue_depth)))
            .collect();
        let workers = queues
            .iter()
            .enumerate()
            .map(|(shard, queue)| {
                let queue = Arc::clone(queue);
                std::thread::Builder::new()
                    .name(format!("regmon-fleet-shard-{shard}"))
                    .spawn(move || run_worker(shard, &queue))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            config,
            queues,
            workers,
            next_id: 0,
        }
    }

    /// Engine configuration.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    fn queue_of(&self, id: TenantId) -> &BoundedQueue<ShardMsg> {
        &self.queues[id.shard(self.config.shards)]
    }

    fn control(&self, id: TenantId, msg: ShardMsg) {
        // Control messages always block (never dropped); a closed queue
        // here is a bug in shutdown ordering, so it panics loudly.
        self.queue_of(id)
            .push(msg, QueuePolicy::Block)
            .expect("shard queue closed while engine alive");
    }

    /// Admits a tenant, assigning the next dense [`TenantId`]. The
    /// returned id also fixes the shard (`id % shards`).
    pub fn admit(&mut self, spec: &TenantSpec) -> TenantId {
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.control(
            id,
            ShardMsg::Admit(Box::new(AdmitMsg {
                tenant: id,
                name: spec.name.clone(),
                config: spec.config.clone(),
                binary: spec.workload.binary().clone(),
                workload_name: spec.workload.name().to_string(),
                fault: spec.fault,
                throttle_us: spec.throttle_us,
            })),
        );
        id
    }

    /// Ships one sampled interval to the tenant's shard under the
    /// engine's backpressure policy. Returns `false` when the interval
    /// was rejected because the queue is closed (shutdown race).
    pub fn offer_interval(&self, id: TenantId, interval: Interval) -> bool {
        self.queue_of(id)
            .push(ShardMsg::Interval(id, interval), self.config.policy)
            .is_ok()
    }

    /// Ships one interval with blocking semantics regardless of the
    /// engine policy. Lockstep pacing uses this: the driver has already
    /// applied the drop policy deterministically in its local buffer, so
    /// the physical transfer must be lossless.
    pub(crate) fn send_interval_blocking(&self, id: TenantId, interval: Interval) -> bool {
        self.queue_of(id)
            .push(ShardMsg::Interval(id, interval), QueuePolicy::Block)
            .is_ok()
    }

    /// Pauses a tenant (its shard ignores further intervals until
    /// [`FleetEngine::resume`]).
    pub fn pause(&self, id: TenantId) {
        self.control(id, ShardMsg::Pause(id));
    }

    /// Resumes a paused tenant.
    pub fn resume(&self, id: TenantId) {
        self.control(id, ShardMsg::Resume(id));
    }

    /// Evicts a tenant; its session is retired and its summary frozen.
    pub fn evict(&self, id: TenantId, reason: EvictReason) {
        self.control(id, ShardMsg::Evict(id, reason));
    }

    /// Restarts a tenant with a fresh session (restart counter bumps,
    /// processed-interval counter resets).
    pub fn restart(&self, id: TenantId) {
        self.control(id, ShardMsg::Restart(id));
    }

    /// Marks a tenant's production as complete.
    pub fn finish(&self, id: TenantId) {
        self.control(id, ShardMsg::Finish(id));
    }

    /// Takes a consistent per-shard snapshot of every tenant, mid-run.
    /// Each shard snapshots atomically with respect to its own queue
    /// order (the snapshot request is itself a queued message).
    #[must_use]
    pub fn snapshot(&self) -> Vec<ShardSnapshot> {
        let mut pending = Vec::with_capacity(self.queues.len());
        for queue in &self.queues {
            let (tx, rx) = sync_channel(1);
            queue
                .push(ShardMsg::Snapshot(tx), QueuePolicy::Block)
                .expect("shard queue closed while engine alive");
            pending.push(rx);
        }
        pending
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker gone"))
            .collect()
    }

    /// Waits until every message queued so far on every shard has been
    /// fully processed (a barrier across the fleet).
    pub fn drain_barrier(&self) {
        let mut pending = Vec::with_capacity(self.queues.len());
        for queue in &self.queues {
            let (tx, rx) = sync_channel(1);
            queue
                .push(ShardMsg::Barrier(tx), QueuePolicy::Block)
                .expect("shard queue closed while engine alive");
            pending.push(rx);
        }
        for rx in pending {
            rx.recv().expect("shard worker gone");
        }
    }

    /// Waits for a single shard to fully process everything queued to it.
    pub(crate) fn drain_shard(&self, shard: usize) {
        let (tx, rx) = sync_channel(1);
        self.queues[shard]
            .push(ShardMsg::Barrier(tx), QueuePolicy::Block)
            .expect("shard queue closed while engine alive");
        rx.recv().expect("shard worker gone");
    }

    /// Closes every queue, joins every worker and returns their final
    /// reports in shard order.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker itself panicked — which the quarantine
    /// design rules out for tenant pipeline failures; a worker panic is
    /// an engine bug.
    #[must_use]
    pub fn shutdown(self) -> Vec<ShardFinal> {
        for queue in &self.queues {
            queue.close();
        }
        self.workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked (engine bug)"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantState;
    use regmon::SessionConfig;
    use regmon_sampling::Sampler;
    use regmon_workload::suite;

    fn spec(max_intervals: usize) -> TenantSpec {
        let w = suite::by_name("172.mgrid").unwrap();
        TenantSpec::new("mgrid", w, SessionConfig::new(45_000), max_intervals)
    }

    #[test]
    fn admit_process_shutdown_roundtrip() {
        let mut engine = FleetEngine::new(EngineConfig::new(2, 8));
        let spec = spec(10);
        let a = engine.admit(&spec);
        let b = engine.admit(&spec);
        assert_eq!(a.shard(2), 0);
        assert_eq!(b.shard(2), 1);
        for interval in Sampler::new(&spec.workload, spec.config.sampling).take(10) {
            assert!(engine.offer_interval(a, interval.clone()));
            assert!(engine.offer_interval(b, interval));
        }
        engine.finish(a);
        engine.finish(b);
        let finals = engine.shutdown();
        assert_eq!(finals.len(), 2);
        let all: Vec<_> = finals.iter().flat_map(|f| &f.tenants).collect();
        assert_eq!(all.len(), 2);
        for t in all {
            assert_eq!(t.state, TenantState::Completed);
            assert_eq!(t.intervals_processed, 10);
            assert_eq!(t.summary.as_ref().unwrap().intervals, 10);
        }
    }

    #[test]
    fn snapshot_observes_mid_run_state() {
        let mut engine = FleetEngine::new(EngineConfig::new(1, 16));
        let spec = spec(6);
        let id = engine.admit(&spec);
        let intervals: Vec<_> = Sampler::new(&spec.workload, spec.config.sampling)
            .take(6)
            .collect();
        for interval in &intervals[..3] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        engine.drain_barrier();
        let snap = engine.snapshot();
        assert_eq!(snap[0].tenants[0].intervals_processed, 3);
        for interval in &intervals[3..] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        let finals = engine.shutdown();
        assert_eq!(finals[0].tenants[0].intervals_processed, 6);
    }

    #[test]
    fn pause_and_resume_gate_processing() {
        let mut engine = FleetEngine::new(EngineConfig::new(1, 16));
        let spec = spec(4);
        let id = engine.admit(&spec);
        let intervals: Vec<_> = Sampler::new(&spec.workload, spec.config.sampling)
            .take(4)
            .collect();
        engine.pause(id);
        assert!(engine.offer_interval(id, intervals[0].clone()));
        engine.resume(id);
        for interval in &intervals[1..] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        let finals = engine.shutdown();
        let t = &finals[0].tenants[0];
        assert_eq!(t.intervals_processed, 3, "paused interval must be ignored");
        assert_eq!(t.intervals_ignored, 1);
    }
}
