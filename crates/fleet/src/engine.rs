//! The fleet engine: a fixed pool of shard workers behind bounded
//! ring queues, plus the lifecycle-command surface.
//!
//! The engine is transport + workers only; it does not run samplers.
//! Interval production (and therefore pacing, batching and admission
//! ordering) is the [`crate::driver`]'s job. Splitting the two keeps the
//! engine free of borrows into workload storage and makes every engine
//! operation available mid-run: tests and embedders can admit, pause,
//! evict, restart and snapshot tenants while intervals are in flight.
//!
//! # Routing and leases
//!
//! With stealing disabled (the default), a tenant's messages go to its
//! home shard (`id % shards`) forever — the exact pinned-shard schedule
//! of the original engine. With [`EngineConfig::steal`] enabled, routing
//! consults the shared [`LeaseTable`] and every tenant-addressed push
//! re-validates the lease *inside the queue's push gate*
//! ([`crate::RingQueue::push_checked`]): the same lock under which a
//! thief flips the lease. A stale push comes back untouched and is
//! retried against the new owner, so no message can land behind a
//! `Release` on the old shard and per-tenant FIFO order is preserved
//! across migrations.
//!
//! [`LeaseTable`]: crate::shard::LeaseTable

use std::sync::atomic::Ordering;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;

use regmon_sampling::Interval;

use crate::queue::{PushError, QueuePolicy, RingQueue};
use crate::shard::{
    run_worker, AdmitMsg, LeaseTable, MigrationGate, ShardFinal, ShardMsg, ShardSnapshot,
    WorkerShared,
};
use crate::tenant::{EvictReason, TenantId, TenantSpec};

/// Engine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shard workers (and queues).
    pub shards: usize,
    /// Bounded depth of each shard queue, in messages.
    pub queue_depth: usize,
    /// Backpressure policy applied to interval traffic.
    pub policy: QueuePolicy,
    /// Maximum intervals coalesced into one queue message (1 = the
    /// per-interval path).
    pub batch: usize,
    /// Whether tenant leases may move between shards (work stealing in
    /// freerun pacing; deterministic driver rebalancing in lockstep).
    pub steal: bool,
    /// Whether shard workers pin themselves to CPUs (best-effort
    /// `sched_setaffinity` on Linux, silently unpinned elsewhere).
    /// Placement never affects results — outputs are byte-identical
    /// with pinning on or off.
    pub pin: bool,
}

impl EngineConfig {
    /// An engine with `shards` workers and the given queue depth,
    /// blocking on full queues, per-interval shipping, no stealing.
    #[must_use]
    pub fn new(shards: usize, queue_depth: usize) -> Self {
        Self {
            shards,
            queue_depth,
            policy: QueuePolicy::Block,
            batch: 1,
            steal: false,
            pin: false,
        }
    }

    /// Replaces the backpressure policy.
    #[must_use]
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the interval batching factor (clamped to at least 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Enables or disables tenant-lease stealing.
    #[must_use]
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Enables or disables best-effort worker CPU pinning.
    #[must_use]
    pub fn with_pin(mut self, pin: bool) -> Self {
        self.pin = pin;
        self
    }
}

/// A running fleet: shard workers consuming from bounded ring queues.
#[derive(Debug)]
pub struct FleetEngine {
    config: EngineConfig,
    shared: Arc<WorkerShared>,
    workers: Vec<JoinHandle<ShardFinal>>,
    next_id: u32,
}

impl FleetEngine {
    /// Spawns the shard workers. Worker-initiated stealing follows
    /// [`EngineConfig::steal`]; the lockstep driver uses
    /// [`FleetEngine::with_worker_steal`] to keep leases mobile while
    /// rebalancing deterministically itself.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` or `queue_depth == 0`.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self::with_worker_steal(config, config.steal)
    }

    /// As [`FleetEngine::new`], but decouples *lease mobility*
    /// (`config.steal`) from *worker-initiated* stealing: under
    /// lockstep pacing the driver migrates tenants deterministically,
    /// so workers must not race it.
    pub(crate) fn with_worker_steal(config: EngineConfig, worker_steal: bool) -> Self {
        assert!(config.shards > 0, "fleet needs at least one shard");
        let queues: Vec<_> = (0..config.shards)
            .map(|shard| Arc::new(RingQueue::new(config.queue_depth).with_label(shard as u64)))
            .collect();
        let shared = Arc::new(WorkerShared {
            queues,
            leases: LeaseTable::default(),
            gate: MigrationGate::default(),
            stop_steal: std::sync::atomic::AtomicBool::new(false),
            worker_steal: worker_steal && config.steal && config.shards > 1,
            steal_backlog: (config.queue_depth / 2).max(1),
            pin: config.pin,
            topology: crate::affinity::Topology::detect(),
            cpus: crate::affinity::available_cpus(),
        });
        let workers = (0..config.shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("regmon-fleet-shard-{shard}"))
                    .spawn(move || run_worker(shard, &shared))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            config,
            shared,
            workers,
            next_id: 0,
        }
    }

    /// Engine configuration.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The shard a tenant's messages currently route to.
    #[must_use]
    pub fn shard_of(&self, id: TenantId) -> usize {
        if self.config.steal {
            self.shared.leases.get(id)
        } else {
            id.shard(self.config.shards)
        }
    }

    /// Pushes a tenant-addressed message to the tenant's current owner,
    /// re-validating the lease inside the push gate and retrying on a
    /// stale route. Returns `false` when the queue is closed.
    fn push_routed(&self, id: TenantId, msg: ShardMsg, policy: QueuePolicy) -> bool {
        if !self.config.steal {
            return self.shared.queues[id.shard(self.config.shards)]
                .push(msg, policy)
                .is_ok();
        }
        let mut msg = msg;
        loop {
            let shard = self.shared.leases.get(id);
            let gate = || self.shared.leases.get(id) == shard;
            match self.shared.queues[shard].push_checked(msg, policy, gate) {
                Ok(()) => return true,
                Err(PushError::Stale(again)) => msg = again, // lease moved: re-route
                Err(PushError::Closed(_)) => return false,
                Err(PushError::TimedOut(_)) => unreachable!("no deadline on routed push"),
            }
        }
    }

    fn control(&self, id: TenantId, msg: ShardMsg) {
        // Control messages always block (never dropped); a closed queue
        // here is a bug in shutdown ordering, so it panics loudly.
        assert!(
            self.push_routed(id, msg, QueuePolicy::Block),
            "shard queue closed while engine alive"
        );
    }

    /// Admits a tenant, assigning the next dense [`TenantId`]. The
    /// returned id also fixes the home shard (`id % shards`), where the
    /// tenant's lease starts.
    pub fn admit(&mut self, spec: &TenantSpec) -> TenantId {
        self.admit_inner(spec, None)
    }

    /// Admits a tenant whose session resumes from `snapshot` instead of
    /// starting fresh (live migration: the checkpoint travelled here
    /// over the wire). Continuing the identical interval stream from
    /// the checkpoint position yields byte-identical results to the
    /// uninterrupted session.
    pub fn admit_from_snapshot(
        &mut self,
        spec: &TenantSpec,
        snapshot: regmon::SessionSnapshot,
    ) -> TenantId {
        self.admit_inner(spec, Some(Box::new(snapshot)))
    }

    fn admit_inner(
        &mut self,
        spec: &TenantSpec,
        snapshot: Option<Box<regmon::SessionSnapshot>>,
    ) -> TenantId {
        let id = TenantId(self.next_id);
        self.next_id += 1;
        // The lease must exist before any message can route by it.
        self.shared.leases.push_home(id.shard(self.config.shards));
        self.control(
            id,
            ShardMsg::Admit(Box::new(AdmitMsg {
                tenant: id,
                name: spec.name.clone(),
                config: spec.config.clone(),
                binary: spec.workload.binary().clone(),
                workload_name: spec.workload.name().to_string(),
                fault: spec.fault,
                throttle_us: spec.throttle_us,
                snapshot,
            })),
        );
        id
    }

    /// Freezes a tenant and returns its full session snapshot (live
    /// migration hand-off). The entry is retired from its shard: it no
    /// longer appears in shard finals, and later messages for the id
    /// are ignored. Per-shard FIFO order guarantees every interval
    /// offered before this call is folded into the snapshot. Returns
    /// `None` when the tenant is unknown or its session is gone
    /// (failed / evicted).
    #[must_use]
    pub fn checkpoint(&self, id: TenantId) -> Option<regmon::SessionSnapshot> {
        let (tx, rx) = sync_channel(1);
        self.control(id, ShardMsg::Checkpoint(id, tx));
        rx.recv().expect("shard worker gone").map(|boxed| *boxed)
    }

    /// Clones a consistent session snapshot of a live tenant without
    /// retiring it (the durable-serve checkpoint path). Per-shard FIFO
    /// order guarantees every interval offered before this call is
    /// folded into the snapshot, and the tenant keeps running — the
    /// peek never perturbs session state, so checkpointed and
    /// checkpoint-free runs stay byte-identical. Returns `None` when
    /// the tenant is unknown or its session is gone.
    #[must_use]
    pub fn peek_snapshot(&self, id: TenantId) -> Option<regmon::SessionSnapshot> {
        let (tx, rx) = sync_channel(1);
        self.control(id, ShardMsg::Peek(id, tx));
        rx.recv().expect("shard worker gone").map(|boxed| *boxed)
    }

    /// Ships one sampled interval to the tenant's shard under the
    /// engine's backpressure policy. Returns `false` when the interval
    /// was rejected because the queue is closed (shutdown race).
    pub fn offer_interval(&self, id: TenantId, interval: Interval) -> bool {
        self.push_routed(id, ShardMsg::Interval(id, interval), self.config.policy)
    }

    /// Ships a coalesced batch of consecutive intervals as one queue
    /// message under the engine's backpressure policy. A batch of one is
    /// shipped as a plain interval message.
    pub fn offer_batch(&self, id: TenantId, mut intervals: Vec<Interval>) -> bool {
        match intervals.len() {
            0 => true,
            1 => self.offer_interval(id, intervals.pop().expect("len checked")),
            _ => self.push_routed(id, ShardMsg::Batch(id, intervals), self.config.policy),
        }
    }

    /// Ships a batch with blocking semantics regardless of the engine
    /// policy (lossless lockstep transfer; the driver already applied
    /// the drop policy in its simulation buffers).
    pub(crate) fn send_batch_blocking(&self, id: TenantId, mut intervals: Vec<Interval>) -> bool {
        match intervals.len() {
            0 => true,
            1 => self.push_routed(
                id,
                ShardMsg::Interval(id, intervals.pop().expect("len checked")),
                QueuePolicy::Block,
            ),
            _ => self.push_routed(id, ShardMsg::Batch(id, intervals), QueuePolicy::Block),
        }
    }

    /// Pauses a tenant (its shard ignores further intervals until
    /// [`FleetEngine::resume`]).
    pub fn pause(&self, id: TenantId) {
        self.control(id, ShardMsg::Pause(id));
    }

    /// Resumes a paused tenant.
    pub fn resume(&self, id: TenantId) {
        self.control(id, ShardMsg::Resume(id));
    }

    /// Evicts a tenant; its session is retired and its summary frozen.
    pub fn evict(&self, id: TenantId, reason: EvictReason) {
        self.control(id, ShardMsg::Evict(id, reason));
    }

    /// Restarts a tenant with a fresh session (restart counter bumps,
    /// processed-interval counter resets).
    pub fn restart(&self, id: TenantId) {
        self.control(id, ShardMsg::Restart(id));
    }

    /// Marks a tenant's production as complete.
    pub fn finish(&self, id: TenantId) {
        self.control(id, ShardMsg::Finish(id));
    }

    /// Deterministically migrates a tenant to `to` (lockstep rebalance).
    /// The driver is the sole lease flipper under lockstep pacing, and
    /// the paired barrier drains make the hand-off complete before the
    /// next round ships: `Release` is FIFO-ordered after everything
    /// already queued for the tenant on the old shard, and `AdoptHandle`
    /// before everything that will be queued on the new one.
    pub(crate) fn migrate(&self, id: TenantId, to: usize) {
        let from = self.shared.leases.get(id);
        if from == to {
            return;
        }
        let (tx, rx) = sync_channel(1);
        self.shared.queues[from]
            .push(ShardMsg::Release(id, tx), QueuePolicy::Block)
            .expect("shard queue closed while engine alive");
        self.shared.queues[to]
            .push(ShardMsg::AdoptHandle(id, rx), QueuePolicy::Block)
            .expect("shard queue closed while engine alive");
        self.shared.leases.set(id, to);
        if regmon_telemetry::enabled() {
            regmon_telemetry::metrics::FLEET_MIGRATIONS.inc();
            regmon_telemetry::journal::record(regmon_telemetry::journal::EventKind::Migration {
                tenant: u64::from(id.0),
                from_shard: from as u64,
                to_shard: to as u64,
            });
        }
        self.drain_shard(from);
        self.drain_shard(to);
    }

    /// Takes a consistent per-shard snapshot of every tenant, mid-run.
    /// Each shard snapshots atomically with respect to its own queue
    /// order (the snapshot request is itself a queued message).
    #[must_use]
    pub fn snapshot(&self) -> Vec<ShardSnapshot> {
        let mut pending = Vec::with_capacity(self.shared.queues.len());
        for queue in &self.shared.queues {
            let (tx, rx) = sync_channel(1);
            queue
                .push(ShardMsg::Snapshot(tx), QueuePolicy::Block)
                .expect("shard queue closed while engine alive");
            pending.push(rx);
        }
        pending
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker gone"))
            .collect()
    }

    /// Waits until every message queued so far on every shard has been
    /// fully processed (a barrier across the fleet).
    pub fn drain_barrier(&self) {
        let mut pending = Vec::with_capacity(self.shared.queues.len());
        for queue in &self.shared.queues {
            let (tx, rx) = sync_channel(1);
            queue
                .push(ShardMsg::Barrier(tx), QueuePolicy::Block)
                .expect("shard queue closed while engine alive");
            pending.push(rx);
        }
        for rx in pending {
            rx.recv().expect("shard worker gone");
        }
    }

    /// [`FleetEngine::drain_barrier`] with a wall-clock bound: waits at
    /// most `deadline` (total, across all shards) for the barrier to
    /// clear. Returns `true` when every shard acknowledged in time and
    /// `false` on timeout — the barrier messages stay queued, so a
    /// later unbounded drain or shutdown still observes them, but the
    /// caller regains control instead of hanging behind a stuck shard.
    #[must_use]
    pub fn drain_barrier_timeout(&self, deadline: std::time::Duration) -> bool {
        let start = std::time::Instant::now();
        let mut pending = Vec::with_capacity(self.shared.queues.len());
        for queue in &self.shared.queues {
            let (tx, rx) = sync_channel(1);
            queue
                .push(ShardMsg::Barrier(tx), QueuePolicy::Block)
                .expect("shard queue closed while engine alive");
            pending.push(rx);
        }
        for rx in pending {
            let remaining = deadline.saturating_sub(start.elapsed());
            if rx.recv_timeout(remaining).is_err() {
                return false;
            }
        }
        true
    }

    /// Parks shard `shard`'s worker deterministically: the returned
    /// guard holds the worker inside a queued `Hold` message until it
    /// is dropped (or [`ShardHold::release`]d). While held, nothing is
    /// popped from the shard's queue, so a producer *provably* outruns
    /// it — backpressure tests can force stalls and drops without
    /// wall-clock races. This call returns only after the worker has
    /// acknowledged the hold, i.e. everything queued before it has been
    /// fully processed (a barrier) and the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics when the shard queue is closed (engine shut down).
    #[must_use]
    pub fn hold_shard(&self, shard: usize) -> ShardHold {
        let (ack_tx, ack_rx) = sync_channel(1);
        let (gate_tx, gate_rx) = sync_channel::<()>(1);
        self.shared.queues[shard]
            .push(ShardMsg::Hold(ack_tx, gate_rx), QueuePolicy::Block)
            .expect("shard queue closed while engine alive");
        ack_rx.recv().expect("shard worker gone");
        ShardHold { _gate: gate_tx }
    }

    /// Waits for a single shard to fully process everything queued to it.
    pub(crate) fn drain_shard(&self, shard: usize) {
        let (tx, rx) = sync_channel(1);
        self.shared.queues[shard]
            .push(ShardMsg::Barrier(tx), QueuePolicy::Block)
            .expect("shard queue closed while engine alive");
        rx.recv().expect("shard worker gone");
    }

    /// Closes every queue, joins every worker and returns their final
    /// reports in shard order. With stealing enabled, first stops new
    /// steals and waits for in-flight migrations to land so no tenant
    /// entry is stranded.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker itself panicked — which the quarantine
    /// design rules out for tenant pipeline failures; a worker panic is
    /// an engine bug.
    #[must_use]
    pub fn shutdown(self) -> Vec<ShardFinal> {
        if self.config.steal {
            self.shared.stop_steal.store(true, Ordering::Relaxed);
            self.shared.gate.wait_idle();
        }
        for queue in &self.shared.queues {
            queue.close();
        }
        self.workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked (engine bug)"))
            .collect()
    }
}

/// A deterministic worker park issued by [`FleetEngine::hold_shard`].
/// Dropping it releases the worker.
#[derive(Debug)]
pub struct ShardHold {
    _gate: std::sync::mpsc::SyncSender<()>,
}

impl ShardHold {
    /// Releases the held worker (equivalent to dropping the guard).
    pub fn release(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantState;
    use regmon::SessionConfig;
    use regmon_sampling::Sampler;
    use regmon_workload::suite;

    fn spec(max_intervals: usize) -> TenantSpec {
        let w = suite::by_name("172.mgrid").unwrap();
        TenantSpec::new("mgrid", w, SessionConfig::new(45_000), max_intervals)
    }

    #[test]
    fn admit_process_shutdown_roundtrip() {
        let mut engine = FleetEngine::new(EngineConfig::new(2, 8));
        let spec = spec(10);
        let a = engine.admit(&spec);
        let b = engine.admit(&spec);
        assert_eq!(a.shard(2), 0);
        assert_eq!(b.shard(2), 1);
        for interval in Sampler::new(&spec.workload, spec.config.sampling).take(10) {
            assert!(engine.offer_interval(a, interval.clone()));
            assert!(engine.offer_interval(b, interval));
        }
        engine.finish(a);
        engine.finish(b);
        let finals = engine.shutdown();
        assert_eq!(finals.len(), 2);
        let all: Vec<_> = finals.iter().flat_map(|f| &f.tenants).collect();
        assert_eq!(all.len(), 2);
        for t in all {
            assert_eq!(t.state, TenantState::Completed);
            assert_eq!(t.intervals_processed, 10);
            assert_eq!(t.summary.as_ref().unwrap().intervals, 10);
        }
    }

    #[test]
    fn snapshot_observes_mid_run_state() {
        let mut engine = FleetEngine::new(EngineConfig::new(1, 16));
        let spec = spec(6);
        let id = engine.admit(&spec);
        let intervals: Vec<_> = Sampler::new(&spec.workload, spec.config.sampling)
            .take(6)
            .collect();
        for interval in &intervals[..3] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        engine.drain_barrier();
        let snap = engine.snapshot();
        assert_eq!(snap[0].tenants[0].intervals_processed, 3);
        for interval in &intervals[3..] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        let finals = engine.shutdown();
        assert_eq!(finals[0].tenants[0].intervals_processed, 6);
    }

    #[test]
    fn pause_and_resume_gate_processing() {
        let mut engine = FleetEngine::new(EngineConfig::new(1, 16));
        let spec = spec(4);
        let id = engine.admit(&spec);
        let intervals: Vec<_> = Sampler::new(&spec.workload, spec.config.sampling)
            .take(4)
            .collect();
        engine.pause(id);
        assert!(engine.offer_interval(id, intervals[0].clone()));
        engine.resume(id);
        for interval in &intervals[1..] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        let finals = engine.shutdown();
        let t = &finals[0].tenants[0];
        assert_eq!(t.intervals_processed, 3, "paused interval must be ignored");
        assert_eq!(t.intervals_ignored, 1);
    }

    #[test]
    fn batch_message_equals_per_interval_messages() {
        let spec = spec(12);
        let intervals: Vec<_> = Sampler::new(&spec.workload, spec.config.sampling)
            .take(12)
            .collect();

        let mut per = FleetEngine::new(EngineConfig::new(1, 16));
        let a = per.admit(&spec);
        for interval in &intervals {
            assert!(per.offer_interval(a, interval.clone()));
        }
        per.finish(a);
        let per = per.shutdown();

        let mut batched = FleetEngine::new(EngineConfig::new(1, 16).with_batch(4));
        let b = batched.admit(&spec);
        for chunk in intervals.chunks(4) {
            assert!(batched.offer_batch(b, chunk.to_vec()));
        }
        batched.finish(b);
        let batched = batched.shutdown();

        let (pt, bt) = (&per[0].tenants[0], &batched[0].tenants[0]);
        assert_eq!(pt.intervals_processed, bt.intervals_processed);
        assert_eq!(
            format!("{:?}", pt.summary),
            format!("{:?}", bt.summary),
            "batched summary must be byte-identical"
        );
        // 12 intervals in 3 batch messages + admit + finish.
        assert_eq!(batched[0].messages_processed, 5);
        assert_eq!(per[0].messages_processed, 14);
    }

    #[test]
    fn explicit_migration_moves_tenant_between_shards() {
        let spec = spec(8);
        let intervals: Vec<_> = Sampler::new(&spec.workload, spec.config.sampling)
            .take(8)
            .collect();
        // Leases mobile, but driver-orchestrated only (no worker races).
        let mut engine =
            FleetEngine::with_worker_steal(EngineConfig::new(2, 8).with_steal(true), false);
        let id = engine.admit(&spec);
        assert_eq!(engine.shard_of(id), 0);
        for interval in &intervals[..4] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        engine.migrate(id, 1);
        assert_eq!(engine.shard_of(id), 1);
        for interval in &intervals[4..] {
            assert!(engine.offer_interval(id, interval.clone()));
        }
        engine.finish(id);
        let finals = engine.shutdown();
        assert!(finals[0].tenants.is_empty(), "entry left the old shard");
        let t = &finals[1].tenants[0];
        assert_eq!(t.intervals_processed, 8, "no interval lost in migration");
        assert_eq!(t.state, TenantState::Completed);
        assert_eq!(finals[1].tenants_stolen, 1);
        // The migrated summary equals an unmigrated single-shard run.
        let mut pinned = FleetEngine::new(EngineConfig::new(1, 8));
        let p = pinned.admit(&spec);
        for interval in &intervals {
            assert!(pinned.offer_interval(p, interval.clone()));
        }
        pinned.finish(p);
        let pinned = pinned.shutdown();
        assert_eq!(
            format!("{:?}", t.summary),
            format!("{:?}", pinned[0].tenants[0].summary)
        );
    }
}
