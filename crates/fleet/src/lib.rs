//! # regmon-fleet — sharded multi-tenant monitoring-session engine
//!
//! The paper's scalability argument (§3.2.3, §5) is that region
//! monitoring is cheap because it runs *off the critical path*, in a
//! separate thread. `regmon::threaded` realizes that for one process;
//! this crate scales the same producer → bounded queue → monitor-worker
//! split to a **fleet**: hundreds of concurrent [`MonitoringSession`]s
//! (one per simulated tenant/process) multiplexed onto a fixed pool of
//! shard workers.
//!
//! - **Sharding** — a tenant with id `i` is owned by shard
//!   `i % shards`; each shard worker single-threadedly owns its
//!   tenants' sessions, so sessions need no locks and the fleet scales
//!   by adding shards.
//! - **Backpressure** — per-shard bounded queues with
//!   [`QueuePolicy::Block`] (lossless, counts producer stalls) or
//!   [`QueuePolicy::DropOldest`] (lossy, counts drops), plus
//!   queue-depth high-water marks.
//! - **Lifecycle** — admit, pause/resume, evict (including cold-tenant
//!   pruning that reuses the session pruning policy shape), restart,
//!   and panic **quarantine**: a tenant whose pipeline panics is
//!   isolated and reported; its shard and every other tenant continue.
//! - **Fleet metrics** — per-tenant and rolled-up GPD/LPD phase-change
//!   counts, stable-time fractions and UCR medians, snapshotable
//!   mid-run.
//! - **Determinism** — under [`Pacing::Lockstep`] and `Block`, every
//!   tenant's summary is byte-identical to a standalone
//!   [`MonitoringSession::run_limited`] run for *any* shard count, and
//!   all backpressure counters are pure functions of the configuration.
//!
//! ## Quickstart
//!
//! ```
//! use regmon::SessionConfig;
//! use regmon_fleet::{run_fleet, FleetConfig, Schedule, TenantSpec};
//! use regmon_workload::suite;
//!
//! let specs: Vec<TenantSpec> = suite::names()
//!     .into_iter()
//!     .take(4)
//!     .map(|name| {
//!         TenantSpec::new(
//!             name,
//!             suite::by_name(name).unwrap(),
//!             SessionConfig::new(45_000),
//!             10,
//!         )
//!     })
//!     .collect();
//! let report = run_fleet(&FleetConfig::new(2, 8), &specs, &Schedule::new());
//! assert_eq!(report.aggregate.completed, 4);
//! println!(
//!     "fleet: {} tenants, {} GPD phase changes, {} stalls",
//!     report.aggregate.tenants,
//!     report.aggregate.gpd_phase_changes,
//!     report.aggregate.backpressure_stalls,
//! );
//! ```
//!
//! [`MonitoringSession`]: regmon::MonitoringSession
//! [`MonitoringSession::run_limited`]: regmon::MonitoringSession::run_limited

// `deny` rather than `forbid`: `affinity::linux` carries the scoped
// `allow(unsafe_code)` in this crate, for the raw `sched_setaffinity`
// declarations (best-effort worker pinning, no external crate).
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod affinity;
mod cpdfeed;
mod driver;
mod engine;
mod queue;
mod report;
mod shard;
mod tenant;

pub use affinity::{available_cpus, pinning_supported};
pub use cpdfeed::{CpdFeed, CpdReport};
pub use driver::{run_fleet, ControlAction, FleetConfig, Pacing, Schedule};
pub use engine::{EngineConfig, FleetEngine, ShardHold};
pub use queue::{
    batch_bucket_label, BoundedQueue, Closed, Droppable, Popped, PushError, QueuePolicy,
    QueueStats, RingQueue, BATCH_BUCKETS,
};
pub use report::{FleetAggregate, FleetReport, FleetSnapshot, ShardReport, TenantReport};
pub use shard::{ShardFinal, ShardSnapshot, TenantSnapshot};
pub use tenant::{ColdTenantPolicy, EvictReason, FaultPlan, TenantId, TenantSpec, TenantState};

use regmon::{SessionConfig, SessionSummary};
use regmon_workload::Workload;

/// Statistics of a single-tenant fleet run — the generalized form of
/// [`regmon::threaded::ThreadedRun`].
#[derive(Debug, Clone)]
pub struct SingleRun {
    /// The analysis results (identical to a single-threaded run).
    pub summary: SessionSummary,
    /// Producer stall episodes (full queue under `Block`).
    pub backpressure_stalls: usize,
}

/// Runs one workload as a fleet of one (one tenant, one shard): the
/// degenerate case that `regmon::threaded::run_threaded` implements
/// directly with a `sync_channel`. Exists so the equivalence tests can
/// pin all three paths — single-threaded, threaded, fleet — to the same
/// results.
///
/// # Panics
///
/// Panics if `queue_depth == 0`.
#[must_use]
pub fn run_single(
    workload: &Workload,
    config: &SessionConfig,
    max_intervals: usize,
    queue_depth: usize,
) -> SingleRun {
    let spec = TenantSpec::new(
        workload.name(),
        workload.clone(),
        config.clone(),
        max_intervals,
    );
    let fleet = FleetConfig::new(1, queue_depth);
    let report = run_fleet(&fleet, std::slice::from_ref(&spec), &Schedule::new());
    let tenant = report
        .tenants
        .into_iter()
        .next()
        .expect("single-tenant fleet has one tenant");
    SingleRun {
        summary: tenant.summary.expect("single tenant cannot fail"),
        backpressure_stalls: report.shards[0].backpressure_stalls,
    }
}
