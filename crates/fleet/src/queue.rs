//! Bounded ring-buffer queue with backpressure accounting and a
//! lock-light fast path.
//!
//! The fleet engine ships every shard's traffic — interval batches *and*
//! lifecycle control messages — through one bounded FIFO per shard. A
//! plain `std::sync::mpsc::sync_channel` cannot express the
//! `DropOldest` policy (no access to the queue head), so this is a
//! fixed-capacity **ring queue**: storage is one `Box<[Option<T>]>`
//! allocated up front and addressed `(head + i) % capacity`, so neither
//! push nor pop ever allocates or moves other entries (the classic
//! sequence-counted MPMC ring layout, degenerated to a mutex-protected
//! ring because this crate is `#![forbid(unsafe_code)]`).
//!
//! **Uncontended fast path.** The expensive part of a `Mutex + Condvar`
//! queue is not the lock — an uncontended lock is one atomic — but the
//! unconditional `notify_one` after every push: each notify is a
//! potential `futex(FUTEX_WAKE)` syscall, and a fleet driver pushing
//! thousands of intervals per second pays it even when every consumer is
//! busy draining. This queue therefore keeps **waiter registries inside
//! the mutex**: a consumer increments `consumer_waiters` under the lock
//! before parking on the condvar, and a producer only notifies when that
//! count is nonzero (symmetrically for `producer_waiters` / `not_full`).
//! A push into a queue whose consumer is running is lock, slot write,
//! unlock — zero syscalls, zero allocations. [`QueueStats::notifies`]
//! counts the wakeups actually issued so tests can pin this down.
//!
//! Two backpressure policies:
//!
//! - [`QueuePolicy::Block`]: a full queue makes the producer wait, and
//!   each wait episode is counted as one **stall** — the paper's measure
//!   of how often monitoring would have intruded on the critical path
//!   with this buffer depth (§3.2.3).
//! - [`QueuePolicy::DropOldest`]: a full queue evicts the oldest
//!   *droppable* entry (interval payloads are droppable, control
//!   messages never are) and counts its [`Droppable::units`] as
//!   **drops**. The producer never waits; monitoring degrades instead of
//!   the mutator. A ring full of non-droppable control messages blocks
//!   instead — lifecycle commands are never sacrificed.

use regmon_stats::histogram::log2_bucket;
use regmon_telemetry::{journal, metrics};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What to do when a shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Producer waits for space (lossless; counts stalls).
    Block,
    /// Oldest droppable entry is evicted (lossy; counts drops).
    DropOldest,
}

/// Accepted spellings for [`QueuePolicy::parse`].
const POLICY_SPELLINGS: &str = "block | drop-oldest | drop_oldest | dropoldest | drop";

impl QueuePolicy {
    /// Parses a policy name. Accepted spellings: `block`,
    /// `drop-oldest`, `drop_oldest`, `dropoldest` and the short alias
    /// `drop`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the rejected input and listing every
    /// accepted spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(Self::Block),
            "drop-oldest" | "drop_oldest" | "dropoldest" | "drop" => Ok(Self::DropOldest),
            other => Err(format!(
                "unknown queue policy {other:?} (accepted: {POLICY_SPELLINGS})"
            )),
        }
    }
}

/// Entries that may be sacrificed under [`QueuePolicy::DropOldest`].
pub trait Droppable {
    /// `true` when the entry may be dropped (interval payloads);
    /// `false` for entries that must survive (control messages).
    fn droppable(&self) -> bool;

    /// How many logical payload units the entry carries: `Some(n)` for
    /// droppable payloads (an interval batch of `n` intervals),
    /// `None` for control messages. Evicting the entry counts `n`
    /// drops, and pushing it records `n` in the batch-size histogram.
    fn units(&self) -> Option<usize> {
        if self.droppable() {
            Some(1)
        } else {
            None
        }
    }
}

/// Buckets of the batch-size histogram in [`QueueStats`]: bucket `i`
/// counts payload messages carrying `2^i ..= 2^(i+1) - 1` units (the
/// last bucket is open-ended).
pub const BATCH_BUCKETS: usize = 8;

/// Human-readable label of batch-size bucket `i` (`"1"`, `"2-3"`, …,
/// `"128+"`).
#[must_use]
pub fn batch_bucket_label(i: usize) -> String {
    let lo = 1usize << i;
    if i + 1 >= BATCH_BUCKETS {
        format!("{lo}+")
    } else if lo == (1 << (i + 1)) - 1 {
        format!("{lo}")
    } else {
        format!("{lo}-{}", (1 << (i + 1)) - 1)
    }
}

/// Backpressure counters of one queue, all monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Entries accepted.
    pub pushed: usize,
    /// Entries handed to the consumer.
    pub popped: usize,
    /// Wait episodes of a blocked producer ([`QueuePolicy::Block`]).
    pub stalls: usize,
    /// Evicted payload units ([`QueuePolicy::DropOldest`]); an evicted
    /// batch of `n` intervals counts `n`.
    pub dropped: usize,
    /// Maximum occupancy ever observed (after a push).
    pub high_water: usize,
    /// Condvar wakeups actually issued by producers and consumers. The
    /// uncontended-path contract is `notifies == 0` while the peer never
    /// parks; this is what the wakeup-herding regression test pins.
    pub notifies: usize,
    /// Histogram of payload-message sizes in units (log2 buckets, see
    /// [`BATCH_BUCKETS`]). Control messages are not counted.
    pub batch_sizes: [usize; BATCH_BUCKETS],
}

impl QueueStats {
    fn record_batch(&mut self, units: usize) {
        let bucket = log2_bucket(units as u64, BATCH_BUCKETS);
        self.batch_sizes[bucket] = self.batch_sizes[bucket].saturating_add(1);
    }

    /// Total payload messages recorded in the batch-size histogram.
    #[must_use]
    pub fn payload_messages(&self) -> usize {
        self.batch_sizes.iter().sum()
    }
}

/// Fixed-capacity ring storage: `slots[(head + i) % capacity]` is the
/// `i`-th oldest entry. Entries never move on push/pop; only the rare
/// mid-ring eviction (DropOldest skipping control messages) shifts the
/// head-side entries by one.
#[derive(Debug)]
struct RingBuf<T> {
    slots: Box<[Option<T>]>,
    head: usize,
    len: usize,
}

impl<T> RingBuf<T> {
    fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    fn idx(&self, i: usize) -> usize {
        (self.head + i) % self.slots.len()
    }

    fn push_back(&mut self, item: T) {
        debug_assert!(self.len < self.slots.len(), "ring overfull");
        let at = self.idx(self.len);
        debug_assert!(self.slots[at].is_none(), "ring slot clobbered");
        self.slots[at] = Some(item);
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some(), "ring slot lost");
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        item
    }
}

impl<T: Droppable> RingBuf<T> {
    /// Index (in age order) of the oldest droppable entry, if any.
    fn oldest_droppable(&self) -> Option<usize> {
        (0..self.len).find(|&i| {
            self.slots[self.idx(i)]
                .as_ref()
                .is_some_and(Droppable::droppable)
        })
    }

    /// Removes the entry at age-index `i`, shifting the (younger-than-
    /// head, older-than-`i`) entries toward the hole and advancing
    /// `head` — exactly `VecDeque::remove` semantics on a fixed ring.
    fn remove_at(&mut self, i: usize) -> T {
        debug_assert!(i < self.len);
        let item = self.slots[self.idx(i)].take().expect("ring slot lost");
        for j in (1..=i).rev() {
            self.slots[self.idx(j)] = self.slots[self.idx(j - 1)].take();
        }
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        item
    }
}

#[derive(Debug)]
struct Inner<T> {
    ring: RingBuf<T>,
    closed: bool,
    /// Consumers currently parked on `not_empty` (registered under the
    /// lock *before* waiting, so a producer's check cannot race it).
    consumer_waiters: usize,
    /// Producers currently parked on `not_full`.
    producer_waiters: usize,
    stats: QueueStats,
}

/// Error returned when pushing into a closed queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

/// Why a checked push did not enqueue; the rejected item is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was closed.
    Closed(T),
    /// The routing gate returned `false` (e.g. the tenant's lease moved
    /// to another shard between route lookup and enqueue).
    Stale(T),
    /// The deadline of [`RingQueue::push_checked_timeout`] passed while
    /// the queue stayed full.
    TimedOut(T),
}

/// Outcome of a timed pop.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An entry was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still empty (and open).
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

/// A bounded ring FIFO connecting the fleet driver to one shard worker.
#[derive(Debug)]
pub struct RingQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    /// Shard id stamped on telemetry events emitted by this queue.
    label: u64,
}

/// Backwards-compatible name: PR 1 shipped this queue as `BoundedQueue`
/// (then a `Mutex<VecDeque>`); the ring rebuild keeps the old name as an
/// alias so embedders and tests are unaffected.
pub type BoundedQueue<T> = RingQueue<T>;

impl<T: Droppable> RingQueue<T> {
    /// A queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue depth must be positive");
        Self {
            inner: Mutex::new(Inner {
                ring: RingBuf::new(capacity),
                closed: false,
                consumer_waiters: 0,
                producer_waiters: 0,
                stats: QueueStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            label: 0,
        }
    }

    /// Stamp telemetry events from this queue with `label` (the owning
    /// shard's id). Builder-style so construction sites stay one
    /// expression.
    #[must_use]
    pub fn with_label(mut self, label: u64) -> Self {
        self.label = label;
        self
    }

    /// Enqueues `item` under `policy`.
    ///
    /// Control messages (non-droppable items) always use blocking
    /// semantics regardless of `policy`, so lifecycle commands are never
    /// lost.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] when the queue has been closed.
    pub fn push(&self, item: T, policy: QueuePolicy) -> Result<(), Closed> {
        match self.push_checked_deadline(item, policy, || true, None) {
            Ok(()) => Ok(()),
            Err(PushError::Closed(_)) => Err(Closed),
            Err(PushError::Stale(_) | PushError::TimedOut(_)) => {
                unreachable!("constant-true gate without deadline cannot be stale or time out")
            }
        }
    }

    /// Enqueues `item` under `policy`, but calls `gate` **once, under
    /// the queue lock, with delivery guaranteed**, immediately before
    /// the slot write. If `gate` returns `false` nothing is enqueued
    /// (and nothing is evicted) and the item comes back as
    /// [`PushError::Stale`].
    ///
    /// This is the atomic route-or-retry primitive of tenant leasing: a
    /// producer routes by the lease table, then re-validates the lease
    /// inside the gate; a thief *flips* the lease inside the gate of its
    /// `Release` push. Either way the lease check/flip and the enqueue
    /// are one atomic step with respect to this queue, so no interval
    /// can land behind the `Release` message on the old shard.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] when the queue has been closed (gate not
    /// called), [`PushError::Stale`] when the gate rejected.
    pub fn push_checked(
        &self,
        item: T,
        policy: QueuePolicy,
        gate: impl FnOnce() -> bool,
    ) -> Result<(), PushError<T>> {
        self.push_checked_deadline(item, policy, gate, None)
    }

    /// [`RingQueue::push_checked`] with an upper bound on the blocking
    /// wait. Work stealing uses this so a thief never parks indefinitely
    /// on a victim's full queue (which could otherwise form a cycle of
    /// workers all waiting on each other's queues).
    ///
    /// # Errors
    ///
    /// As [`RingQueue::push_checked`], plus [`PushError::TimedOut`] when
    /// the queue stayed full past the deadline (gate not called).
    pub fn push_checked_timeout(
        &self,
        item: T,
        policy: QueuePolicy,
        gate: impl FnOnce() -> bool,
        timeout: Duration,
    ) -> Result<(), PushError<T>> {
        self.push_checked_deadline(item, policy, gate, Some(Instant::now() + timeout))
    }

    fn push_checked_deadline(
        &self,
        item: T,
        policy: QueuePolicy,
        gate: impl FnOnce() -> bool,
        deadline: Option<Instant>,
    ) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }

        // Resolve fullness first: either an eviction victim exists, or
        // we wait for space. The gate runs only after this, so a stale
        // push never evicts anybody.
        let mut evict_at = None;
        let mut stalled = false;
        if inner.ring.len >= self.capacity {
            let drop_allowed = policy == QueuePolicy::DropOldest && item.droppable();
            evict_at = if drop_allowed {
                inner.ring.oldest_droppable()
            } else {
                None
            };
            if evict_at.is_none() {
                // Block policy, or a DropOldest ring full of
                // non-droppable control messages: wait for space. One
                // stall per wait episode. Only the striped counter runs
                // under the lock; the journal write (mutex + clock) is
                // deferred to the post-push telemetry block so a
                // stalled producer never stretches the critical section
                // consumers drain through.
                inner.stats.stalls = inner.stats.stalls.saturating_add(1);
                metrics::QUEUE_STALLS.inc();
                stalled = true;
                while inner.ring.len >= self.capacity && !inner.closed {
                    inner.producer_waiters += 1;
                    if let Some(deadline) = deadline {
                        let now = Instant::now();
                        if now >= deadline {
                            inner.producer_waiters -= 1;
                            return Err(PushError::TimedOut(item));
                        }
                        let (guard, _) = self
                            .not_full
                            .wait_timeout(inner, deadline - now)
                            .expect("queue poisoned");
                        inner = guard;
                    } else {
                        inner = self.not_full.wait(inner).expect("queue poisoned");
                    }
                    inner.producer_waiters -= 1;
                }
                if inner.closed {
                    return Err(PushError::Closed(item));
                }
            }
        }

        // Space (or a victim) is guaranteed: the gate decides, exactly
        // once, under the lock.
        if !gate() {
            return Err(PushError::Stale(item));
        }
        if let Some(at) = evict_at {
            let victim = inner.ring.remove_at(at);
            let units = victim.units().unwrap_or(0);
            inner.stats.dropped = inner.stats.dropped.saturating_add(units);
            metrics::QUEUE_DROPPED.add(units as u64);
        }
        let units = item.units();
        if let Some(units) = units {
            inner.stats.record_batch(units);
        }
        inner.ring.push_back(item);
        inner.stats.pushed = inner.stats.pushed.saturating_add(1);
        let occupancy = inner.ring.len;
        let high_water = occupancy > inner.stats.high_water;
        if high_water {
            inner.stats.high_water = occupancy;
        }
        // Waiter-gated wakeup: only pay the futex syscall when a
        // consumer is actually parked.
        let wake = inner.consumer_waiters > 0;
        if wake {
            inner.stats.notifies = inner.stats.notifies.saturating_add(1);
        }
        drop(inner);
        // Telemetry outside the queue lock: one relaxed load + branch
        // when disabled.
        if regmon_telemetry::enabled() {
            metrics::QUEUE_PUSHED.inc();
            if let Some(units) = units {
                metrics::QUEUE_BATCH_UNITS.record(units as u64);
            }
            if stalled {
                // Stall episodes that end in Closed/TimedOut/Stale
                // return early and are visible only in the counter.
                journal::record(journal::EventKind::Backpressure {
                    shard: self.label,
                    units: units.unwrap_or(0) as u64,
                });
            }
            if wake {
                metrics::QUEUE_NOTIFIES.inc();
            }
            if high_water {
                metrics::QUEUE_HIGH_WATER.set_max(occupancy as i64);
                journal::record(journal::EventKind::QueueHighWater {
                    shard: self.label,
                    depth: occupancy as u64,
                });
            }
        }
        if wake {
            self.not_empty.notify_one();
        }
        Ok(())
    }

    /// Dequeues the oldest entry, waiting while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.ring.pop_front() {
                inner.stats.popped = inner.stats.popped.saturating_add(1);
                let wake = inner.producer_waiters > 0;
                if wake {
                    inner.stats.notifies = inner.stats.notifies.saturating_add(1);
                }
                drop(inner);
                if regmon_telemetry::enabled() {
                    metrics::QUEUE_POPPED.inc();
                    if wake {
                        metrics::QUEUE_NOTIFIES.inc();
                    }
                }
                if wake {
                    self.not_full.notify_one();
                }
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner.consumer_waiters += 1;
            inner = self.not_empty.wait(inner).expect("queue poisoned");
            inner.consumer_waiters -= 1;
        }
    }

    /// Dequeues the oldest entry, waiting at most `timeout` while the
    /// queue is empty. Work-stealing workers poll with this so an idle
    /// worker regains control to scan peer backlogs.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.ring.pop_front() {
                inner.stats.popped = inner.stats.popped.saturating_add(1);
                let wake = inner.producer_waiters > 0;
                if wake {
                    inner.stats.notifies = inner.stats.notifies.saturating_add(1);
                }
                drop(inner);
                if regmon_telemetry::enabled() {
                    metrics::QUEUE_POPPED.inc();
                    if wake {
                        metrics::QUEUE_NOTIFIES.inc();
                    }
                }
                if wake {
                    self.not_full.notify_one();
                }
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::Empty;
            }
            inner.consumer_waiters += 1;
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("queue poisoned");
            inner = guard;
            inner.consumer_waiters -= 1;
        }
    }

    /// Closes the queue: producers start failing, the consumer drains
    /// the remaining entries and then sees end-of-stream.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").ring.len
    }

    /// `true` when no entries are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the backpressure counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue poisoned").stats
    }

    /// Maximum occupancy.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Data(u32),
        /// A payload carrying several units (a fleet interval batch).
        Pack(u32, usize),
        Ctrl(u32),
    }

    impl Droppable for Msg {
        fn droppable(&self) -> bool {
            !matches!(self, Msg::Ctrl(_))
        }

        fn units(&self) -> Option<usize> {
            match self {
                Msg::Data(_) => Some(1),
                Msg::Pack(_, n) => Some(*n),
                Msg::Ctrl(_) => None,
            }
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(Msg::Data(i), QueuePolicy::Block).unwrap();
        }
        q.close();
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            (0..5).map(Msg::Data).collect::<Vec<_>>(),
            "FIFO violated"
        );
    }

    #[test]
    fn ring_wraps_without_reordering() {
        // Interleave pushes and pops so head laps the ring repeatedly:
        // draining two of three slots each time the ring fills advances
        // the head by two on a three-slot array, walking every offset.
        let q = RingQueue::new(3);
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for i in 0..20u32 {
            q.push(Msg::Data(i), QueuePolicy::Block).unwrap();
            expect.push(Msg::Data(i));
            if q.len() == 3 {
                got.push(q.pop().unwrap());
                got.push(q.pop().unwrap());
            }
        }
        q.close();
        got.extend(std::iter::from_fn(|| q.pop()));
        assert_eq!(got, expect);
        let stats = q.stats();
        assert_eq!(stats.pushed, 20);
        assert_eq!(stats.popped, 20);
    }

    #[test]
    fn drop_oldest_evicts_front_droppable_only() {
        let q = BoundedQueue::new(3);
        q.push(Msg::Ctrl(0), QueuePolicy::DropOldest).unwrap();
        q.push(Msg::Data(1), QueuePolicy::DropOldest).unwrap();
        q.push(Msg::Data(2), QueuePolicy::DropOldest).unwrap();
        // Full. The oldest *droppable* (Data(1)) goes, not Ctrl(0).
        q.push(Msg::Data(3), QueuePolicy::DropOldest).unwrap();
        let stats = q.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.high_water, 3);
        q.close();
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![Msg::Ctrl(0), Msg::Data(2), Msg::Data(3)]);
    }

    #[test]
    fn mid_ring_eviction_survives_wrap() {
        // Move head off zero first so the eviction shift crosses the
        // physical end of the slot array.
        let q = RingQueue::new(4);
        q.push(Msg::Data(0), QueuePolicy::Block).unwrap();
        q.push(Msg::Data(1), QueuePolicy::Block).unwrap();
        assert_eq!(q.pop(), Some(Msg::Data(0)));
        assert_eq!(q.pop(), Some(Msg::Data(1))); // head now at 2
        q.push(Msg::Ctrl(10), QueuePolicy::Block).unwrap();
        q.push(Msg::Ctrl(11), QueuePolicy::Block).unwrap();
        q.push(Msg::Data(12), QueuePolicy::Block).unwrap();
        q.push(Msg::Data(13), QueuePolicy::Block).unwrap();
        // Full, wrapped. Evict oldest droppable (Data(12), age index 2).
        q.push(Msg::Data(14), QueuePolicy::DropOldest).unwrap();
        q.close();
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![Msg::Ctrl(10), Msg::Ctrl(11), Msg::Data(13), Msg::Data(14)]
        );
        assert_eq!(q.stats().dropped, 1);
    }

    /// Adversarial satellite case: a ring *full of control messages*
    /// under `DropOldest` must never evict one of them — the producer
    /// falls back to blocking and every control message survives.
    #[test]
    fn drop_oldest_never_evicts_control_from_full_ring() {
        let q = Arc::new(RingQueue::new(3));
        for i in 0..3 {
            q.push(Msg::Ctrl(i), QueuePolicy::DropOldest).unwrap();
        }
        assert_eq!(q.len(), 3, "ring full of control messages");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(Msg::Data(99), QueuePolicy::DropOldest))
        };
        // Give the producer time to (wrongly) evict; it must block.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.stats().dropped, 0, "control message sacrificed");
        let mut drained = Vec::new();
        drained.push(q.pop().unwrap()); // frees a slot; producer lands
        producer.join().unwrap().unwrap();
        q.close();
        drained.extend(std::iter::from_fn(|| q.pop()));
        assert_eq!(
            drained,
            vec![Msg::Ctrl(0), Msg::Ctrl(1), Msg::Ctrl(2), Msg::Data(99)]
        );
        let stats = q.stats();
        assert_eq!(stats.dropped, 0, "DropOldest must not drop control");
        assert_eq!(stats.stalls, 1, "producer blocked instead");
    }

    #[test]
    fn dropped_counts_units_not_messages() {
        let q = RingQueue::new(1);
        q.push(Msg::Pack(0, 5), QueuePolicy::DropOldest).unwrap();
        q.push(Msg::Pack(1, 2), QueuePolicy::DropOldest).unwrap();
        assert_eq!(q.stats().dropped, 5, "evicted batch counts its units");
    }

    #[test]
    fn batch_size_histogram_buckets_by_log2() {
        let q = RingQueue::new(16);
        for (tag, units) in [(0, 1), (1, 3), (2, 8), (3, 40)] {
            q.push(Msg::Pack(tag, units), QueuePolicy::Block).unwrap();
        }
        q.push(Msg::Ctrl(9), QueuePolicy::Block).unwrap();
        let stats = q.stats();
        let mut expect = [0usize; BATCH_BUCKETS];
        expect[0] = 1; // 1
        expect[1] = 1; // 3
        expect[3] = 1; // 8
        expect[5] = 1; // 40
        assert_eq!(stats.batch_sizes, expect, "control messages not counted");
        assert_eq!(stats.payload_messages(), 4);
        assert_eq!(batch_bucket_label(0), "1");
        assert_eq!(batch_bucket_label(1), "2-3");
        assert_eq!(batch_bucket_label(5), "32-63");
        assert_eq!(batch_bucket_label(7), "128+");
    }

    /// Wakeup-herding regression: pushes with no parked consumer must
    /// not issue a single condvar notification (PR 1 notified on every
    /// push), while a parked consumer still gets woken.
    #[test]
    fn uncontended_push_is_notify_free() {
        let q = Arc::new(RingQueue::new(32));
        for i in 0..20 {
            q.push(Msg::Data(i), QueuePolicy::Block).unwrap();
        }
        assert_eq!(
            q.stats().notifies,
            0,
            "uncontended pushes must be syscall-free"
        );
        while q.pop().is_some() {
            if q.is_empty() {
                break;
            }
        }
        assert_eq!(q.stats().notifies, 0, "uncontended pops too");

        // Now park a consumer and prove the wakeup still happens.
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20)); // let it park
        q.push(Msg::Data(99), QueuePolicy::Block).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(Msg::Data(99)));
        assert!(q.stats().notifies >= 1, "parked consumer must be notified");
        q.close();
    }

    #[test]
    fn block_policy_counts_stalls_and_delivers_everything() {
        let q = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(m) = q.pop() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    got.push(m);
                }
                got
            })
        };
        for i in 0..20 {
            q.push(Msg::Data(i), QueuePolicy::Block).unwrap();
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 20, "Block must be lossless");
        assert!(q.stats().stalls > 0, "depth-1 queue must have stalled");
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(Msg::Data(0), QueuePolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(Msg::Data(1), QueuePolicy::Block))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(Closed));
    }

    #[test]
    fn stale_gate_rejects_without_enqueue_or_eviction() {
        let q = RingQueue::new(1);
        q.push(Msg::Data(0), QueuePolicy::Block).unwrap();
        // Full ring + DropOldest + failing gate: the victim must survive.
        match q.push_checked(Msg::Data(1), QueuePolicy::DropOldest, || false) {
            Err(PushError::Stale(Msg::Data(1))) => {}
            other => panic!("expected Stale, got {other:?}"),
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().dropped, 0, "stale push must not evict");
        assert_eq!(q.stats().pushed, 1);
        q.close();
        assert_eq!(q.pop(), Some(Msg::Data(0)));
    }

    #[test]
    fn push_timeout_gives_item_back_when_full() {
        let q = RingQueue::new(1);
        q.push(Msg::Ctrl(0), QueuePolicy::Block).unwrap();
        let start = Instant::now();
        match q.push_checked_timeout(
            Msg::Data(1),
            QueuePolicy::Block,
            || true,
            Duration::from_millis(10),
        ) {
            Err(PushError::TimedOut(Msg::Data(1))) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q: RingQueue<Msg> = RingQueue::new(4);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::Empty);
        q.push(Msg::Data(7), QueuePolicy::Block).unwrap();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            Popped::Item(Msg::Data(7))
        );
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::Closed);
    }

    #[test]
    fn policy_parse_accepts_all_spellings_and_lists_them_on_error() {
        assert_eq!(QueuePolicy::parse("block"), Ok(QueuePolicy::Block));
        for alias in ["drop-oldest", "drop_oldest", "dropoldest", "drop"] {
            assert_eq!(
                QueuePolicy::parse(alias),
                Ok(QueuePolicy::DropOldest),
                "{alias}"
            );
        }
        let err = QueuePolicy::parse("newest").unwrap_err();
        for spelling in ["block", "drop-oldest", "drop_oldest", "dropoldest", "drop"] {
            assert!(err.contains(spelling), "error {err:?} omits {spelling}");
        }
    }
}
