//! Bounded multi-producer queue with backpressure accounting.
//!
//! The fleet engine ships every shard's traffic — interval buffers *and*
//! lifecycle control messages — through one bounded FIFO per shard. A
//! plain `std::sync::mpsc::sync_channel` cannot express the
//! `DropOldest` policy (there is no access to the queue head), so this
//! is a small `Mutex<VecDeque> + Condvar` queue, standard library only.
//!
//! Two backpressure policies:
//!
//! - [`QueuePolicy::Block`]: a full queue makes the producer wait, and
//!   each wait episode is counted as one **stall** — the paper's measure
//!   of how often monitoring would have intruded on the critical path
//!   with this buffer depth (§3.2.3).
//! - [`QueuePolicy::DropOldest`]: a full queue evicts the oldest
//!   *droppable* entry (interval buffers are droppable, control
//!   messages never are) and counts one **drop**. The producer never
//!   waits; monitoring degrades instead of the mutator.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What to do when a shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Producer waits for space (lossless; counts stalls).
    Block,
    /// Oldest droppable entry is evicted (lossy; counts drops).
    DropOldest,
}

impl QueuePolicy {
    /// Parses `"block"` / `"drop-oldest"` (CLI spelling).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input back as the error message payload.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(Self::Block),
            "drop-oldest" | "drop_oldest" | "dropoldest" => Ok(Self::DropOldest),
            other => Err(format!(
                "unknown queue policy {other:?} (block|drop-oldest)"
            )),
        }
    }
}

/// Entries that may be sacrificed under [`QueuePolicy::DropOldest`].
pub trait Droppable {
    /// `true` when the entry may be dropped (interval payloads);
    /// `false` for entries that must survive (control messages).
    fn droppable(&self) -> bool;
}

/// Backpressure counters of one queue, all monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Entries accepted.
    pub pushed: usize,
    /// Entries handed to the consumer.
    pub popped: usize,
    /// Wait episodes of a blocked producer ([`QueuePolicy::Block`]).
    pub stalls: usize,
    /// Evicted entries ([`QueuePolicy::DropOldest`]).
    pub dropped: usize,
    /// Maximum occupancy ever observed (after a push).
    pub high_water: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// Error returned when pushing into a closed queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

/// A bounded FIFO connecting the fleet driver to one shard worker.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T: Droppable> BoundedQueue<T> {
    /// A queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue depth must be positive");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item` under `policy`.
    ///
    /// Control messages (non-droppable items) always use blocking
    /// semantics regardless of `policy`, so lifecycle commands are never
    /// lost.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] when the queue has been closed.
    pub fn push(&self, item: T, policy: QueuePolicy) -> Result<(), Closed> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        if inner.items.len() >= self.capacity {
            let drop_allowed = policy == QueuePolicy::DropOldest && item.droppable();
            let evicted = if drop_allowed {
                // Evict the oldest droppable entry, preserving control
                // messages. `position` scans from the front: the victim
                // is genuinely the oldest droppable.
                inner.items.iter().position(Droppable::droppable)
            } else {
                None
            };
            if let Some(at) = evicted {
                inner.items.remove(at);
                inner.stats.dropped += 1;
            } else {
                // Block policy, or a DropOldest queue full of
                // non-droppable entries: wait for space.
                inner.stats.stalls += 1;
                while inner.items.len() >= self.capacity && !inner.closed {
                    inner = self.not_full.wait(inner).expect("queue poisoned");
                }
                if inner.closed {
                    return Err(Closed);
                }
            }
        }
        inner.items.push_back(item);
        inner.stats.pushed += 1;
        let occupancy = inner.items.len();
        if occupancy > inner.stats.high_water {
            inner.stats.high_water = occupancy;
        }
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest entry, waiting while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.stats.popped += 1;
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: producers start failing, the consumer drains
    /// the remaining entries and then sees end-of-stream.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// `true` when no entries are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the backpressure counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue poisoned").stats
    }

    /// Maximum occupancy.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Data(u32),
        Ctrl(u32),
    }

    impl Droppable for Msg {
        fn droppable(&self) -> bool {
            matches!(self, Msg::Data(_))
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(Msg::Data(i), QueuePolicy::Block).unwrap();
        }
        q.close();
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            (0..5).map(Msg::Data).collect::<Vec<_>>(),
            "FIFO violated"
        );
    }

    #[test]
    fn drop_oldest_evicts_front_droppable_only() {
        let q = BoundedQueue::new(3);
        q.push(Msg::Ctrl(0), QueuePolicy::DropOldest).unwrap();
        q.push(Msg::Data(1), QueuePolicy::DropOldest).unwrap();
        q.push(Msg::Data(2), QueuePolicy::DropOldest).unwrap();
        // Full. The oldest *droppable* (Data(1)) goes, not Ctrl(0).
        q.push(Msg::Data(3), QueuePolicy::DropOldest).unwrap();
        let stats = q.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.high_water, 3);
        q.close();
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![Msg::Ctrl(0), Msg::Data(2), Msg::Data(3)]);
    }

    #[test]
    fn block_policy_counts_stalls_and_delivers_everything() {
        let q = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(m) = q.pop() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    got.push(m);
                }
                got
            })
        };
        for i in 0..20 {
            q.push(Msg::Data(i), QueuePolicy::Block).unwrap();
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 20, "Block must be lossless");
        assert!(q.stats().stalls > 0, "depth-1 queue must have stalled");
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(Msg::Data(0), QueuePolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(Msg::Data(1), QueuePolicy::Block))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(Closed));
    }
}
