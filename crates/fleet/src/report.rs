//! Fleet-wide result types: per-tenant, per-shard and rolled-up metrics.

use regmon::SessionSummary;

use crate::cpdfeed::CpdReport;
use crate::queue::BATCH_BUCKETS;
use crate::shard::ShardSnapshot;
use crate::tenant::{TenantId, TenantState};

/// Final per-tenant record.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant.
    pub id: TenantId,
    /// Display name from the spec.
    pub name: String,
    /// Workload driving the tenant.
    pub workload: String,
    /// Shard that served the tenant.
    pub shard: usize,
    /// Final lifecycle state.
    pub state: TenantState,
    /// Intervals the driver produced for the tenant (post-restart).
    pub intervals_produced: usize,
    /// Intervals the pipeline fully processed (post-restart).
    pub intervals_processed: usize,
    /// In-flight intervals ignored (paused/evicted/failed races).
    pub intervals_ignored: usize,
    /// Fresh-session restarts.
    pub restarts: usize,
    /// The session summary (`None` only for failed tenants).
    pub summary: Option<SessionSummary>,
    /// Panic message for failed tenants.
    pub error: Option<String>,
}

/// Final per-shard record, including backpressure accounting.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Tenants served.
    pub tenants: usize,
    /// Messages the worker processed (intervals + lifecycle).
    pub messages_processed: usize,
    /// Producer wait episodes on a full queue (`Block`).
    pub backpressure_stalls: usize,
    /// Intervals sacrificed on a full queue (`DropOldest`).
    pub dropped_intervals: usize,
    /// Queue-occupancy high-water mark.
    pub queue_high_water: usize,
    /// Histogram of payload message sizes (intervals per queue message)
    /// in log2 buckets `1, 2-3, 4-7, …, 128+`
    /// (see [`crate::batch_bucket_label`]).
    pub batch_sizes: [usize; BATCH_BUCKETS],
    /// Tenants this shard adopted from peers (work stealing / lockstep
    /// rebalancing).
    pub tenants_stolen: usize,
}

/// Fleet-level roll-up over every tenant and shard.
#[derive(Debug, Clone, Default)]
pub struct FleetAggregate {
    /// Tenants admitted.
    pub tenants: usize,
    /// Tenants that completed their workload.
    pub completed: usize,
    /// Tenants evicted (cold policy or request).
    pub evicted: usize,
    /// Tenants quarantined after a pipeline panic.
    pub failed: usize,
    /// Tenants left paused at shutdown.
    pub paused: usize,
    /// Total fresh-session restarts.
    pub restarts: usize,
    /// Intervals produced across the fleet.
    pub intervals_produced: usize,
    /// Intervals fully processed across the fleet.
    pub intervals_processed: usize,
    /// Intervals dropped under backpressure.
    pub dropped_intervals: usize,
    /// Producer stall episodes across all shards.
    pub backpressure_stalls: usize,
    /// Tenant migrations between shards across the run.
    pub tenants_migrated: usize,
    /// Global (centroid) phase changes summed over tenants.
    pub gpd_phase_changes: usize,
    /// Mean per-tenant GPD stable-time fraction.
    pub gpd_stable_fraction_mean: f64,
    /// Local (per-region) phase changes summed over tenants.
    pub lpd_phase_changes: usize,
    /// Mean per-tenant mean-region stable fraction.
    pub lpd_stable_fraction_mean: f64,
    /// Mean per-tenant median UCR fraction.
    pub ucr_median_mean: f64,
    /// Regions formed across the fleet.
    pub regions_formed: usize,
    /// Regions pruned across the fleet.
    pub regions_pruned: usize,
}

/// A mid-run snapshot taken by a schedule action, tagged with the round
/// at which it was requested.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Driver round when the snapshot was taken.
    pub round: usize,
    /// Per-shard views.
    pub shards: Vec<ShardSnapshot>,
}

/// The complete result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-tenant records in id order.
    pub tenants: Vec<TenantReport>,
    /// Per-shard records in shard order.
    pub shards: Vec<ShardReport>,
    /// Fleet roll-up.
    pub aggregate: FleetAggregate,
    /// Mid-run snapshots requested by the schedule, in round order.
    pub snapshots: Vec<FleetSnapshot>,
    /// Change-point detections (`Some` only when the run enabled CPD).
    /// Deterministic except for `CpdReport::lost`, which is excluded
    /// from `--json` output alongside `wall_ms`.
    pub cpd: Option<CpdReport>,
    /// Wall-clock duration of the run in milliseconds — a
    /// non-deterministic field; excluded from `--json` output so equal
    /// seeds yield byte-identical JSON.
    pub wall_ms: u128,
}

impl FleetReport {
    /// Computes the roll-up from per-tenant and per-shard records.
    pub(crate) fn aggregate_from(
        tenants: &[TenantReport],
        shards: &[ShardReport],
    ) -> FleetAggregate {
        let mut agg = FleetAggregate {
            tenants: tenants.len(),
            ..FleetAggregate::default()
        };
        let mut summarized = 0usize;
        for t in tenants {
            match &t.state {
                TenantState::Completed => agg.completed += 1,
                TenantState::Evicted(_) => agg.evicted += 1,
                TenantState::Failed(_) => agg.failed += 1,
                TenantState::Paused => agg.paused += 1,
                TenantState::Running => {}
            }
            agg.restarts += t.restarts;
            // Per-tenant counters may already be saturated; keep the
            // fleet-wide sums from panicking in debug builds too.
            agg.intervals_produced = agg.intervals_produced.saturating_add(t.intervals_produced);
            agg.intervals_processed = agg
                .intervals_processed
                .saturating_add(t.intervals_processed);
            if let Some(s) = &t.summary {
                summarized += 1;
                agg.gpd_phase_changes += s.gpd.phase_changes;
                agg.gpd_stable_fraction_mean += s.gpd.stable_fraction();
                agg.lpd_phase_changes += s.lpd_total_phase_changes();
                agg.lpd_stable_fraction_mean += s.lpd_mean_stable_fraction();
                agg.ucr_median_mean += s.ucr_median;
                agg.regions_formed += s.regions_formed;
                agg.regions_pruned += s.regions_pruned;
            }
        }
        if summarized > 0 {
            let n = summarized as f64;
            agg.gpd_stable_fraction_mean /= n;
            agg.lpd_stable_fraction_mean /= n;
            agg.ucr_median_mean /= n;
        }
        for s in shards {
            agg.dropped_intervals = agg.dropped_intervals.saturating_add(s.dropped_intervals);
            agg.backpressure_stalls = agg
                .backpressure_stalls
                .saturating_add(s.backpressure_stalls);
            agg.tenants_migrated = agg.tenants_migrated.saturating_add(s.tenants_stolen);
        }
        agg
    }

    /// The per-tenant report for `id`, if admitted.
    #[must_use]
    pub fn tenant(&self, id: TenantId) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.id == id)
    }
}
