//! Shard workers: each owns the [`MonitoringSession`]s of the tenants
//! leased to it and drains its bounded queue until shutdown.
//!
//! A worker is a plain consumer loop. All tenant mutation happens here,
//! single-threaded per shard, so sessions need no internal locking — the
//! fleet scales by adding shards, not by locking sessions.
//!
//! **Interval batching:** the driver may coalesce a tenant's intervals
//! into one [`ShardMsg::Batch`], amortizing one queue operation, one
//! tenant-table lookup and one `catch_unwind` frame over the whole
//! batch. Processing remains per-interval inside the session, so
//! summaries and phase-change sequences are byte-identical to the
//! per-interval path (including the ignored/processed accounting when a
//! batch straddles a panic).
//!
//! **Work stealing:** tenant ownership is a *lease* ([`LeaseTable`]).
//! An idle worker in freerun pacing may steal a whole tenant from the
//! most-backlogged peer: it flips the lease inside the gate of a
//! [`ShardMsg::Release`] push to the victim's queue (atomic with
//! respect to that queue — no interval can land behind the `Release` on
//! the old shard), then adopts the tenant's entry off a one-shot
//! channel. Sessions therefore stay single-threaded: exactly one worker
//! owns a tenant's entry at any instant, and a migration in flight is
//! tracked by the [`MigrationGate`] so shutdown never strands an entry.
//!
//! **Panic quarantine:** every per-interval pipeline step runs under
//! `catch_unwind`. A panicking tenant transitions to
//! [`TenantState::Failed`] and its session is discarded; the worker, its
//! queue and every co-resident tenant continue untouched. Nothing
//! propagates across tenants or shards.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use regmon::{MonitoringSession, SessionConfig, SessionSummary};
use regmon_binary::Binary;
use regmon_sampling::Interval;
use regmon_telemetry::{journal, metrics};

use crate::affinity::{self, Topology};
use crate::queue::{Droppable, Popped, PushError, QueuePolicy, QueueStats, RingQueue};
use crate::tenant::{EvictReason, FaultPlan, TenantId, TenantState};

/// How long an idle stealing worker parks on its empty queue before
/// scanning peers for backlog.
const STEAL_POLL: Duration = Duration::from_micros(500);

/// Upper bound on how long a thief may block pushing `Release` into a
/// victim's full queue. Bounding this wait breaks the only potential
/// wait cycle between workers (every other worker wait is a pop).
const RELEASE_PUSH_TIMEOUT: Duration = Duration::from_millis(2);

/// One message on a shard queue.
#[derive(Debug)]
pub(crate) enum ShardMsg {
    /// Registers a tenant on this shard.
    Admit(Box<AdmitMsg>),
    /// One sampled interval for a tenant.
    Interval(TenantId, Interval),
    /// A coalesced run of consecutive intervals for a tenant.
    Batch(TenantId, Vec<Interval>),
    /// Stops processing for a tenant (resumable).
    Pause(TenantId),
    /// Resumes a paused tenant.
    Resume(TenantId),
    /// Removes a tenant (session retired; summary retained).
    Evict(TenantId, EvictReason),
    /// Discards the tenant's session and starts a fresh one.
    Restart(TenantId),
    /// The tenant produced its last interval.
    Finish(TenantId),
    /// Hands the tenant's entry to the sender of this message: the
    /// receiving worker removes the entry from its table and ships it
    /// back through the channel. Pushed by a thief (whose `Release`
    /// push gate flips the lease) or by the lockstep rebalancer.
    Release(TenantId, SyncSender<MigrationPacket>),
    /// Lockstep rebalance only: the destination worker blocks on the
    /// channel until the released entry arrives, then installs it. Safe
    /// to block because the driver orchestrates exactly one migration
    /// at a time and the victim is guaranteed live and draining.
    AdoptHandle(TenantId, Receiver<MigrationPacket>),
    /// Requests a consistent snapshot of this shard's tenants.
    Snapshot(SyncSender<ShardSnapshot>),
    /// Freezes one tenant and hands its full session snapshot to the
    /// sender (live migration): the entry is retired from this shard
    /// and the tenant resumes wherever the snapshot is re-admitted.
    /// Answers `None` when the tenant is unknown here or its session
    /// is already gone (finished tenants still carry a live session
    /// and *can* be checked out).
    Checkpoint(TenantId, SyncSender<Option<Box<regmon::SessionSnapshot>>>),
    /// Non-retiring sibling of `Checkpoint`: clones a consistent session
    /// snapshot while the tenant keeps running on this shard (durable
    /// serve uses it for periodic crash-recovery checkpoints). FIFO
    /// queue order guarantees every batch pushed before the peek is
    /// already folded in. Answers `None` when the tenant is unknown or
    /// its session is gone.
    Peek(TenantId, SyncSender<Option<Box<regmon::SessionSnapshot>>>),
    /// Lockstep pacing: acknowledge that every earlier message has been
    /// fully processed.
    Barrier(SyncSender<()>),
    /// Test instrumentation: acknowledge on the sender, then park until
    /// the receiver's far end hangs up. While parked the worker pops
    /// nothing, so producers deterministically outrun the queue —
    /// backpressure tests need no wall-clock races.
    Hold(SyncSender<()>, Receiver<()>),
}

/// Payload of [`ShardMsg::Admit`] (boxed: it is much larger than the
/// other variants).
#[derive(Debug)]
pub(crate) struct AdmitMsg {
    pub tenant: TenantId,
    pub name: String,
    pub config: SessionConfig,
    pub binary: Binary,
    pub workload_name: String,
    pub fault: Option<FaultPlan>,
    pub throttle_us: u64,
    /// Resume from this checkpoint instead of a fresh session (live
    /// migration hand-off). The continued stream is byte-identical to
    /// an uninterrupted session.
    pub snapshot: Option<Box<regmon::SessionSnapshot>>,
}

/// A tenant entry in flight between two workers.
#[derive(Debug)]
pub(crate) struct MigrationPacket {
    /// `None` when the releasing worker did not own the tenant (a
    /// defensive case the lease protocol rules out).
    pub entry: Option<Box<TenantEntry>>,
}

impl Droppable for ShardMsg {
    fn droppable(&self) -> bool {
        // Only interval payloads may be sacrificed under DropOldest;
        // losing a control message would corrupt lifecycle state, and
        // losing a migration message would strand a tenant entry.
        matches!(self, ShardMsg::Interval(..) | ShardMsg::Batch(..))
    }

    fn units(&self) -> Option<usize> {
        match self {
            ShardMsg::Interval(..) => Some(1),
            ShardMsg::Batch(_, intervals) => Some(intervals.len()),
            _ => None,
        }
    }
}

/// Tenant → owning shard, shared by the engine, the driver and every
/// worker. The `migrating` bit serializes migrations per tenant: a
/// settled lease may be flipped (inside a `Release` push gate), and is
/// settled again only when the adopter has installed the entry.
#[derive(Debug, Default)]
pub(crate) struct LeaseTable {
    slots: Mutex<Vec<LeaseSlot>>,
}

#[derive(Debug, Clone, Copy)]
struct LeaseSlot {
    shard: usize,
    migrating: bool,
}

impl LeaseTable {
    /// Registers the next tenant (dense ids) on its home shard.
    pub fn push_home(&self, shard: usize) {
        self.slots
            .lock()
            .expect("lease table poisoned")
            .push(LeaseSlot {
                shard,
                migrating: false,
            });
    }

    /// Current owner shard of `t`.
    pub fn get(&self, t: TenantId) -> usize {
        self.slots.lock().expect("lease table poisoned")[t.0 as usize].shard
    }

    /// Atomically re-points `t` from `from` to `to` and marks the
    /// migration in flight. Fails when the lease moved or a migration
    /// is already pending. Called inside a queue push gate, so the flip
    /// commits if and only if the `Release` message is delivered.
    pub fn flip_if(&self, t: TenantId, from: usize, to: usize) -> bool {
        let mut slots = self.slots.lock().expect("lease table poisoned");
        let slot = &mut slots[t.0 as usize];
        if slot.shard == from && !slot.migrating {
            slot.shard = to;
            slot.migrating = true;
            true
        } else {
            false
        }
    }

    /// Driver-side re-point (lockstep rebalance: the driver is the sole
    /// flipper and orchestrates the hand-off with barriers).
    pub fn set(&self, t: TenantId, shard: usize) {
        let mut slots = self.slots.lock().expect("lease table poisoned");
        slots[t.0 as usize] = LeaseSlot {
            shard,
            migrating: false,
        };
    }

    /// Marks `t`'s migration complete.
    pub fn settle(&self, t: TenantId) {
        self.slots.lock().expect("lease table poisoned")[t.0 as usize].migrating = false;
    }

    /// Lowest-id tenant currently settled on `shard`, if any.
    pub fn lowest_settled(&self, shard: usize) -> Option<TenantId> {
        let slots = self.slots.lock().expect("lease table poisoned");
        slots
            .iter()
            .enumerate()
            .find(|(_, s)| s.shard == shard && !s.migrating)
            .map(|(i, _)| TenantId(i as u32))
    }
}

/// Counts migrations in flight (entry released or about to be, not yet
/// installed). Shutdown waits for zero before closing queues so no
/// tenant entry is stranded on a dead channel.
#[derive(Debug, Default)]
pub(crate) struct MigrationGate {
    count: Mutex<usize>,
    idle: Condvar,
}

impl MigrationGate {
    pub fn inc(&self) {
        *self.count.lock().expect("migration gate poisoned") += 1;
    }

    pub fn dec(&self) {
        let mut count = self.count.lock().expect("migration gate poisoned");
        *count -= 1;
        if *count == 0 {
            self.idle.notify_all();
        }
    }

    pub fn wait_idle(&self) {
        let mut count = self.count.lock().expect("migration gate poisoned");
        while *count > 0 {
            count = self.idle.wait(count).expect("migration gate poisoned");
        }
    }
}

/// Everything a worker shares with its peers, the engine and the driver.
#[derive(Debug)]
pub(crate) struct WorkerShared {
    /// One bounded ring per shard.
    pub queues: Vec<Arc<RingQueue<ShardMsg>>>,
    /// Tenant → owning shard.
    pub leases: LeaseTable,
    /// Migrations in flight.
    pub gate: MigrationGate,
    /// Set during shutdown: workers stop initiating steals.
    pub stop_steal: AtomicBool,
    /// Whether workers may initiate steals (freerun pacing only; the
    /// lockstep driver rebalances deterministically instead).
    pub worker_steal: bool,
    /// Minimum victim backlog (queue occupancy) that justifies a steal.
    pub steal_backlog: usize,
    /// Whether workers pin themselves to a CPU at startup (best-effort).
    pub pin: bool,
    /// CPU → core-complex map for steal-victim locality.
    pub topology: Topology,
    /// CPUs available to the process (fixes the shard → CPU mapping).
    pub cpus: usize,
}

impl WorkerShared {
    /// The CPU shard `shard`'s worker targets when pinning, and the one
    /// its locality is judged by either way.
    fn cpu_of_shard(&self, shard: usize) -> usize {
        affinity::cpu_for_shard(shard, self.cpus)
    }
}

/// Point-in-time view of one tenant, as seen by its shard.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The tenant.
    pub id: TenantId,
    /// Its display name.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub state: TenantState,
    /// Intervals fully processed by the pipeline (post-restart count).
    pub intervals_processed: usize,
    /// Intervals ignored (arrived while paused/evicted/failed).
    pub intervals_ignored: usize,
    /// Times the tenant was restarted with a fresh session.
    pub restarts: usize,
    /// The session summary (live sessions are summarized on demand;
    /// `None` only for a failed tenant whose session was discarded).
    pub summary: Option<SessionSummary>,
    /// Panic message for failed tenants.
    pub error: Option<String>,
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Every tenant currently owned by this shard, in id order.
    pub tenants: Vec<TenantSnapshot>,
    /// Messages processed so far.
    pub messages_processed: usize,
}

/// Final report of a shard worker, produced at shutdown.
#[derive(Debug, Clone)]
pub struct ShardFinal {
    /// Shard index.
    pub shard: usize,
    /// Final tenant snapshots, in id order.
    pub tenants: Vec<TenantSnapshot>,
    /// Messages processed over the shard's lifetime.
    pub messages_processed: usize,
    /// Tenants stolen from peers over the shard's lifetime.
    pub tenants_stolen: usize,
    /// The CPU this worker pinned itself to, when pinning was requested
    /// *and* the kernel accepted the mask (best-effort; `None` means
    /// the worker ran wherever the scheduler put it).
    pub pinned_cpu: Option<usize>,
    /// Queue backpressure counters. Under lockstep pacing the
    /// stall/drop/high-water numbers are superseded by the driver's
    /// deterministic accounting, but the batch-size histogram is
    /// deterministic in both pacings.
    pub queue: QueueStats,
}

/// Per-tenant state owned by a worker.
#[derive(Debug)]
pub(crate) struct TenantEntry {
    name: String,
    workload_name: String,
    config: SessionConfig,
    binary: Binary,
    fault: Option<FaultPlan>,
    throttle_us: u64,
    state: TenantState,
    session: Option<MonitoringSession>,
    /// Summary frozen at eviction time (session retired).
    frozen_summary: Option<SessionSummary>,
    intervals_processed: usize,
    intervals_ignored: usize,
    restarts: usize,
}

impl TenantEntry {
    fn fresh_session(&self) -> MonitoringSession {
        let mut session = MonitoringSession::new(self.config.clone());
        session.attach_binary_image(self.binary.clone());
        session
    }

    fn snapshot(&self, id: TenantId) -> TenantSnapshot {
        let summary = match (&self.session, &self.frozen_summary) {
            (Some(s), _) => Some(s.summary(&self.workload_name)),
            (None, Some(frozen)) => Some(frozen.clone()),
            (None, None) => None,
        };
        TenantSnapshot {
            id,
            name: self.name.clone(),
            state: self.state.clone(),
            intervals_processed: self.intervals_processed,
            intervals_ignored: self.intervals_ignored,
            restarts: self.restarts,
            summary,
            error: match &self.state {
                TenantState::Failed(msg) => Some(msg.clone()),
                _ => None,
            },
        }
    }
}

/// An adoption in flight at the thief: the entry channel plus any
/// messages for the tenant that arrived before the entry did (they are
/// replayed, in order, at install time).
#[derive(Debug)]
struct Adoption {
    rx: Receiver<MigrationPacket>,
    from: usize,
    buffered: Vec<ShardMsg>,
}

/// The mutable state of one shard worker.
struct Worker {
    shard: usize,
    tenants: BTreeMap<TenantId, TenantEntry>,
    adoptions: BTreeMap<TenantId, Adoption>,
    messages: usize,
    stolen: usize,
}

/// The worker loop for shard `shard`. Runs until the queue is closed and
/// drained, then reports its final state.
pub(crate) fn run_worker(shard: usize, shared: &WorkerShared) -> ShardFinal {
    let mut w = Worker {
        shard,
        tenants: BTreeMap::new(),
        adoptions: BTreeMap::new(),
        messages: 0,
        stolen: 0,
    };
    let pinned_cpu = if shared.pin {
        let cpu = shared.cpu_of_shard(shard);
        affinity::pin_current_thread(cpu).then_some(cpu)
    } else {
        None
    };
    let queue = &shared.queues[shard];

    loop {
        w.poll_adoptions(shared);
        let msg = if shared.worker_steal {
            match queue.pop_timeout(STEAL_POLL) {
                Popped::Item(msg) => Some(msg),
                Popped::Empty => {
                    if w.adoptions.is_empty() {
                        w.try_steal(shared);
                    }
                    continue;
                }
                Popped::Closed => None,
            }
        } else {
            queue.pop()
        };
        let Some(msg) = msg else { break };
        // Barriers are engine-internal sync points, not workload
        // messages — counting them would make `messages_processed`
        // depend on who drained (snapshots, the change-point feed).
        if !matches!(msg, ShardMsg::Barrier(_)) {
            w.messages = w.messages.saturating_add(1);
        }
        w.dispatch(msg);
    }
    // Shutdown orders stop-steal + gate.wait_idle() before closing the
    // queues, so no adoption can still be pending here.
    debug_assert!(w.adoptions.is_empty(), "adoption pending past shutdown");

    ShardFinal {
        shard,
        tenants: w.tenants.iter().map(|(id, e)| e.snapshot(*id)).collect(),
        messages_processed: w.messages,
        tenants_stolen: w.stolen,
        pinned_cpu,
        queue: queue.stats(),
    }
}

impl Worker {
    /// Installs any adopted entries whose packet has arrived, replaying
    /// buffered messages in arrival order (they were already counted in
    /// `messages_processed` when popped).
    fn poll_adoptions(&mut self, shared: &WorkerShared) {
        let pending: Vec<TenantId> = self.adoptions.keys().copied().collect();
        for t in pending {
            let ready = match self.adoptions[&t].rx.try_recv() {
                Ok(packet) => Some(packet.entry),
                Err(TryRecvError::Empty) => None,
                // A vanished victim is an engine bug; resolve the
                // migration anyway so shutdown cannot hang.
                Err(TryRecvError::Disconnected) => Some(None),
            };
            let Some(entry) = ready else { continue };
            let adoption = self.adoptions.remove(&t).expect("adoption present");
            if let Some(entry) = entry {
                self.tenants.insert(t, *entry);
                self.stolen = self.stolen.saturating_add(1);
                if regmon_telemetry::enabled() {
                    metrics::FLEET_STEALS.inc();
                    journal::record(journal::EventKind::Steal {
                        tenant: u64::from(t.0),
                        from_shard: adoption.from as u64,
                        to_shard: self.shard as u64,
                    });
                }
            }
            for msg in adoption.buffered {
                self.dispatch(msg);
            }
            shared.leases.settle(t);
            shared.gate.dec();
        }
    }

    /// One bounded steal attempt: pick the most backlogged peer above
    /// the threshold, pick its lowest-id settled tenant, and release it
    /// to ourselves. The lease flips inside the push gate, so the flip
    /// commits iff the `Release` lands; a timeout or stale gate aborts
    /// the steal with nothing changed.
    ///
    /// Victim preference is topology-aware: a peer whose CPU shares
    /// this worker's core complex (last-level cache) wins over a more
    /// backlogged peer on a different complex, because the stolen
    /// tenant's session state migrates through the shared cache instead
    /// of over the interconnect. Within a locality class, deepest
    /// backlog wins.
    fn try_steal(&mut self, shared: &WorkerShared) {
        if shared.stop_steal.load(Ordering::Relaxed) {
            return;
        }
        let my_complex = shared.topology.complex_of(shared.cpu_of_shard(self.shard));
        // (same_complex, depth) ranked lexicographically: locality
        // first, then backlog.
        let mut victim: Option<(usize, (bool, usize))> = None;
        for (s, queue) in shared.queues.iter().enumerate() {
            if s == self.shard {
                continue;
            }
            let depth = queue.len();
            if depth < shared.steal_backlog {
                continue;
            }
            let near = shared.topology.complex_of(shared.cpu_of_shard(s)) == my_complex;
            if victim.map_or(true, |(_, best)| (near, depth) > best) {
                victim = Some((s, (near, depth)));
            }
        }
        let Some((victim, _)) = victim else { return };
        let Some(t) = shared.leases.lowest_settled(victim) else {
            return;
        };
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.adoptions.insert(
            t,
            Adoption {
                rx,
                from: victim,
                buffered: Vec::new(),
            },
        );
        shared.gate.inc();
        let pushed = shared.queues[victim].push_checked_timeout(
            ShardMsg::Release(t, tx),
            QueuePolicy::Block,
            || shared.leases.flip_if(t, victim, self.shard),
            RELEASE_PUSH_TIMEOUT,
        );
        match pushed {
            Ok(()) => {} // lease flipped; entry will arrive on `rx`
            Err(PushError::Stale(_) | PushError::TimedOut(_) | PushError::Closed(_)) => {
                // Gate never ran or rejected: the lease is untouched.
                self.adoptions.remove(&t);
                shared.gate.dec();
            }
        }
    }

    /// Handles one message. Messages for a tenant whose adoption is
    /// pending are buffered and replayed at install; messages for a
    /// tenant this worker has never owned are ignored (shutdown and
    /// routing races).
    fn dispatch(&mut self, msg: ShardMsg) {
        // Tenant-addressed messages that raced ahead of an adoption wait
        // for the entry.
        if let Some(t) = routed_tenant(&msg) {
            if !self.tenants.contains_key(&t) {
                if let Some(adoption) = self.adoptions.get_mut(&t) {
                    adoption.buffered.push(msg);
                }
                return;
            }
        }
        match msg {
            ShardMsg::Admit(admit) => {
                let snapshot = admit.snapshot;
                let mut entry = TenantEntry {
                    name: admit.name,
                    workload_name: admit.workload_name,
                    config: admit.config,
                    binary: admit.binary,
                    fault: admit.fault,
                    throttle_us: admit.throttle_us,
                    state: TenantState::Running,
                    session: None,
                    frozen_summary: None,
                    intervals_processed: 0,
                    intervals_ignored: 0,
                    restarts: 0,
                };
                entry.session = Some(match snapshot {
                    Some(snap) => {
                        let mut session = MonitoringSession::from_snapshot(*snap);
                        session.attach_binary_image(entry.binary.clone());
                        session
                    }
                    None => entry.fresh_session(),
                });
                self.tenants.insert(admit.tenant, entry);
            }
            ShardMsg::Interval(id, interval) => {
                let entry = self.tenants.get_mut(&id).expect("routed tenant present");
                journal::set_tenant(u64::from(id.0));
                process_interval(entry, &interval);
                journal::set_tenant(0);
            }
            ShardMsg::Batch(id, intervals) => {
                let entry = self.tenants.get_mut(&id).expect("routed tenant present");
                journal::set_tenant(u64::from(id.0));
                process_batch(entry, &intervals);
                journal::set_tenant(0);
            }
            ShardMsg::Pause(id) => {
                let entry = self.tenants.get_mut(&id).expect("routed tenant present");
                if entry.state == TenantState::Running {
                    entry.state = TenantState::Paused;
                }
            }
            ShardMsg::Resume(id) => {
                let entry = self.tenants.get_mut(&id).expect("routed tenant present");
                if entry.state == TenantState::Paused {
                    entry.state = TenantState::Running;
                }
            }
            ShardMsg::Evict(id, reason) => {
                let entry = self.tenants.get_mut(&id).expect("routed tenant present");
                // A failed tenant stays failed (its error matters more
                // than the eviction); everyone else retires cleanly.
                if !matches!(entry.state, TenantState::Failed(_)) {
                    if let Some(session) = entry.session.take() {
                        entry.frozen_summary = Some(session.summary(&entry.workload_name));
                    }
                    entry.state = TenantState::Evicted(reason);
                }
            }
            ShardMsg::Restart(id) => {
                let entry = self.tenants.get_mut(&id).expect("routed tenant present");
                entry.session = Some(entry.fresh_session());
                entry.frozen_summary = None;
                entry.state = TenantState::Running;
                entry.intervals_processed = 0;
                entry.restarts += 1;
            }
            ShardMsg::Finish(id) => {
                let entry = self.tenants.get_mut(&id).expect("routed tenant present");
                if matches!(entry.state, TenantState::Running | TenantState::Paused) {
                    entry.state = TenantState::Completed;
                }
            }
            ShardMsg::Release(id, reply) => {
                // Hand the entry over. `entry: None` (we never owned it,
                // or a replayed Release after an abort) tells the
                // adopter there is nothing to install.
                let entry = self.tenants.remove(&id).map(Box::new);
                let _ = reply.send(MigrationPacket { entry });
            }
            ShardMsg::AdoptHandle(id, rx) => {
                // Lockstep rebalance: wait for the victim to release.
                if let Ok(packet) = rx.recv() {
                    if let Some(entry) = packet.entry {
                        self.tenants.insert(id, *entry);
                        self.stolen = self.stolen.saturating_add(1);
                    }
                }
            }
            ShardMsg::Snapshot(reply) => {
                let snap = ShardSnapshot {
                    shard: self.shard,
                    tenants: self.tenants.iter().map(|(id, e)| e.snapshot(*id)).collect(),
                    messages_processed: self.messages,
                };
                // The driver may have given up waiting; ignore send errors.
                let _ = reply.send(snap);
            }
            ShardMsg::Checkpoint(id, reply) => {
                // Freeze-and-retire: the session leaves this fleet with
                // the snapshot; the entry is gone from the final report
                // (the adopting server reports the tenant instead).
                // FIFO queue order guarantees every batch pushed before
                // the checkpoint request is already folded in.
                let packet = match self.tenants.get(&id) {
                    Some(entry) if entry.session.is_some() => {
                        let mut entry = self.tenants.remove(&id).expect("present");
                        let session = entry.session.take().expect("session checked");
                        Some(Box::new(session.snapshot()))
                    }
                    _ => None,
                };
                let _ = reply.send(packet);
            }
            ShardMsg::Peek(id, reply) => {
                // Same consistency argument as `Checkpoint`, but the
                // entry stays live: the snapshot is a pure read.
                let packet = self
                    .tenants
                    .get(&id)
                    .and_then(|entry| entry.session.as_ref())
                    .map(|session| Box::new(session.snapshot()));
                let _ = reply.send(packet);
            }
            ShardMsg::Barrier(reply) => {
                let _ = reply.send(());
            }
            ShardMsg::Hold(ack, gate) => {
                let _ = ack.send(());
                // Parked until the holder drops its sender (or sends).
                let _ = gate.recv();
            }
        }
    }
}

/// The tenant a message is addressed to, for adoption buffering.
/// `Admit` installs its own entry, `Release`, `Checkpoint` and `Peek`
/// answer `None`-on-unknown by design, and `AdoptHandle`/`Snapshot`/`Barrier`
/// are not tenant-state lookups — none of them buffer.
fn routed_tenant(msg: &ShardMsg) -> Option<TenantId> {
    match msg {
        ShardMsg::Interval(id, _)
        | ShardMsg::Batch(id, _)
        | ShardMsg::Pause(id)
        | ShardMsg::Resume(id)
        | ShardMsg::Evict(id, _)
        | ShardMsg::Restart(id)
        | ShardMsg::Finish(id) => Some(*id),
        ShardMsg::Admit(_)
        | ShardMsg::Release(..)
        | ShardMsg::AdoptHandle(..)
        | ShardMsg::Snapshot(_)
        | ShardMsg::Checkpoint(..)
        | ShardMsg::Peek(..)
        | ShardMsg::Barrier(_)
        | ShardMsg::Hold(..) => None,
    }
}

/// Runs one interval through a tenant's pipeline under quarantine.
fn process_interval(entry: &mut TenantEntry, interval: &Interval) {
    if entry.state != TenantState::Running {
        // Paused / evicted / failed / completed tenants ignore in-flight
        // intervals (the queue is FIFO per shard, so these only occur
        // when a lifecycle command raced an already-queued interval).
        entry.intervals_ignored = entry.intervals_ignored.saturating_add(1);
        return;
    }
    if entry.throttle_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(entry.throttle_us));
    }
    let injected = entry
        .fault
        .is_some_and(|f| entry.intervals_processed >= f.panic_after);
    let Some(session) = entry.session.as_mut() else {
        entry.intervals_ignored = entry.intervals_ignored.saturating_add(1);
        return;
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        assert!(
            !injected,
            "injected fault: tenant pipeline panicked after {} intervals",
            entry.intervals_processed
        );
        session.process_interval(interval);
    }));
    match outcome {
        Ok(()) => entry.intervals_processed = entry.intervals_processed.saturating_add(1),
        Err(payload) => {
            metrics::FLEET_PANICS.inc();
            let msg = panic_message(payload.as_ref());
            entry.state = TenantState::Failed(msg);
            entry.session = None; // the session may be mid-mutation; discard
        }
    }
}

/// Runs a coalesced batch through a tenant's pipeline via
/// [`MonitoringSession::run_batch`]. Counter-exact with calling
/// [`process_interval`] once per element: the fast path (no fault plan,
/// no throttle) takes one `catch_unwind` frame for the whole batch, and
/// a mid-batch panic reconstructs per-interval progress from the
/// session's interval counter, so the processed/ignored split matches
/// the per-interval path exactly.
fn process_batch(entry: &mut TenantEntry, intervals: &[Interval]) {
    if entry.state != TenantState::Running {
        entry.intervals_ignored = entry.intervals_ignored.saturating_add(intervals.len());
        return;
    }
    if entry.fault.is_some() || entry.throttle_us > 0 {
        // Fault injection checks the processed count per interval and
        // throttling sleeps per interval: take the exact legacy path.
        for interval in intervals {
            process_interval(entry, interval);
        }
        return;
    }
    let Some(session) = entry.session.as_mut() else {
        entry.intervals_ignored = entry.intervals_ignored.saturating_add(intervals.len());
        return;
    };
    let before = session.intervals();
    let outcome = catch_unwind(AssertUnwindSafe(|| session.run_batch(intervals)));
    match outcome {
        Ok(n) => entry.intervals_processed = entry.intervals_processed.saturating_add(n),
        Err(payload) => {
            metrics::FLEET_PANICS.inc();
            // `intervals()` bumps at interval start: the panicking
            // interval is counted there but completed nowhere.
            let done = (session.intervals() - before).saturating_sub(1);
            let msg = panic_message(payload.as_ref());
            entry.intervals_processed = entry.intervals_processed.saturating_add(done);
            entry.intervals_ignored = entry
                .intervals_ignored
                .saturating_add(intervals.len() - done - 1);
            entry.state = TenantState::Failed(msg);
            entry.session = None; // the session may be mid-mutation; discard
        }
    }
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "tenant pipeline panicked".to_string()
    }
}
