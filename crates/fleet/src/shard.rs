//! Shard workers: each owns the [`MonitoringSession`]s of the tenants
//! hashed to it and drains its bounded queue until shutdown.
//!
//! A worker is a plain consumer loop. All tenant mutation happens here,
//! single-threaded per shard, so sessions need no internal locking — the
//! fleet scales by adding shards, not by locking sessions.
//!
//! **Panic quarantine:** every per-interval pipeline step runs under
//! `catch_unwind`. A panicking tenant transitions to
//! [`TenantState::Failed`] and its session is discarded; the worker, its
//! queue and every co-resident tenant continue untouched. Nothing
//! propagates across tenants or shards.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::SyncSender;

use regmon::{MonitoringSession, SessionConfig, SessionSummary};
use regmon_binary::Binary;
use regmon_sampling::Interval;

use crate::queue::{Droppable, QueueStats};
use crate::tenant::{EvictReason, FaultPlan, TenantId, TenantState};

/// One message on a shard queue.
#[derive(Debug)]
pub(crate) enum ShardMsg {
    /// Registers a tenant on this shard.
    Admit(Box<AdmitMsg>),
    /// One sampled interval for a tenant.
    Interval(TenantId, Interval),
    /// Stops processing for a tenant (resumable).
    Pause(TenantId),
    /// Resumes a paused tenant.
    Resume(TenantId),
    /// Removes a tenant (session retired; summary retained).
    Evict(TenantId, EvictReason),
    /// Discards the tenant's session and starts a fresh one.
    Restart(TenantId),
    /// The tenant produced its last interval.
    Finish(TenantId),
    /// Requests a consistent snapshot of this shard's tenants.
    Snapshot(SyncSender<ShardSnapshot>),
    /// Lockstep pacing: acknowledge that every earlier message has been
    /// fully processed.
    Barrier(SyncSender<()>),
}

/// Payload of [`ShardMsg::Admit`] (boxed: it is much larger than the
/// other variants).
#[derive(Debug)]
pub(crate) struct AdmitMsg {
    pub tenant: TenantId,
    pub name: String,
    pub config: SessionConfig,
    pub binary: Binary,
    pub workload_name: String,
    pub fault: Option<FaultPlan>,
    pub throttle_us: u64,
}

impl Droppable for ShardMsg {
    fn droppable(&self) -> bool {
        // Only interval payloads may be sacrificed under DropOldest;
        // losing a control message would corrupt lifecycle state.
        matches!(self, ShardMsg::Interval(..))
    }
}

/// Point-in-time view of one tenant, as seen by its shard.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The tenant.
    pub id: TenantId,
    /// Its display name.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub state: TenantState,
    /// Intervals fully processed by the pipeline (post-restart count).
    pub intervals_processed: usize,
    /// Intervals ignored (arrived while paused/evicted/failed).
    pub intervals_ignored: usize,
    /// Times the tenant was restarted with a fresh session.
    pub restarts: usize,
    /// The session summary (live sessions are summarized on demand;
    /// `None` only for a failed tenant whose session was discarded).
    pub summary: Option<SessionSummary>,
    /// Panic message for failed tenants.
    pub error: Option<String>,
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Every tenant ever admitted to this shard, in id order.
    pub tenants: Vec<TenantSnapshot>,
    /// Messages processed so far.
    pub messages_processed: usize,
}

/// Final report of a shard worker, produced at shutdown.
#[derive(Debug, Clone)]
pub struct ShardFinal {
    /// Shard index.
    pub shard: usize,
    /// Final tenant snapshots, in id order.
    pub tenants: Vec<TenantSnapshot>,
    /// Messages processed over the shard's lifetime.
    pub messages_processed: usize,
    /// Queue backpressure counters (freerun pacing; all zero under
    /// lockstep pacing, where the driver accounts deterministically).
    pub queue: QueueStats,
}

/// Per-tenant state owned by a worker.
#[derive(Debug)]
struct TenantEntry {
    name: String,
    workload_name: String,
    config: SessionConfig,
    binary: Binary,
    fault: Option<FaultPlan>,
    throttle_us: u64,
    state: TenantState,
    session: Option<MonitoringSession>,
    /// Summary frozen at eviction time (session retired).
    frozen_summary: Option<SessionSummary>,
    intervals_processed: usize,
    intervals_ignored: usize,
    restarts: usize,
}

impl TenantEntry {
    fn fresh_session(&self) -> MonitoringSession {
        let mut session = MonitoringSession::new(self.config.clone());
        session.attach_binary_image(self.binary.clone());
        session
    }

    fn snapshot(&self, id: TenantId) -> TenantSnapshot {
        let summary = match (&self.session, &self.frozen_summary) {
            (Some(s), _) => Some(s.summary(&self.workload_name)),
            (None, Some(frozen)) => Some(frozen.clone()),
            (None, None) => None,
        };
        TenantSnapshot {
            id,
            name: self.name.clone(),
            state: self.state.clone(),
            intervals_processed: self.intervals_processed,
            intervals_ignored: self.intervals_ignored,
            restarts: self.restarts,
            summary,
            error: match &self.state {
                TenantState::Failed(msg) => Some(msg.clone()),
                _ => None,
            },
        }
    }
}

/// The worker loop for shard `shard`. Runs until the queue is closed and
/// drained, then reports its final state.
pub(crate) fn run_worker(shard: usize, queue: &crate::queue::BoundedQueue<ShardMsg>) -> ShardFinal {
    let mut tenants: BTreeMap<TenantId, TenantEntry> = BTreeMap::new();
    let mut messages = 0usize;

    while let Some(msg) = queue.pop() {
        messages += 1;
        match msg {
            ShardMsg::Admit(admit) => {
                let entry = TenantEntry {
                    name: admit.name,
                    workload_name: admit.workload_name,
                    config: admit.config,
                    binary: admit.binary,
                    fault: admit.fault,
                    throttle_us: admit.throttle_us,
                    state: TenantState::Running,
                    session: None,
                    frozen_summary: None,
                    intervals_processed: 0,
                    intervals_ignored: 0,
                    restarts: 0,
                };
                let mut entry = entry;
                entry.session = Some(entry.fresh_session());
                tenants.insert(admit.tenant, entry);
            }
            ShardMsg::Interval(id, interval) => {
                if let Some(entry) = tenants.get_mut(&id) {
                    process_interval(entry, &interval);
                }
            }
            ShardMsg::Pause(id) => {
                if let Some(entry) = tenants.get_mut(&id) {
                    if entry.state == TenantState::Running {
                        entry.state = TenantState::Paused;
                    }
                }
            }
            ShardMsg::Resume(id) => {
                if let Some(entry) = tenants.get_mut(&id) {
                    if entry.state == TenantState::Paused {
                        entry.state = TenantState::Running;
                    }
                }
            }
            ShardMsg::Evict(id, reason) => {
                if let Some(entry) = tenants.get_mut(&id) {
                    // A failed tenant stays failed (its error matters more
                    // than the eviction); everyone else retires cleanly.
                    if !matches!(entry.state, TenantState::Failed(_)) {
                        if let Some(session) = entry.session.take() {
                            entry.frozen_summary = Some(session.summary(&entry.workload_name));
                        }
                        entry.state = TenantState::Evicted(reason);
                    }
                }
            }
            ShardMsg::Restart(id) => {
                if let Some(entry) = tenants.get_mut(&id) {
                    entry.session = Some(entry.fresh_session());
                    entry.frozen_summary = None;
                    entry.state = TenantState::Running;
                    entry.intervals_processed = 0;
                    entry.restarts += 1;
                }
            }
            ShardMsg::Finish(id) => {
                if let Some(entry) = tenants.get_mut(&id) {
                    if matches!(entry.state, TenantState::Running | TenantState::Paused) {
                        entry.state = TenantState::Completed;
                    }
                }
            }
            ShardMsg::Snapshot(reply) => {
                let snap = ShardSnapshot {
                    shard,
                    tenants: tenants.iter().map(|(id, e)| e.snapshot(*id)).collect(),
                    messages_processed: messages,
                };
                // The driver may have given up waiting; ignore send errors.
                let _ = reply.send(snap);
            }
            ShardMsg::Barrier(reply) => {
                let _ = reply.send(());
            }
        }
    }

    ShardFinal {
        shard,
        tenants: tenants.iter().map(|(id, e)| e.snapshot(*id)).collect(),
        messages_processed: messages,
        queue: queue.stats(),
    }
}

/// Runs one interval through a tenant's pipeline under quarantine.
fn process_interval(entry: &mut TenantEntry, interval: &Interval) {
    if entry.state != TenantState::Running {
        // Paused / evicted / failed / completed tenants ignore in-flight
        // intervals (the queue is FIFO per shard, so these only occur
        // when a lifecycle command raced an already-queued interval).
        entry.intervals_ignored += 1;
        return;
    }
    if entry.throttle_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(entry.throttle_us));
    }
    let injected = entry
        .fault
        .is_some_and(|f| entry.intervals_processed >= f.panic_after);
    let Some(session) = entry.session.as_mut() else {
        entry.intervals_ignored += 1;
        return;
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        assert!(
            !injected,
            "injected fault: tenant pipeline panicked after {} intervals",
            entry.intervals_processed
        );
        session.process_interval(interval);
    }));
    match outcome {
        Ok(()) => entry.intervals_processed += 1,
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            entry.state = TenantState::Failed(msg);
            entry.session = None; // the session may be mid-mutation; discard
        }
    }
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "tenant pipeline panicked".to_string()
    }
}
