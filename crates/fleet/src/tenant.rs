//! Tenant identity, specification and lifecycle states.

use regmon::{PruningConfig, SessionConfig};
use regmon_workload::Workload;

/// Identifies one tenant (one simulated monitored process) in a fleet.
///
/// Tenant ids are dense and assigned at admission; a tenant is served by
/// shard `id % shards` (see [`TenantId::shard`]), which makes placement a
/// pure function of the id — deterministic across runs and machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The shard serving this tenant in a fleet of `shards` shards.
    #[must_use]
    pub fn shard(self, shards: usize) -> usize {
        assert!(shards > 0, "fleet needs at least one shard");
        self.0 as usize % shards
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Where a tenant is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantState {
    /// Producing and processing intervals.
    Running,
    /// Admitted but temporarily not producing (resumable).
    Paused,
    /// Ran out of workload (all intervals produced and processed).
    Completed,
    /// Removed from the fleet.
    Evicted(EvictReason),
    /// Its pipeline panicked; the tenant is quarantined, the shard and
    /// every other tenant keep running. The payload is the panic message.
    Failed(String),
}

impl TenantState {
    /// Stable lower-case label (used by reports and JSON output).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Running => "running",
            Self::Paused => "paused",
            Self::Completed => "completed",
            Self::Evicted(_) => "evicted",
            Self::Failed(_) => "failed",
        }
    }
}

/// Why a tenant was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// An explicit lifecycle command (operator / schedule).
    Requested,
    /// The cold-tenant policy fired: too many consecutive intervals
    /// below the sample floor.
    Cold,
}

/// Cold-tenant pruning policy.
///
/// This deliberately reuses the *session's* region-pruning policy shape
/// ([`PruningConfig`]) one level up: a tenant whose intervals carry fewer
/// than `min_samples` samples for `cold_intervals` consecutive intervals
/// is evicted from the fleet, exactly as a region with too few samples
/// for too long is evicted from the region monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdTenantPolicy(pub PruningConfig);

impl ColdTenantPolicy {
    /// Policy evicting after `cold_intervals` consecutive intervals with
    /// fewer than `min_samples` samples.
    #[must_use]
    pub fn new(cold_intervals: usize, min_samples: u64) -> Self {
        Self(PruningConfig {
            cold_intervals,
            min_samples,
        })
    }
}

/// Deterministic fault injection for chaos/stress testing: makes the
/// tenant's *analysis pipeline* panic inside its shard worker once it has
/// processed exactly `panic_after` intervals. Used to verify that a
/// panicking tenant is quarantined instead of taking its shard down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Number of intervals processed successfully before the panic.
    pub panic_after: usize,
}

/// Everything needed to admit one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable name (reports; need not be unique).
    pub name: String,
    /// The simulated process to monitor.
    pub workload: Workload,
    /// Per-tenant monitoring-session configuration.
    pub config: SessionConfig,
    /// Upper bound on intervals produced for this tenant.
    pub max_intervals: usize,
    /// Optional deterministic fault injection (testing).
    pub fault: Option<FaultPlan>,
    /// Optional artificial per-interval processing delay in microseconds
    /// (testing/chaos: makes a shard worker measurably slower than its
    /// producer so backpressure paths actually trigger).
    pub throttle_us: u64,
    /// Optional planted regression: from this interval index on, the
    /// driver deterministically perturbs the tenant's sample PCs out of
    /// the monitored address space, so UCR steps up and region
    /// correlations collapse — the ground truth the change-point
    /// detector is expected to find.
    pub degrade_from: Option<usize>,
}

impl TenantSpec {
    /// A plain tenant: no faults, no throttle.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        workload: Workload,
        config: SessionConfig,
        max_intervals: usize,
    ) -> Self {
        Self {
            name: name.into(),
            workload,
            config,
            max_intervals,
            fault: None,
            throttle_us: 0,
            degrade_from: None,
        }
    }

    /// Adds a deterministic panic after `n` processed intervals.
    #[must_use]
    pub fn with_fault(mut self, panic_after: usize) -> Self {
        self.fault = Some(FaultPlan { panic_after });
        self
    }

    /// Adds an artificial per-interval processing delay.
    #[must_use]
    pub fn with_throttle_us(mut self, us: u64) -> Self {
        self.throttle_us = us;
        self
    }

    /// Plants a deterministic regression starting at interval `index`.
    #[must_use]
    pub fn with_degrade_from(mut self, index: usize) -> Self {
        self.degrade_from = Some(index);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_placement_is_modular_and_deterministic() {
        for shards in 1..9 {
            for id in 0..64 {
                let t = TenantId(id);
                assert_eq!(t.shard(shards), id as usize % shards);
                assert_eq!(t.shard(shards), t.shard(shards));
            }
        }
    }

    #[test]
    fn state_labels_are_stable() {
        assert_eq!(TenantState::Running.label(), "running");
        assert_eq!(TenantState::Evicted(EvictReason::Cold).label(), "evicted");
        assert_eq!(TenantState::Failed("boom".into()).label(), "failed");
    }
}
