//! Adaptive analysis-window resizing for the centroid detector.
//!
//! The paper's related work (§4) highlights Nagpurkar et al., *"Online
//! Phase Detection Algorithms"* (CGO 2006): constant-size profile windows
//! are a liability, and *adaptive window resizing* — growing the window
//! while the phase is stable, snapping back on a change — is more
//! accurate. This module layers that idea over [`CentroidDetector`]:
//! buffers are accumulated into an *analysis window* of `1..=max_buffers`
//! buffers; each stable verdict doubles the window (more smoothing, less
//! sensitivity to sampling artifacts), any instability resets it to one
//! buffer (fast response to real changes).

use regmon_sampling::PcSample;

use crate::{CentroidDetector, GpdConfig, GpdObservation, PhaseStats};

/// Configuration of the adaptive-window wrapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveWindowConfig {
    /// The wrapped centroid detector's parameters.
    pub gpd: GpdConfig,
    /// Maximum analysis-window length in buffers.
    pub max_buffers: usize,
}

impl Default for AdaptiveWindowConfig {
    fn default() -> Self {
        Self {
            gpd: GpdConfig::default(),
            max_buffers: 8,
        }
    }
}

/// A centroid detector with an adaptive analysis window.
///
/// # Example
///
/// ```
/// use regmon_gpd::adaptive::{AdaptiveWindowConfig, AdaptiveWindowDetector};
/// use regmon_sampling::PcSample;
/// use regmon_binary::Addr;
///
/// let mut det = AdaptiveWindowDetector::new(AdaptiveWindowConfig::default());
/// for i in 0..64u64 {
///     let samples: Vec<PcSample> = (0..32)
///         .map(|k| PcSample { addr: Addr::new(0x4000 + k * 4), cycle: i * 100 + k })
///         .collect();
///     det.observe_buffer(&samples);
/// }
/// assert!(det.is_stable());
/// assert!(det.window_buffers() > 1); // the window grew while stable
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveWindowDetector {
    config: AdaptiveWindowConfig,
    inner: CentroidDetector,
    window: Vec<PcSample>,
    buffered: usize,
    window_buffers: usize,
    /// Buffer-weighted statistics: a verdict over an n-buffer window
    /// counts n intervals, so stable fractions are comparable with the
    /// fixed-window detector's.
    stats: PhaseStats,
}

impl AdaptiveWindowDetector {
    /// Creates a detector with a one-buffer window.
    ///
    /// # Panics
    ///
    /// Panics if `max_buffers == 0`.
    #[must_use]
    pub fn new(config: AdaptiveWindowConfig) -> Self {
        assert!(config.max_buffers > 0, "window needs at least one buffer");
        Self {
            inner: CentroidDetector::new(config.gpd),
            config,
            window: Vec::new(),
            buffered: 0,
            window_buffers: 1,
            stats: PhaseStats::default(),
        }
    }

    /// Current analysis-window length, in buffers.
    #[must_use]
    pub fn window_buffers(&self) -> usize {
        self.window_buffers
    }

    /// `true` while the underlying detector's phase is stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.inner.is_stable()
    }

    /// Buffer-weighted lifetime statistics (an n-buffer window's verdict
    /// counts n intervals), directly comparable with
    /// [`CentroidDetector::stats`].
    #[must_use]
    pub fn stats(&self) -> PhaseStats {
        self.stats
    }

    /// Feeds one buffer-overflow interval's samples.
    ///
    /// Returns the underlying observation when this buffer completed an
    /// analysis window, `None` while the window is still filling.
    pub fn observe_buffer(&mut self, samples: &[PcSample]) -> Option<GpdObservation> {
        self.window.extend_from_slice(samples);
        self.buffered += 1;
        if self.buffered < self.window_buffers {
            return None;
        }
        let obs = self.inner.observe(&self.window);
        let buffers = self.buffered;
        self.window.clear();
        self.buffered = 0;
        if let Some(o) = obs {
            self.stats.intervals += buffers;
            if o.state_after.is_stable() {
                self.stats.stable_intervals += buffers;
                self.window_buffers = (self.window_buffers * 2).min(self.config.max_buffers);
            } else {
                self.window_buffers = 1;
            }
            if o.phase_changed {
                self.stats.phase_changes += 1;
            }
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::Addr;

    fn buffer(center: u64, n: u64, tick: u64) -> Vec<PcSample> {
        (0..n)
            .map(|k| PcSample {
                addr: Addr::new(center - 64 + k * 2),
                cycle: tick * 1000 + k,
            })
            .collect()
    }

    #[test]
    fn window_grows_while_stable_and_caps() {
        let mut det = AdaptiveWindowDetector::new(AdaptiveWindowConfig::default());
        for i in 0..200 {
            det.observe_buffer(&buffer(0x40000, 64, i));
        }
        assert!(det.is_stable());
        assert_eq!(det.window_buffers(), 8);
    }

    #[test]
    fn window_snaps_back_on_instability() {
        let mut det = AdaptiveWindowDetector::new(AdaptiveWindowConfig::default());
        for i in 0..64 {
            det.observe_buffer(&buffer(0x40000, 64, i));
        }
        assert!(det.window_buffers() > 1);
        // A huge jump, repeated until the (possibly mid-fill) window
        // completes and the first unstable verdict lands.
        for i in 0..16 {
            if let Some(obs) = det.observe_buffer(&buffer(0x70000, 64, 100 + i)) {
                if !obs.state_after.is_stable() {
                    break;
                }
            }
        }
        assert_eq!(det.window_buffers(), 1, "window must snap back");
        assert!(!det.is_stable());
    }

    #[test]
    fn observation_only_on_window_completion() {
        let mut det = AdaptiveWindowDetector::new(AdaptiveWindowConfig::default());
        // Stabilize; the window grows to >1 buffers.
        for i in 0..64 {
            det.observe_buffer(&buffer(0x40000, 64, i));
        }
        let w = det.window_buffers();
        assert!(w > 1);
        // The first w-1 buffers of the next window return None.
        let mut verdicts = 0;
        for i in 0..w {
            if det
                .observe_buffer(&buffer(0x40000, 64, 500 + i as u64))
                .is_some()
            {
                verdicts += 1;
            }
        }
        assert_eq!(verdicts, 1);
    }

    #[test]
    fn smooths_fast_alternation_better_than_fixed_window() {
        // A steady warm-up (both detectors stabilize; the adaptive window
        // grows), then a working set flipping every buffer with a spread
        // too wide for the fixed detector's band-thickness check. The
        // grown window averages each flip pair away and stays stable.
        let mut fixed = CentroidDetector::new(GpdConfig::default());
        let mut adaptive = AdaptiveWindowDetector::new(AdaptiveWindowConfig::default());
        for i in 0..64u64 {
            let buf = buffer(0x40000, 64, i);
            fixed.observe(&buf);
            adaptive.observe_buffer(&buf);
        }
        assert!(fixed.is_stable() && adaptive.is_stable());
        for i in 64..256u64 {
            let c = if i % 2 == 0 { 0x34000 } else { 0x4c000 }; // ±18%
            let buf = buffer(c, 64, i);
            fixed.observe(&buf);
            adaptive.observe_buffer(&buf);
        }
        assert!(adaptive.is_stable(), "averaged windows must stay stable");
        let fixed_frac = fixed.stats().stable_fraction();
        let adaptive_frac = adaptive.stats().stable_fraction();
        assert!(
            adaptive_frac > fixed_frac,
            "adaptive {adaptive_frac} vs fixed {fixed_frac}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_max_buffers_panics() {
        let _ = AdaptiveWindowDetector::new(AdaptiveWindowConfig {
            max_buffers: 0,
            ..AdaptiveWindowConfig::default()
        });
    }
}
