//! Global Phase Detection (GPD): the centroid approach of paper §2.
//!
//! The premise: the mean ("centroid") of the program-counter samples in
//! one buffer does not deviate much while the program stays in one phase;
//! when it deviates, the working set probably changed. The detector keeps
//! a history of centroids, forms the *band of stability* `[E − SD, E + SD]`
//! from the history's expectation `E` and standard deviation `SD`, and
//! measures each new centroid's drift `Δ` outside that band. A small state
//! machine (paper Figure 1) with empirically-chosen thresholds
//! `TH1..TH4 = 1%, 5%, 10%, 67%` (fractions of `E`) and a stabilization
//! timer decides between *unstable*, *less stable* and *stable*.
//!
//! The exact transition wiring of the paper's Figure 1 is only partially
//! legible in the text; the reconstruction implemented here (documented on
//! [`CentroidDetector::observe`]) preserves every stated property:
//! centroid-per-overflow, BOS from history, Δ-drift thresholds, the
//! `SD < E/6` band-thickness check guarding departure from the unstable
//! state, and a timer before the stable state is entered.
//!
//! # Example
//!
//! ```
//! use regmon_gpd::{CentroidDetector, GpdConfig};
//! use regmon_sampling::PcSample;
//! use regmon_binary::Addr;
//!
//! let mut det = CentroidDetector::new(GpdConfig::default());
//! // A steady stream of buffers centred at the same address stabilizes.
//! for i in 0..16u64 {
//!     let samples: Vec<PcSample> = (0..64)
//!         .map(|k| PcSample { addr: Addr::new(0x40000 + (k % 32) * 4), cycle: i * 1000 + k })
//!         .collect();
//!     det.observe(&samples);
//! }
//! assert!(det.is_stable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adaptive;
pub mod perf;

use std::collections::VecDeque;

use regmon_sampling::PcSample;

/// Configuration of the centroid detector.
///
/// Defaults are the paper's empirical values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpdConfig {
    /// Number of past centroids forming the band of stability (history
    /// window).
    pub history_len: usize,
    /// TH1 = 1%: relative drift at or below this counts as "in band" for
    /// the stabilization timer.
    pub th1: f64,
    /// TH2 = 5%: relative drift at or below this is tolerated without
    /// resetting stabilization progress.
    pub th2: f64,
    /// TH3 = 10%: relative drift at or above this knocks a stable phase
    /// back to less-stable (and resets the timer when less-stable).
    pub th3: f64,
    /// TH4 = 67%: relative drift at or above this forces the unstable
    /// state from anywhere.
    pub th4: f64,
    /// Consecutive low-drift intervals required in the less-stable state
    /// before declaring the phase stable.
    pub stable_timer: usize,
    /// The band-thickness guard: `SD < E * max_band_ratio` must hold
    /// before the detector may leave the unstable state (paper: SD less
    /// than 1/6 of E).
    pub max_band_ratio: f64,
}

impl Default for GpdConfig {
    fn default() -> Self {
        Self {
            history_len: 4,
            th1: 0.01,
            th2: 0.05,
            th3: 0.10,
            th4: 0.67,
            stable_timer: 2,
            max_band_ratio: 1.0 / 6.0,
        }
    }
}

/// The detector's phase state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpdState {
    /// The centroid is drifting; no phase is established.
    Unstable,
    /// The centroid has settled but the stabilization timer is still
    /// running.
    LessStable,
    /// An established stable phase.
    Stable,
}

impl GpdState {
    /// `true` only for [`GpdState::Stable`].
    #[must_use]
    pub fn is_stable(self) -> bool {
        matches!(self, Self::Stable)
    }

    /// The state's display name, as used in telemetry events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Unstable => "Unstable",
            Self::LessStable => "LessStable",
            Self::Stable => "Stable",
        }
    }
}

/// What [`CentroidDetector::observe`] saw and decided for one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpdObservation {
    /// The interval's centroid (mean sampled PC).
    pub centroid: f64,
    /// Drift outside the band of stability, relative to `E`
    /// (0 when inside the band or when no band exists yet).
    pub relative_drift: f64,
    /// State before this interval.
    pub state_before: GpdState,
    /// State after this interval.
    pub state_after: GpdState,
    /// `true` when stability flipped (stable ↔ not-stable) — the event
    /// counted as a *phase change* throughout the evaluation.
    pub phase_changed: bool,
}

/// Lifetime statistics of a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Intervals observed.
    pub intervals: usize,
    /// Intervals spent in the stable state (after the transition).
    pub stable_intervals: usize,
    /// Number of stability flips (stable ↔ not-stable).
    pub phase_changes: usize,
}

impl PhaseStats {
    /// Fraction of observed intervals spent stable, in `[0, 1]`.
    #[must_use]
    pub fn stable_fraction(&self) -> f64 {
        if self.intervals == 0 {
            return 0.0;
        }
        self.stable_intervals as f64 / self.intervals as f64
    }
}

/// The centroid-based global phase detector.
#[derive(Debug, Clone)]
pub struct CentroidDetector {
    config: GpdConfig,
    history: VecDeque<f64>,
    state: GpdState,
    timer: usize,
    stats: PhaseStats,
}

impl CentroidDetector {
    /// Creates a detector in the unstable state with an empty history.
    #[must_use]
    pub fn new(config: GpdConfig) -> Self {
        Self {
            config,
            history: VecDeque::with_capacity(config.history_len),
            state: GpdState::Unstable,
            timer: 0,
            stats: PhaseStats::default(),
        }
    }

    /// The detector's configuration.
    #[must_use]
    pub fn config(&self) -> &GpdConfig {
        &self.config
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> GpdState {
        self.state
    }

    /// `true` when the current phase is stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.state.is_stable()
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> PhaseStats {
        self.stats
    }

    /// Processes one buffer-overflow interval.
    ///
    /// Transition rules (δ = relative drift outside the band):
    ///
    /// * anywhere: δ ≥ TH4 ⇒ **unstable**;
    /// * **unstable** → less-stable when δ ≤ TH1 *and* the band is thin
    ///   enough (`SD < E/6`);
    /// * **less-stable**: δ ≥ TH3 ⇒ unstable (timer reset); δ ≤ TH1
    ///   advances the timer and promotes to **stable** once it expires;
    ///   drift between TH1 and TH3 holds the state without progress;
    /// * **stable**: δ ≥ TH3 ⇒ less-stable; δ ≥ TH2 merely holds (the
    ///   band re-learns); otherwise stays stable.
    ///
    /// Returns `None` for an empty interval (no samples), which leaves the
    /// detector untouched.
    pub fn observe(&mut self, samples: &[PcSample]) -> Option<GpdObservation> {
        let centroid = centroid(samples)?;
        let state_before = self.state;

        // Band of stability from the *previous* centroids.
        let (delta_rel, band_thin) = match band(&self.history) {
            Some((e, sd)) if e > 0.0 => {
                let lo = e - sd;
                let hi = e + sd;
                let delta = if centroid < lo {
                    lo - centroid
                } else if centroid > hi {
                    centroid - hi
                } else {
                    0.0
                };
                (delta / e, sd < e * self.config.max_band_ratio)
            }
            _ => (0.0, false), // no band yet: stay unstable, learn
        };

        let has_band = self.history.len() >= 2;
        // No band yet (still learning) or a TH4-sized jump: unstable.
        let next = if !has_band || delta_rel >= self.config.th4 {
            GpdState::Unstable
        } else {
            match self.state {
                GpdState::Unstable => {
                    if delta_rel <= self.config.th1 && band_thin {
                        self.timer = 0;
                        GpdState::LessStable
                    } else {
                        GpdState::Unstable
                    }
                }
                GpdState::LessStable => {
                    if delta_rel >= self.config.th3 {
                        self.timer = 0;
                        GpdState::Unstable
                    } else if delta_rel <= self.config.th1 {
                        self.timer += 1;
                        if self.timer >= self.config.stable_timer {
                            GpdState::Stable
                        } else {
                            GpdState::LessStable
                        }
                    } else {
                        GpdState::LessStable
                    }
                }
                GpdState::Stable => {
                    if delta_rel >= self.config.th3 {
                        self.timer = 0;
                        GpdState::LessStable
                    } else {
                        GpdState::Stable
                    }
                }
            }
        };

        let phase_changed = state_before.is_stable() != next.is_stable();
        self.state = next;

        // Update history with the new centroid.
        if self.history.len() == self.config.history_len {
            self.history.pop_front();
        }
        self.history.push_back(centroid);

        // Stats.
        self.stats.intervals += 1;
        if next.is_stable() {
            self.stats.stable_intervals += 1;
        }
        if phase_changed {
            self.stats.phase_changes += 1;
        }

        if regmon_telemetry::enabled() {
            if state_before != next {
                regmon_telemetry::metrics::GPD_TRANSITIONS.inc();
                regmon_telemetry::journal::record(
                    regmon_telemetry::journal::EventKind::GpdTransition {
                        from: state_before.name(),
                        to: next.name(),
                        drift: delta_rel,
                        phase_change: phase_changed,
                    },
                );
            }
            if phase_changed {
                regmon_telemetry::metrics::GPD_PHASE_CHANGES.inc();
            }
        }

        Some(GpdObservation {
            centroid,
            relative_drift: delta_rel,
            state_before,
            state_after: next,
            phase_changed,
        })
    }
}

/// Plain-data image of a [`CentroidDetector`]'s mutable state, the
/// unit the serve-mode snapshot format serializes. Everything a fresh
/// detector needs beyond its [`GpdConfig`] (which the session config
/// already carries) is here; floats round-trip exactly when stored as
/// raw bits, so a restored detector is bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct GpdSnapshot {
    /// Centroid history, oldest first (at most `history_len` entries).
    pub history: Vec<f64>,
    /// State-machine position.
    pub state: GpdState,
    /// Stabilization-timer progress.
    pub timer: usize,
    /// Lifetime statistics.
    pub stats: PhaseStats,
}

impl CentroidDetector {
    /// Exports the detector's mutable state for checkpointing.
    #[must_use]
    pub fn export(&self) -> GpdSnapshot {
        GpdSnapshot {
            history: self.history.iter().copied().collect(),
            state: self.state,
            timer: self.timer,
            stats: self.stats,
        }
    }

    /// Rebuilds a detector from an exported snapshot. The result
    /// observes future intervals exactly as the original would have:
    /// `restore(c, d.export())` is behaviorally identical to `d`.
    #[must_use]
    pub fn restore(config: GpdConfig, snapshot: GpdSnapshot) -> Self {
        let mut history = VecDeque::with_capacity(config.history_len);
        history.extend(snapshot.history);
        Self {
            config,
            history,
            state: snapshot.state,
            timer: snapshot.timer,
            stats: snapshot.stats,
        }
    }
}

/// The mean sampled PC of one interval, or `None` when empty.
#[must_use]
pub fn centroid(samples: &[PcSample]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let sum: f64 = samples.iter().map(|s| s.addr.get() as f64).sum();
    Some(sum / samples.len() as f64)
}

/// Expectation and standard deviation of the centroid history, or `None`
/// below two entries.
fn band(history: &VecDeque<f64>) -> Option<(f64, f64)> {
    if history.len() < 2 {
        return None;
    }
    let n = history.len() as f64;
    let e: f64 = history.iter().sum::<f64>() / n;
    let var: f64 = history.iter().map(|c| (c - e) * (c - e)).sum::<f64>() / n;
    Some((e, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::Addr;

    /// A buffer of `n` samples spread ±`spread` around `center`.
    fn buffer(center: u64, spread: u64, n: u64) -> Vec<PcSample> {
        (0..n)
            .map(|k| PcSample {
                addr: Addr::new(center - spread + (k * 2 * spread.max(1) / n.max(1))),
                cycle: k,
            })
            .collect()
    }

    fn feed(det: &mut CentroidDetector, center: u64, times: usize) {
        for _ in 0..times {
            det.observe(&buffer(center, 64, 64));
        }
    }

    #[test]
    fn empty_interval_is_ignored() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        assert!(det.observe(&[]).is_none());
        assert_eq!(det.stats().intervals, 0);
    }

    #[test]
    fn centroid_of_buffer() {
        let samples = vec![
            PcSample {
                addr: Addr::new(100),
                cycle: 0,
            },
            PcSample {
                addr: Addr::new(300),
                cycle: 1,
            },
        ];
        assert_eq!(centroid(&samples), Some(200.0));
    }

    #[test]
    fn starts_unstable() {
        let det = CentroidDetector::new(GpdConfig::default());
        assert_eq!(det.state(), GpdState::Unstable);
        assert!(!det.is_stable());
    }

    #[test]
    fn steady_stream_stabilizes() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        feed(&mut det, 0x40000, 16);
        assert!(det.is_stable());
        // Exactly one phase change: entering stable.
        assert_eq!(det.stats().phase_changes, 1);
    }

    #[test]
    fn stabilization_respects_timer() {
        let cfg = GpdConfig {
            stable_timer: 6,
            ..GpdConfig::default()
        };
        let mut det = CentroidDetector::new(cfg);
        // 2 to build band + 1 to enter less-stable + 5 ticks: still not stable.
        feed(&mut det, 0x40000, 8);
        assert!(!det.is_stable());
        feed(&mut det, 0x40000, 4);
        assert!(det.is_stable());
    }

    #[test]
    fn huge_jump_destabilizes() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        feed(&mut det, 0x40000, 16);
        assert!(det.is_stable());
        // A 75% jump in centroid: beyond TH4.
        let obs = det.observe(&buffer(0x70000, 64, 64)).unwrap();
        assert_eq!(obs.state_after, GpdState::Unstable);
        assert!(obs.phase_changed);
    }

    #[test]
    fn moderate_jump_goes_less_stable() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        feed(&mut det, 0x40000, 16);
        assert!(det.is_stable());
        // ~12% jump: beyond TH3, below TH4.
        let obs = det.observe(&buffer(0x48000, 64, 64)).unwrap();
        assert_eq!(obs.state_after, GpdState::LessStable);
        assert!(obs.phase_changed);
    }

    #[test]
    fn small_drift_keeps_stable() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        feed(&mut det, 0x40000, 16);
        // 2% drift: inside TH3.
        let obs = det.observe(&buffer(0x41400, 64, 64)).unwrap();
        assert_eq!(obs.state_after, GpdState::Stable);
        assert!(!obs.phase_changed);
    }

    #[test]
    fn restabilizes_after_jump() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        feed(&mut det, 0x40000, 16);
        feed(&mut det, 0x70000, 20);
        assert!(det.is_stable());
        assert_eq!(det.stats().phase_changes, 3); // in, out, in
    }

    #[test]
    fn alternating_centroids_thrash() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        // Alternate far apart every 4 intervals: never enough quiet time.
        for i in 0..64 {
            let c = if (i / 4) % 2 == 0 { 0x40000 } else { 0x70000 };
            det.observe(&buffer(c, 64, 64));
        }
        let stats = det.stats();
        assert!(
            stats.stable_fraction() < 0.5,
            "stable fraction {}",
            stats.stable_fraction()
        );
    }

    #[test]
    fn wide_scatter_blocks_stabilization() {
        // Samples scattered so widely that SD of centroids stays large
        // relative to E: the band-thickness check must block stability.
        let mut det = CentroidDetector::new(GpdConfig::default());
        for i in 0..32u64 {
            // Centroid bounces ±40% around 0x40000.
            let c = if i % 2 == 0 { 0x26000 } else { 0x5a000 };
            det.observe(&buffer(c, 64, 64));
        }
        assert!(!det.is_stable());
        assert_eq!(det.stats().phase_changes, 0);
    }

    #[test]
    fn stable_fraction_of_fresh_detector_is_zero() {
        let det = CentroidDetector::new(GpdConfig::default());
        assert_eq!(det.stats().stable_fraction(), 0.0);
    }

    #[test]
    fn snapshot_roundtrip_continues_identically() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        feed(&mut det, 0x40000, 9);
        let mut restored = CentroidDetector::restore(*det.config(), det.export());
        // Drive both through the same future: a phase change and
        // restabilization. Every observation must match exactly.
        for i in 0..24u64 {
            let c = if i < 4 { 0x70000 } else { 0x40000 };
            assert_eq!(
                det.observe(&buffer(c, 64, 64)),
                restored.observe(&buffer(c, 64, 64))
            );
        }
        assert_eq!(det.stats(), restored.stats());
        assert_eq!(det.export(), restored.export());
    }

    #[test]
    fn observation_reports_drift() {
        let mut det = CentroidDetector::new(GpdConfig::default());
        feed(&mut det, 0x40000, 8);
        let obs = det.observe(&buffer(0x48000, 64, 64)).unwrap();
        assert!(obs.relative_drift > 0.05, "drift {}", obs.relative_drift);
        assert!(obs.centroid > 0x47000 as f64);
    }
}
