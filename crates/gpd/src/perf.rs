//! Performance-metric phase signals: the CPI/DPI leg of global phase
//! detection.
//!
//! The paper (§1): *"In GPD, global metrics like average program counter
//! value are used to find new code regions, and other metrics of
//! performance, such as CPI and DPI (Data Cache Misses per Instruction),
//! are used to determine if the program performance characteristics have
//! changed."* The centroid answers "did the code move?"; these metrics
//! answer "did the same code start behaving differently?" — e.g. a
//! working set outgrowing the cache.
//!
//! [`MetricBandDetector`] applies the same band-of-stability idea to any
//! scalar per-interval metric; [`PerfDetector`] bundles a CPI band and a
//! DPI band, flagging a performance-phase change when either moves.

use std::collections::VecDeque;

use crate::PhaseStats;

/// Band-of-stability change detection over one scalar metric stream.
///
/// Keeps a history of metric values; a new value drifting more than
/// `tolerance` (relative to the history mean) outside the mean ± SD band
/// is a change. Mirrors the centroid detector's structure with a
/// single-knob threshold, because CPI/DPI need a different (coarser)
/// tolerance than addresses.
#[derive(Debug, Clone)]
pub struct MetricBandDetector {
    history: VecDeque<f64>,
    history_len: usize,
    tolerance: f64,
    stats: PhaseStats,
    stable: bool,
    streak: usize,
    stable_timer: usize,
}

impl MetricBandDetector {
    /// Creates a detector: `history_len` past values form the band;
    /// relative drift beyond `tolerance` is a change; `stable_timer`
    /// quiet intervals re-establish stability.
    ///
    /// # Panics
    ///
    /// Panics unless `history_len >= 2`, `tolerance > 0`.
    #[must_use]
    pub fn new(history_len: usize, tolerance: f64, stable_timer: usize) -> Self {
        assert!(history_len >= 2, "band needs at least two history entries");
        assert!(tolerance > 0.0, "tolerance must be positive");
        Self {
            history: VecDeque::with_capacity(history_len),
            history_len,
            tolerance,
            stats: PhaseStats::default(),
            stable: false,
            streak: 0,
            stable_timer,
        }
    }

    /// `true` while the metric is in a stable phase.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> PhaseStats {
        self.stats
    }

    /// Observes one interval's metric value; returns the relative drift
    /// outside the band (0 while learning or in band).
    pub fn observe(&mut self, value: f64) -> f64 {
        let drift = if self.history.len() >= 2 {
            let n = self.history.len() as f64;
            let mean: f64 = self.history.iter().sum::<f64>() / n;
            let var: f64 = self
                .history
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f64>()
                / n;
            let sd = var.sqrt();
            let dev = (value - mean).abs();
            if mean.abs() > f64::EPSILON {
                ((dev - sd).max(0.0)) / mean.abs()
            } else {
                0.0
            }
        } else {
            0.0
        };

        let was_stable = self.stable;
        if self.history.len() >= 2 && drift <= self.tolerance {
            self.streak += 1;
            if self.streak >= self.stable_timer {
                self.stable = true;
            }
        } else {
            self.streak = 0;
            self.stable = false;
        }

        if self.history.len() == self.history_len {
            self.history.pop_front();
        }
        self.history.push_back(value);

        self.stats.intervals += 1;
        if self.stable {
            self.stats.stable_intervals += 1;
        }
        if was_stable != self.stable {
            self.stats.phase_changes += 1;
        }
        drift
    }
}

/// Configuration of the combined CPI + DPI performance detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfConfig {
    /// History window (intervals) for both metric bands.
    pub history_len: usize,
    /// Relative CPI drift tolerated within a phase.
    pub cpi_tolerance: f64,
    /// Relative DPI drift tolerated within a phase.
    pub dpi_tolerance: f64,
    /// Quiet intervals before (re-)declaring stability.
    pub stable_timer: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        Self {
            history_len: 4,
            cpi_tolerance: 0.05,
            dpi_tolerance: 0.10,
            stable_timer: 2,
        }
    }
}

/// What one interval looked like to the performance detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfObservation {
    /// Relative CPI drift outside its band.
    pub cpi_drift: f64,
    /// Relative DPI drift outside its band.
    pub dpi_drift: f64,
    /// `true` when both metrics are in stable phases.
    pub stable: bool,
    /// `true` when combined stability flipped this interval.
    pub phase_changed: bool,
}

/// The CPI/DPI performance-phase detector.
#[derive(Debug, Clone)]
pub struct PerfDetector {
    cpi: MetricBandDetector,
    dpi: MetricBandDetector,
    stats: PhaseStats,
    was_stable: bool,
}

impl PerfDetector {
    /// Creates a detector.
    #[must_use]
    pub fn new(config: PerfConfig) -> Self {
        Self {
            cpi: MetricBandDetector::new(
                config.history_len,
                config.cpi_tolerance,
                config.stable_timer,
            ),
            dpi: MetricBandDetector::new(
                config.history_len,
                config.dpi_tolerance,
                config.stable_timer,
            ),
            stats: PhaseStats::default(),
            was_stable: false,
        }
    }

    /// `true` while both CPI and DPI are stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.cpi.is_stable() && self.dpi.is_stable()
    }

    /// Combined lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> PhaseStats {
        self.stats
    }

    /// Observes one interval's CPI and DPI.
    pub fn observe(&mut self, cpi: f64, dpi: f64) -> PerfObservation {
        let cpi_drift = self.cpi.observe(cpi);
        let dpi_drift = self.dpi.observe(dpi);
        let stable = self.is_stable();
        let phase_changed = stable != self.was_stable;
        self.was_stable = stable;
        self.stats.intervals += 1;
        if stable {
            self.stats.stable_intervals += 1;
        }
        if phase_changed {
            self.stats.phase_changes += 1;
        }
        PerfObservation {
            cpi_drift,
            dpi_drift,
            stable,
            phase_changed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_metric_stabilizes() {
        let mut d = MetricBandDetector::new(4, 0.05, 2);
        for _ in 0..8 {
            d.observe(1.5);
        }
        assert!(d.is_stable());
        assert_eq!(d.stats().phase_changes, 1);
    }

    #[test]
    fn step_change_is_detected() {
        let mut d = MetricBandDetector::new(4, 0.05, 2);
        for _ in 0..8 {
            d.observe(1.5);
        }
        let drift = d.observe(2.5);
        assert!(drift > 0.05, "drift {drift}");
        assert!(!d.is_stable());
    }

    #[test]
    fn noise_within_tolerance_is_ignored() {
        let mut d = MetricBandDetector::new(4, 0.05, 2);
        for i in 0..32 {
            // ±1% wobble.
            d.observe(1.5 * (1.0 + 0.01 * f64::from(i % 3 - 1)));
        }
        assert!(d.is_stable());
        assert_eq!(d.stats().phase_changes, 1);
    }

    #[test]
    fn restabilizes_at_the_new_level() {
        let mut d = MetricBandDetector::new(4, 0.05, 2);
        for _ in 0..8 {
            d.observe(1.0);
        }
        for _ in 0..10 {
            d.observe(3.0);
        }
        assert!(d.is_stable());
        assert_eq!(d.stats().phase_changes, 3); // in, out, in
    }

    #[test]
    fn perf_detector_combines_both_metrics() {
        let mut d = PerfDetector::new(PerfConfig::default());
        for _ in 0..8 {
            d.observe(2.0, 0.01);
        }
        assert!(d.is_stable());
        // DPI doubles (cache behaviour changed) while CPI holds: still a
        // performance phase change.
        let obs = d.observe(2.0, 0.02);
        assert!(obs.phase_changed);
        assert!(obs.dpi_drift > 0.10);
        assert!(obs.cpi_drift < 0.05);
    }

    #[test]
    fn zero_mean_metric_never_divides_by_zero() {
        let mut d = MetricBandDetector::new(2, 0.05, 1);
        for _ in 0..8 {
            let drift = d.observe(0.0);
            assert!(drift.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_panics() {
        let _ = MetricBandDetector::new(4, 0.0, 2);
    }
}
