//! Property tests for the centroid detector.

use proptest::prelude::*;

use regmon_binary::Addr;
use regmon_gpd::{CentroidDetector, GpdConfig, GpdState};
use regmon_sampling::PcSample;

/// Builds a buffer from (base, spread-coded) values.
fn buffer(addrs: &[u64]) -> Vec<PcSample> {
    addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| PcSample {
            addr: Addr::new(a),
            cycle: i as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn detector_never_panics_and_invariants_hold(
        intervals in prop::collection::vec(
            prop::collection::vec(1u64..1_000_000, 1..64),
            1..40
        )
    ) {
        let mut det = CentroidDetector::new(GpdConfig::default());
        let mut flips = 0usize;
        let mut was_stable = false;
        for addrs in &intervals {
            let obs = det.observe(&buffer(addrs)).expect("non-empty buffer");
            // Drift is non-negative and finite.
            prop_assert!(obs.relative_drift >= 0.0);
            prop_assert!(obs.relative_drift.is_finite());
            // phase_changed is exactly a stability flip.
            prop_assert_eq!(
                obs.phase_changed,
                obs.state_before.is_stable() != obs.state_after.is_stable()
            );
            if det.is_stable() != was_stable {
                flips += 1;
                was_stable = det.is_stable();
            }
        }
        let stats = det.stats();
        prop_assert_eq!(stats.intervals, intervals.len());
        prop_assert_eq!(stats.phase_changes, flips);
        prop_assert!(stats.stable_intervals <= stats.intervals);
        prop_assert!((0.0..=1.0).contains(&stats.stable_fraction()));
    }

    #[test]
    fn decisions_are_scale_invariant(
        centers in prop::collection::vec(1_000u64..1_000_000, 4..32),
        scale in 2u64..8,
    ) {
        // Thresholds are *relative* to E, so multiplying every address by
        // a constant must reproduce the same state sequence.
        let mut a = CentroidDetector::new(GpdConfig::default());
        let mut b = CentroidDetector::new(GpdConfig::default());
        for &c in &centers {
            let buf_a: Vec<u64> = (0..16).map(|k| c + k).collect();
            let buf_b: Vec<u64> = (0..16).map(|k| (c + k) * scale).collect();
            let oa = a.observe(&buffer(&buf_a)).unwrap();
            let ob = b.observe(&buffer(&buf_b)).unwrap();
            prop_assert_eq!(oa.state_after, ob.state_after, "diverged at center {}", c);
        }
    }

    #[test]
    fn constant_stream_always_stabilizes(
        center in 1_000u64..10_000_000,
        n in 8usize..32,
    ) {
        let mut det = CentroidDetector::new(GpdConfig::default());
        let addrs: Vec<u64> = (0..64).map(|k| center + k * 2).collect();
        for _ in 0..n {
            det.observe(&buffer(&addrs));
        }
        prop_assert_eq!(det.state(), GpdState::Stable);
        prop_assert_eq!(det.stats().phase_changes, 1);
    }

    #[test]
    fn th4_jump_always_destabilizes(
        center in 100_000u64..1_000_000,
        n in 8usize..16,
    ) {
        let mut det = CentroidDetector::new(GpdConfig::default());
        let addrs: Vec<u64> = (0..64).map(|k| center + k).collect();
        for _ in 0..n {
            det.observe(&buffer(&addrs));
        }
        prop_assert!(det.is_stable());
        // A 3x jump is > TH4 = 67% of E for any center.
        let jumped: Vec<u64> = (0..64).map(|k| center * 3 + k).collect();
        let obs = det.observe(&buffer(&jumped)).unwrap();
        prop_assert_eq!(obs.state_after, GpdState::Unstable);
        prop_assert!(obs.phase_changed);
    }
}
