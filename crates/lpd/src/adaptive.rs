//! Region-size-aware correlation thresholds.
//!
//! The paper observes that 188.ammp's very large region keeps its `r`
//! "just below the threshold" at short sampling periods — with thousands
//! of samples spread over hundreds of instruction slots, per-slot counts
//! are noisy and Pearson's r is biased downward even for an unchanged
//! distribution. §3.2.2: *"We are investigating the use of a threshold
//! based on the size of region."* [`ThresholdPolicy::Adaptive`] is that
//! investigation: the threshold relaxes logarithmically with region size
//! above a reference, down to a floor.

/// How the per-region threshold `rt` is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// One threshold for every region (the paper's `rt = 0.8`).
    Fixed(f64),
    /// `rt(slots) = base − slope · log2(slots / reference_slots)` for
    /// regions larger than the reference, clamped to `floor`.
    Adaptive {
        /// Threshold for regions at or below the reference size.
        base: f64,
        /// Region size (slots) at which relaxation starts.
        reference_slots: usize,
        /// Threshold reduction per doubling of region size.
        slope: f64,
        /// Lower clamp of the relaxed threshold.
        floor: f64,
    },
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        Self::Fixed(crate::DEFAULT_RT)
    }
}

impl ThresholdPolicy {
    /// The paper's recommended adaptive setting.
    #[must_use]
    pub fn adaptive() -> Self {
        Self::Adaptive {
            base: crate::DEFAULT_RT,
            reference_slots: 64,
            slope: 0.05,
            floor: 0.6,
        }
    }

    /// The threshold for a region covering `slots` instruction slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn rt_for(&self, slots: usize) -> f64 {
        assert!(slots > 0, "a region has at least one slot");
        match *self {
            Self::Fixed(rt) => rt,
            Self::Adaptive {
                base,
                reference_slots,
                slope,
                floor,
            } => {
                if slots <= reference_slots {
                    base
                } else {
                    let doublings = (slots as f64 / reference_slots as f64).log2();
                    (base - slope * doublings).max(floor)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_size() {
        let p = ThresholdPolicy::Fixed(0.8);
        assert_eq!(p.rt_for(2), 0.8);
        assert_eq!(p.rt_for(2000), 0.8);
    }

    #[test]
    fn adaptive_relaxes_with_size() {
        let p = ThresholdPolicy::adaptive();
        let small = p.rt_for(32);
        let medium = p.rt_for(64);
        let large = p.rt_for(256);
        assert_eq!(small, 0.8);
        assert_eq!(medium, 0.8);
        assert!(large < medium, "large={large}");
        // 256 = 64 * 2^2 → 0.8 - 2*0.05 = 0.7
        assert!((large - 0.7).abs() < 1e-9);
    }

    #[test]
    fn adaptive_clamps_at_floor() {
        let p = ThresholdPolicy::adaptive();
        assert_eq!(p.rt_for(1 << 20), 0.6);
    }

    #[test]
    fn default_is_papers_fixed_rt() {
        assert_eq!(ThresholdPolicy::default().rt_for(10), crate::DEFAULT_RT);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = ThresholdPolicy::default().rt_for(0);
    }
}
