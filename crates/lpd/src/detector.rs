//! One region's phase detector.

use regmon_stats::CountHistogram;

use crate::adaptive::ThresholdPolicy;
use crate::similarity::{PearsonCache, Similarity, SimilarityKind};
use crate::state::LpdState;

/// Configuration shared by all per-region detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpdConfig {
    /// How the correlation threshold is chosen per region.
    pub threshold: ThresholdPolicy,
    /// Which similarity metric scores interval histograms.
    pub similarity: SimilarityKind,
    /// Minimum samples an interval must contribute to a region before its
    /// histogram is compared; sparser intervals are treated like empty
    /// ones (state held, `r` repeated). This extends the paper's
    /// empty-interval rule to intervals too thin to form a meaningful
    /// distribution — e.g. the sliver a region receives when a sampling
    /// interval straddles a working-set switch.
    pub min_samples: u64,
}

impl Default for LpdConfig {
    fn default() -> Self {
        Self {
            threshold: ThresholdPolicy::default(),
            similarity: SimilarityKind::default(),
            min_samples: 64,
        }
    }
}

/// What one `observe` call saw and decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpdObservation {
    /// The similarity score used this interval. For an inactive interval
    /// (no samples for the region) this repeats the last value, as the
    /// paper specifies.
    pub r: f64,
    /// Whether the region received samples this interval.
    pub active: bool,
    /// State before the interval.
    pub state_before: LpdState,
    /// State after the interval.
    pub state_after: LpdState,
    /// `true` when stability flipped — a local phase change.
    pub phase_changed: bool,
}

/// Lifetime statistics of one region's detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionPhaseStats {
    /// Intervals observed (including inactive ones).
    pub intervals: usize,
    /// Intervals in which the region received samples.
    pub active_intervals: usize,
    /// Intervals spent in the stable state.
    pub stable_intervals: usize,
    /// Stability flips (stable ↔ not-stable).
    pub phase_changes: usize,
    /// Total samples the region received across all observed intervals.
    pub samples: u64,
}

impl RegionPhaseStats {
    /// Fraction of observed intervals spent stable, in `[0, 1]`.
    #[must_use]
    pub fn stable_fraction(&self) -> f64 {
        if self.intervals == 0 {
            return 0.0;
        }
        self.stable_intervals as f64 / self.intervals as f64
    }

    /// Mean samples per observed interval — a hotness measure for
    /// report filtering (cold regions' flapping is sampling noise).
    #[must_use]
    pub fn mean_samples(&self) -> f64 {
        if self.intervals == 0 {
            return 0.0;
        }
        self.samples as f64 / self.intervals as f64
    }
}

/// The per-region detector: stable histogram + current comparison +
/// Figure 12 state machine.
#[derive(Debug, Clone)]
pub struct RegionPhaseDetector {
    config: LpdConfig,
    rt: f64,
    prev_hist: CountHistogram,
    /// Incremental stable-side Pearson sums, kept in lock-step with
    /// `prev_hist` (only when the configured metric is Pearson). Scoring
    /// an interval is then one pass over the *current* histogram instead
    /// of a full two-sided recomputation — bit-identical by
    /// construction (see [`PearsonCache`]).
    pearson_cache: Option<PearsonCache>,
    prev_empty: bool,
    state: LpdState,
    last_r: f64,
    stats: RegionPhaseStats,
}

impl RegionPhaseDetector {
    /// Creates a detector for a region of `slots` instruction slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots < 2` — Pearson's r needs at least two paired
    /// observations, so such a region cannot be phase-analyzed.
    #[must_use]
    pub fn new(slots: usize, config: LpdConfig) -> Self {
        assert!(slots >= 2, "local phase detection needs at least 2 slots");
        let prev_hist = CountHistogram::new(slots);
        let pearson_cache = (config.similarity == SimilarityKind::Pearson).then(|| {
            let mut cache = PearsonCache::new();
            cache.rebuild(&prev_hist);
            cache
        });
        Self {
            config,
            rt: config.threshold.rt_for(slots),
            prev_hist,
            pearson_cache,
            prev_empty: true,
            state: LpdState::Unstable,
            last_r: 0.0,
            stats: RegionPhaseStats::default(),
        }
    }

    /// The effective correlation threshold for this region.
    #[must_use]
    pub fn rt(&self) -> f64 {
        self.rt
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> LpdState {
        self.state
    }

    /// `true` when the region's phase is stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.state.is_stable()
    }

    /// The most recent similarity value (0 before the region first
    /// executes, matching the paper's Figure 11).
    #[must_use]
    pub fn last_r(&self) -> f64 {
        self.last_r
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> RegionPhaseStats {
        self.stats
    }

    /// The frozen (or tracking) stable histogram.
    #[must_use]
    pub fn stable_histogram(&self) -> &CountHistogram {
        &self.prev_hist
    }

    /// Processes one interval.
    ///
    /// `current` is the region's histogram for the interval; `None`, an
    /// all-zero histogram, or one with fewer than
    /// [`LpdConfig::min_samples`] samples counts as an *inactive*
    /// interval — the detector holds its state and repeats its last `r`,
    /// exactly as the paper prescribes for empty intervals.
    ///
    /// # Panics
    ///
    /// Panics if `current` has a different slot count than this region.
    pub fn observe(&mut self, current: Option<&CountHistogram>) -> LpdObservation {
        let state_before = self.state;
        self.stats.intervals += 1;

        let Some(current) = current.filter(|h| h.total() >= self.config.min_samples.max(1)) else {
            if self.state.is_stable() {
                self.stats.stable_intervals += 1;
            }
            return LpdObservation {
                r: self.last_r,
                active: false,
                state_before,
                state_after: self.state,
                phase_changed: false,
            };
        };
        self.stats.active_intervals += 1;
        self.stats.samples += current.total();

        let (r, next) = if self.prev_empty {
            // First active interval: nothing to compare against yet.
            (0.0, LpdState::Unstable)
        } else {
            let r = match &self.pearson_cache {
                Some(cache) => cache.score(current),
                None => self.config.similarity.score(&self.prev_hist, current),
            };
            (r, self.state.next(r >= self.rt))
        };

        // Figure 12: the stable set tracks the current set until the
        // phase stabilizes, then freezes.
        if next.tracks_current() {
            self.prev_hist.copy_from(current);
            self.prev_empty = false;
            if let Some(cache) = &mut self.pearson_cache {
                cache.rebuild(&self.prev_hist);
            }
        }

        let phase_changed = state_before.is_stable() != next.is_stable();
        self.state = next;
        self.last_r = r;
        if next.is_stable() {
            self.stats.stable_intervals += 1;
        }
        if phase_changed {
            self.stats.phase_changes += 1;
        }
        LpdObservation {
            r,
            active: true,
            state_before,
            state_after: next,
            phase_changed,
        }
    }
}

/// Plain-data image of one [`RegionPhaseDetector`]'s mutable state, the
/// unit the serve-mode snapshot format serializes. The Pearson cache is
/// deliberately absent: it is a pure function of `prev_hist` and is
/// rebuilt on restore, which reproduces it bit-identically (see
/// [`PearsonCache`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LpdDetectorSnapshot {
    /// The effective correlation threshold (frozen at creation).
    pub rt: f64,
    /// The stable (or tracking) histogram's slot counts.
    pub prev_hist: Vec<u64>,
    /// `true` until the region's first active interval.
    pub prev_empty: bool,
    /// State-machine position.
    pub state: LpdState,
    /// Most recent similarity value.
    pub last_r: f64,
    /// Lifetime statistics.
    pub stats: RegionPhaseStats,
}

impl RegionPhaseDetector {
    /// Exports the detector's mutable state for checkpointing.
    #[must_use]
    pub fn export(&self) -> LpdDetectorSnapshot {
        LpdDetectorSnapshot {
            rt: self.rt,
            prev_hist: self.prev_hist.counts().to_vec(),
            prev_empty: self.prev_empty,
            state: self.state,
            last_r: self.last_r,
            stats: self.stats,
        }
    }

    /// Rebuilds a detector from an exported snapshot. Future
    /// observations are bit-identical to the original detector's:
    /// the Pearson cache is reconstructed from the restored stable
    /// histogram, which [`PearsonCache::rebuild`] makes exact.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's histogram has fewer than 2 slots.
    #[must_use]
    pub fn restore(config: LpdConfig, snapshot: LpdDetectorSnapshot) -> Self {
        assert!(
            snapshot.prev_hist.len() >= 2,
            "local phase detection needs at least 2 slots"
        );
        let prev_hist = CountHistogram::from_counts(snapshot.prev_hist);
        let pearson_cache = (config.similarity == SimilarityKind::Pearson).then(|| {
            let mut cache = PearsonCache::new();
            cache.rebuild(&prev_hist);
            cache
        });
        Self {
            config,
            rt: snapshot.rt,
            prev_hist,
            pearson_cache,
            prev_empty: snapshot.prev_empty,
            state: snapshot.state,
            last_r: snapshot.last_r,
            stats: snapshot.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(counts: &[u64]) -> CountHistogram {
        CountHistogram::from_counts(counts.to_vec())
    }

    fn det() -> RegionPhaseDetector {
        RegionPhaseDetector::new(8, LpdConfig::default())
    }

    const SHAPE: [u64; 8] = [1, 9, 40, 200, 30, 8, 2, 1];

    #[test]
    fn first_interval_r_is_zero() {
        let mut d = det();
        let obs = d.observe(Some(&h(&SHAPE)));
        assert_eq!(obs.r, 0.0);
        assert_eq!(obs.state_after, LpdState::Unstable);
        assert!(!obs.phase_changed);
    }

    #[test]
    fn stabilizes_after_three_consistent_intervals() {
        let mut d = det();
        d.observe(Some(&h(&SHAPE)));
        let o2 = d.observe(Some(&h(&SHAPE)));
        assert_eq!(o2.state_after, LpdState::LessUnstable);
        let o3 = d.observe(Some(&h(&SHAPE)));
        assert_eq!(o3.state_after, LpdState::Stable);
        assert!(o3.phase_changed);
        assert_eq!(d.stats().phase_changes, 1);
    }

    #[test]
    fn scaling_does_not_change_phase() {
        let mut d = det();
        for _ in 0..3 {
            d.observe(Some(&h(&SHAPE)));
        }
        let scaled: Vec<u64> = SHAPE.iter().map(|c| c * 7).collect();
        let obs = d.observe(Some(&h(&scaled)));
        assert!(obs.r > 0.99);
        assert!(!obs.phase_changed);
        assert!(d.is_stable());
    }

    #[test]
    fn bottleneck_shift_is_a_phase_change() {
        let mut d = det();
        for _ in 0..3 {
            d.observe(Some(&h(&SHAPE)));
        }
        let shifted = [1, 1, 9, 40, 200, 30, 8, 2];
        let obs = d.observe(Some(&h(&shifted)));
        assert!(obs.r < 0.8, "r={}", obs.r);
        assert!(obs.phase_changed);
        assert_eq!(obs.state_after, LpdState::Unstable);
    }

    #[test]
    fn stable_histogram_freezes_on_stabilization() {
        let mut d = det();
        for _ in 0..3 {
            d.observe(Some(&h(&SHAPE)));
        }
        let frozen = d.stable_histogram().clone();
        // While stable, a correlated but different-scale histogram must
        // NOT replace the frozen stable set.
        let scaled: Vec<u64> = SHAPE.iter().map(|c| c * 3).collect();
        d.observe(Some(&h(&scaled)));
        assert_eq!(d.stable_histogram(), &frozen);
    }

    #[test]
    fn stable_histogram_tracks_while_unstable() {
        let mut d = det();
        let a = h(&SHAPE);
        d.observe(Some(&a));
        assert_eq!(d.stable_histogram(), &a);
        let b = h(&[200, 1, 9, 40, 30, 8, 2, 1]);
        d.observe(Some(&b));
        assert_eq!(d.stable_histogram(), &b);
    }

    #[test]
    fn inactive_interval_repeats_r_and_holds_state() {
        let mut d = det();
        for _ in 0..3 {
            d.observe(Some(&h(&SHAPE)));
        }
        let r_before = d.last_r();
        let obs = d.observe(None);
        assert!(!obs.active);
        assert_eq!(obs.r, r_before);
        assert!(d.is_stable());
        // An all-zero histogram counts as inactive too.
        let obs = d.observe(Some(&h(&[0; 8])));
        assert!(!obs.active);
        assert!(d.is_stable());
    }

    #[test]
    fn inactive_intervals_count_toward_stable_time() {
        let mut d = det();
        for _ in 0..3 {
            d.observe(Some(&h(&SHAPE)));
        }
        for _ in 0..7 {
            d.observe(None);
        }
        let stats = d.stats();
        assert_eq!(stats.intervals, 10);
        assert_eq!(stats.active_intervals, 3);
        assert_eq!(stats.stable_intervals, 8); // interval 3 onward
    }

    #[test]
    fn flapping_counts_every_transition() {
        let mut d = det();
        let a = h(&SHAPE);
        let b = h(&[200, 1, 9, 40, 30, 8, 2, 1]);
        // Stabilize, break, restabilize, break...
        for _ in 0..3 {
            d.observe(Some(&a));
        }
        d.observe(Some(&b)); // change 1 (out)
        d.observe(Some(&b));
        d.observe(Some(&b)); // change 2 (in)
        d.observe(Some(&a)); // change 3 (out)
        assert_eq!(d.stats().phase_changes, 4); // initial in + 3 above
    }

    #[test]
    fn adaptive_threshold_applies_per_region_size() {
        let config = LpdConfig {
            threshold: ThresholdPolicy::adaptive(),
            ..LpdConfig::default()
        };
        let small = RegionPhaseDetector::new(32, config);
        let large = RegionPhaseDetector::new(256, config);
        assert_eq!(small.rt(), 0.8);
        assert!((large.rt() - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2 slots")]
    fn one_slot_region_panics() {
        let _ = RegionPhaseDetector::new(1, LpdConfig::default());
    }

    #[test]
    fn snapshot_roundtrip_continues_identically() {
        for similarity in [
            SimilarityKind::Pearson,
            SimilarityKind::Cosine,
            SimilarityKind::Manhattan,
            SimilarityKind::Rank,
        ] {
            let config = LpdConfig {
                similarity,
                ..LpdConfig::default()
            };
            let mut d = RegionPhaseDetector::new(8, config);
            d.observe(Some(&h(&SHAPE)));
            d.observe(Some(&h(&SHAPE)));
            let mut restored = RegionPhaseDetector::restore(config, d.export());
            let shifted = [1, 1, 9, 40, 200, 30, 8, 2];
            for counts in [SHAPE, shifted, shifted, SHAPE, SHAPE] {
                let a = d.observe(Some(&h(&counts)));
                let b = restored.observe(Some(&h(&counts)));
                assert_eq!(a, b, "{similarity:?}");
                assert_eq!(a.r.to_bits(), b.r.to_bits(), "{similarity:?}");
            }
            assert_eq!(d.export(), restored.export(), "{similarity:?}");
        }
    }

    #[test]
    fn stable_fraction_computation() {
        let mut d = det();
        for _ in 0..10 {
            d.observe(Some(&h(&SHAPE)));
        }
        let f = d.stats().stable_fraction();
        assert!((f - 0.8).abs() < 1e-9, "f={f}"); // stable from interval 3
    }
}
