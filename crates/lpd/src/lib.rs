//! Local Phase Detection (LPD): per-region phase state machines driven by
//! Pearson's coefficient of correlation (paper §3.2).
//!
//! Each monitored region gets its own detector comparing the *current*
//! interval's per-instruction sample histogram against a frozen *stable*
//! histogram. High correlation (`r ≥ rt`, `rt = 0.8` in the paper) means
//! the region's internal behaviour is unchanged — even if its share of
//! total execution moved, which is precisely what confuses the global
//! centroid detector. Low or negative correlation means the bottleneck
//! distribution shifted: a genuine local phase change worth re-optimizing
//! for.
//!
//! * [`similarity`] — the Pearson metric plus the cheaper alternatives the
//!   paper's future work asks about (cosine, normalized-Manhattan, rank).
//! * [`state`] — the three-state machine of Figure 12.
//! * [`detector`] — one region's detector: histograms + state machine.
//! * [`manager`] — a detector per monitored region, fed from the region
//!   monitor's per-interval distribution reports.
//! * [`adaptive`] — region-size-aware thresholds (the paper's proposed fix
//!   for the 188.ammp granularity aberration).
//!
//! # Example
//!
//! ```
//! use regmon_lpd::{RegionPhaseDetector, LpdConfig};
//! use regmon_stats::CountHistogram;
//!
//! let mut det = RegionPhaseDetector::new(8, LpdConfig::default());
//! let shape = CountHistogram::from_counts(vec![1, 9, 40, 200, 30, 8, 2, 1]);
//! for _ in 0..4 {
//!     det.observe(Some(&shape));
//! }
//! assert!(det.is_stable()); // same shape every interval
//!
//! // Scaling all counts is NOT a phase change (Figure 8)...
//! let scaled = CountHistogram::from_counts(vec![3, 27, 120, 600, 90, 24, 6, 3]);
//! assert!(!det.observe(Some(&scaled)).phase_changed);
//!
//! // ...but shifting the bottleneck is.
//! let shifted = CountHistogram::from_counts(vec![1, 1, 9, 40, 200, 30, 8, 2]);
//! assert!(det.observe(Some(&shifted)).phase_changed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adaptive;
pub mod detector;
pub mod manager;
pub mod similarity;
pub mod state;

pub use adaptive::ThresholdPolicy;
pub use detector::{
    LpdConfig, LpdDetectorSnapshot, LpdObservation, RegionPhaseDetector, RegionPhaseStats,
};
pub use manager::{LpdManager, LpdManagerSnapshot};
pub use similarity::{PearsonCache, Similarity, SimilarityKind};
pub use state::LpdState;

/// The paper's correlation threshold `rt`.
pub const DEFAULT_RT: f64 = 0.8;
