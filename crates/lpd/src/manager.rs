//! A detector per monitored region, fed from distribution reports.

use std::collections::BTreeMap;

use regmon_regions::{AttributionView, RegionId, RegionMonitor};

use crate::adaptive::ThresholdPolicy;
use crate::detector::{
    LpdConfig, LpdDetectorSnapshot, LpdObservation, RegionPhaseDetector, RegionPhaseStats,
};

/// Plain-data image of an [`LpdManager`]: every live detector's state
/// plus the stats of retired (pruned) regions, both in region-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct LpdManagerSnapshot {
    /// Live detectors, ascending by region id.
    pub detectors: Vec<(RegionId, LpdDetectorSnapshot)>,
    /// Retired regions' frozen lifetime stats, ascending by region id.
    pub retired: Vec<(RegionId, RegionPhaseStats)>,
}

/// Owns one [`RegionPhaseDetector`] per monitored region and routes each
/// interval's histograms to them.
///
/// Detectors are created lazily when a region first appears in the
/// monitor and are retired (their stats preserved) when the region is
/// pruned.
#[derive(Debug, Default)]
pub struct LpdManager {
    config: LpdConfig,
    detectors: BTreeMap<RegionId, RegionPhaseDetector>,
    retired: BTreeMap<RegionId, RegionPhaseStats>,
}

impl LpdManager {
    /// Creates a manager with the given per-region configuration.
    #[must_use]
    pub fn new(config: LpdConfig) -> Self {
        Self {
            config,
            detectors: BTreeMap::new(),
            retired: BTreeMap::new(),
        }
    }

    /// Processes one interval: every region currently monitored gets an
    /// observation (active or not). Returns the per-region observations
    /// in region-id order.
    ///
    /// Regions present in the manager but no longer in the monitor are
    /// retired.
    ///
    /// Accepts any [`AttributionView`] — the owned `DistributionReport`
    /// or the monitor's borrow-based arena report — so the zero-copy hot
    /// path and the legacy path share this code exactly.
    pub fn observe_interval<V: AttributionView>(
        &mut self,
        monitor: &RegionMonitor,
        report: &V,
    ) -> Vec<(RegionId, LpdObservation)> {
        // Retire detectors for pruned regions.
        let pruned: Vec<RegionId> = self
            .detectors
            .keys()
            .copied()
            .filter(|id| monitor.region(*id).is_none())
            .collect();
        for id in pruned {
            if let Some(det) = self.detectors.remove(&id) {
                self.retired.insert(id, det.stats());
            }
        }

        let telemetry_on = regmon_telemetry::enabled();
        let mut out = Vec::with_capacity(monitor.len());
        for region in monitor.regions() {
            let id = region.id();
            let slots = region.slots();
            // Regions too small to correlate (a single slot) are skipped;
            // the paper's loop regions always have several instructions.
            if slots < 2 {
                continue;
            }
            let config = self.config;
            let det = self.detectors.entry(id).or_insert_with(|| {
                let det = RegionPhaseDetector::new(slots, config);
                if telemetry_on {
                    // An adaptive policy that actually relaxed below its
                    // base threshold is a per-region tuning decision
                    // worth surfacing.
                    if let ThresholdPolicy::Adaptive { base, .. } = config.threshold {
                        if det.rt() < base {
                            regmon_telemetry::metrics::LPD_ADAPTIVE_RELAXATIONS.inc();
                        }
                    }
                }
                det
            });
            let obs = det.observe(report.histogram(id));
            if telemetry_on {
                if obs.state_before != obs.state_after {
                    regmon_telemetry::metrics::LPD_TRANSITIONS.inc();
                    regmon_telemetry::journal::record(
                        regmon_telemetry::journal::EventKind::LpdTransition {
                            region: id.0,
                            from: obs.state_before.name(),
                            to: obs.state_after.name(),
                            r: obs.r,
                            rt: det.rt(),
                            phase_change: obs.phase_changed,
                        },
                    );
                }
                if obs.phase_changed {
                    regmon_telemetry::metrics::LPD_PHASE_CHANGES.inc();
                }
            }
            out.push((id, obs));
        }
        out
    }

    /// The detector for a live region.
    #[must_use]
    pub fn detector(&self, id: RegionId) -> Option<&RegionPhaseDetector> {
        self.detectors.get(&id)
    }

    /// Number of live detectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// `true` when no detectors are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// Per-region lifetime stats: live detectors plus retired ones.
    #[must_use]
    pub fn all_stats(&self) -> BTreeMap<RegionId, RegionPhaseStats> {
        let mut out = self.retired.clone();
        for (id, det) in &self.detectors {
            out.insert(*id, det.stats());
        }
        out
    }

    /// Total local phase changes across all regions, live and retired.
    #[must_use]
    pub fn total_phase_changes(&self) -> usize {
        self.all_stats().values().map(|s| s.phase_changes).sum()
    }

    /// `true` when every *active-so-far* region is currently stable.
    #[must_use]
    pub fn all_stable(&self) -> bool {
        self.detectors.values().all(RegionPhaseDetector::is_stable)
    }

    /// Exports every detector's state for checkpointing.
    #[must_use]
    pub fn export(&self) -> LpdManagerSnapshot {
        LpdManagerSnapshot {
            detectors: self
                .detectors
                .iter()
                .map(|(id, det)| (*id, det.export()))
                .collect(),
            retired: self.retired.iter().map(|(id, s)| (*id, *s)).collect(),
        }
    }

    /// Rebuilds a manager from an exported snapshot; future interval
    /// observations are bit-identical to the original manager's.
    #[must_use]
    pub fn restore(config: LpdConfig, snapshot: LpdManagerSnapshot) -> Self {
        Self {
            config,
            detectors: snapshot
                .detectors
                .into_iter()
                .map(|(id, det)| (id, RegionPhaseDetector::restore(config, det)))
                .collect(),
            retired: snapshot.retired.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::{Addr, AddrRange};
    use regmon_regions::{IndexKind, RegionKind};
    use regmon_sampling::PcSample;

    fn range(start: u64, len: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(start + len))
    }

    /// `n` samples peaked on one slot of `range`.
    fn peaked_samples(start: u64, hot_slot: u64, n: usize) -> Vec<PcSample> {
        (0..n)
            .map(|i| PcSample {
                addr: Addr::new(start + if i % 4 == 0 { 0 } else { hot_slot * 4 }),
                cycle: i as u64,
            })
            .collect()
    }

    #[test]
    fn detectors_created_lazily() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let mut mgr = LpdManager::new(LpdConfig::default());
        assert!(mgr.is_empty());
        let a = mon.add_region(range(0x1000, 0x40), RegionKind::Custom, 0);
        let report = mon.distribute(&peaked_samples(0x1000, 3, 120));
        let obs = mgr.observe_interval(&mon, &report);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].0, a);
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn consistent_region_stabilizes_through_manager() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let mut mgr = LpdManager::new(LpdConfig::default());
        let a = mon.add_region(range(0x1000, 0x40), RegionKind::Custom, 0);
        for _ in 0..4 {
            let report = mon.distribute(&peaked_samples(0x1000, 3, 120));
            mgr.observe_interval(&mon, &report);
        }
        assert!(mgr.detector(a).unwrap().is_stable());
        assert!(mgr.all_stable());
    }

    #[test]
    fn unstable_region_does_not_disturb_stable_one() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let mut mgr = LpdManager::new(LpdConfig::default());
        let stable = mon.add_region(range(0x1000, 0x40), RegionKind::Custom, 0);
        let unstable = mon.add_region(range(0x2000, 0x40), RegionKind::Custom, 0);
        for i in 0..8u64 {
            let mut samples = peaked_samples(0x1000, 3, 120);
            // The unstable region's hot slot moves every interval.
            samples.extend(peaked_samples(0x2000, 2 + (i % 8), 120));
            let report = mon.distribute(&samples);
            mgr.observe_interval(&mon, &report);
        }
        assert!(mgr.detector(stable).unwrap().is_stable());
        assert!(!mgr.detector(unstable).unwrap().is_stable());
        assert_eq!(mgr.detector(stable).unwrap().stats().phase_changes, 1);
    }

    #[test]
    fn pruned_regions_are_retired_with_stats() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let mut mgr = LpdManager::new(LpdConfig::default());
        let a = mon.add_region(range(0x1000, 0x40), RegionKind::Custom, 0);
        for _ in 0..4 {
            let report = mon.distribute(&peaked_samples(0x1000, 3, 120));
            mgr.observe_interval(&mon, &report);
        }
        mon.remove_region(a);
        let report = mon.distribute(&[]);
        let obs = mgr.observe_interval(&mon, &report);
        assert!(obs.is_empty());
        assert_eq!(mgr.len(), 0);
        let stats = mgr.all_stats();
        assert_eq!(stats[&a].intervals, 4);
        assert_eq!(mgr.total_phase_changes(), 1);
    }

    #[test]
    fn inactive_region_holds_state() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let mut mgr = LpdManager::new(LpdConfig::default());
        let a = mon.add_region(range(0x1000, 0x40), RegionKind::Custom, 0);
        for _ in 0..3 {
            let report = mon.distribute(&peaked_samples(0x1000, 3, 120));
            mgr.observe_interval(&mon, &report);
        }
        // Three intervals with no samples at all.
        for _ in 0..3 {
            let report = mon.distribute(&[]);
            let obs = mgr.observe_interval(&mon, &report);
            assert!(!obs[0].1.active);
        }
        assert!(mgr.detector(a).unwrap().is_stable());
    }
}
