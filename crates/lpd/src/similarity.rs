//! Similarity metrics between interval histograms.
//!
//! The paper uses Pearson's coefficient of correlation and notes (§5)
//! that it "involves time consuming calculations", asking for cheaper
//! metrics as future work. This module provides Pearson plus three
//! cheaper candidates, all normalized so that `1.0` means "same shape"
//! and values at or below `0.0` mean "unrelated/opposite"; the ablation
//! bench (`similarity.rs` in `regmon-bench`) compares their cost and
//! their agreement with Pearson.

use regmon_stats::CountHistogram;

/// A similarity score between two same-region histograms.
///
/// Implementations must be symmetric and scale-invariant: multiplying
/// every count of one histogram by a positive constant must not change
/// the score (sampling-rate variations are not phase changes).
pub trait Similarity: core::fmt::Debug {
    /// Scores `current` against `stable`; higher is more similar, `1.0`
    /// is identical shape.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the histograms have different slot
    /// counts — they must describe the same region.
    fn score(&self, stable: &CountHistogram, current: &CountHistogram) -> f64;
}

/// The available similarity metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimilarityKind {
    /// Pearson's coefficient of correlation (the paper's metric).
    #[default]
    Pearson,
    /// Cosine of the angle between the count vectors.
    Cosine,
    /// `1 − ½·L1(p, q)` over the normalized histograms (total-variation
    /// complement): cheap, no multiplications beyond the normalization.
    Manhattan,
    /// Pearson over the *ranks* of the slots (Spearman's rho): robust to
    /// monotone per-slot distortions.
    Rank,
}

impl Similarity for SimilarityKind {
    fn score(&self, stable: &CountHistogram, current: &CountHistogram) -> f64 {
        assert_eq!(
            stable.slots(),
            current.slots(),
            "histograms describe different regions"
        );
        match self {
            Self::Pearson => pearson(stable, current),
            Self::Cosine => cosine(stable, current),
            Self::Manhattan => manhattan(stable, current),
            Self::Rank => rank(stable, current),
        }
    }
}

fn pearson(a: &CountHistogram, b: &CountHistogram) -> f64 {
    a.pearson(b).unwrap_or(0.0)
}

fn cosine(a: &CountHistogram, b: &CountHistogram) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.counts().iter().zip(b.counts()) {
        let (x, y) = (x as f64, y as f64);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 && nb == 0.0 {
        return 1.0; // both empty: trivially the same shape
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

fn manhattan(a: &CountHistogram, b: &CountHistogram) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (ta, tb) = (a.total() as f64, b.total() as f64);
    let l1: f64 = a
        .counts()
        .iter()
        .zip(b.counts())
        .map(|(&x, &y)| (x as f64 / ta - y as f64 / tb).abs())
        .sum();
    1.0 - 0.5 * l1
}

fn rank(a: &CountHistogram, b: &CountHistogram) -> f64 {
    let ra = ranks(a.counts());
    let rb = ranks(b.counts());
    regmon_stats::pearson_r(&ra, &rb).unwrap_or(0.0)
}

/// Average ranks (ties share the mean rank), 1-based.
fn ranks(counts: &[u64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..counts.len()).collect();
    idx.sort_by_key(|&i| counts[i]);
    let mut out = vec![0.0; counts.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && counts[idx[j + 1]] == counts[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL: [SimilarityKind; 4] = [
        SimilarityKind::Pearson,
        SimilarityKind::Cosine,
        SimilarityKind::Manhattan,
        SimilarityKind::Rank,
    ];

    fn h(counts: &[u64]) -> CountHistogram {
        CountHistogram::from_counts(counts.to_vec())
    }

    #[test]
    fn identical_histograms_score_one() {
        let a = h(&[1, 9, 40, 200, 30]);
        for kind in ALL {
            let s = kind.score(&a, &a);
            assert!((s - 1.0).abs() < 1e-9, "{kind:?} scored {s}");
        }
    }

    #[test]
    fn scaled_histograms_score_one() {
        let a = h(&[1, 9, 40, 200, 30]);
        let b = h(&[3, 27, 120, 600, 90]);
        for kind in ALL {
            let s = kind.score(&a, &b);
            assert!((s - 1.0).abs() < 1e-9, "{kind:?} scored {s}");
        }
    }

    #[test]
    fn shifted_bottleneck_scores_low() {
        let a = h(&[5, 10, 30, 350, 60, 20, 10, 5, 5, 5]);
        let b = h(&[5, 5, 10, 30, 350, 60, 20, 10, 5, 5]);
        for kind in ALL {
            let s = kind.score(&a, &b);
            assert!(s < 0.8, "{kind:?} scored {s}");
        }
    }

    #[test]
    fn empty_pair_is_similar_single_empty_is_not() {
        let empty = h(&[0, 0, 0]);
        let busy = h(&[1, 2, 3]);
        for kind in ALL {
            assert!(kind.score(&empty, &empty) >= 0.99, "{kind:?}");
        }
        for kind in [SimilarityKind::Cosine, SimilarityKind::Manhattan] {
            assert!(kind.score(&empty, &busy) <= 0.01, "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "different regions")]
    fn mismatched_slots_panic() {
        let _ = SimilarityKind::Pearson.score(&h(&[1]), &h(&[1, 2]));
    }

    #[test]
    fn rank_handles_ties() {
        assert_eq!(ranks(&[5, 5, 5]), vec![2.0, 2.0, 2.0]);
        assert_eq!(ranks(&[10, 20, 30]), vec![1.0, 2.0, 3.0]);
        assert_eq!(ranks(&[20, 10, 20]), vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn rank_is_robust_to_monotone_distortion() {
        let a = h(&[1, 4, 9, 100, 25]);
        let b = h(&[1, 2, 3, 10, 5]); // same ordering, squashed
        let s = SimilarityKind::Rank.score(&a, &b);
        assert!((s - 1.0).abs() < 1e-9, "s={s}");
    }

    proptest! {
        #[test]
        fn scores_are_symmetric(
            a in prop::collection::vec(0u64..500, 4..32),
            b in prop::collection::vec(0u64..500, 4..32),
        ) {
            let n = a.len().min(b.len());
            let (ha, hb) = (h(&a[..n]), h(&b[..n]));
            for kind in ALL {
                let xy = kind.score(&ha, &hb);
                let yx = kind.score(&hb, &ha);
                prop_assert!((xy - yx).abs() < 1e-9, "{:?}: {} vs {}", kind, xy, yx);
            }
        }

        #[test]
        fn scores_are_scale_invariant(
            a in prop::collection::vec(0u64..200, 4..24),
            b in prop::collection::vec(0u64..200, 4..24),
            scale in 2u64..9,
        ) {
            let n = a.len().min(b.len());
            let (ha, hb) = (h(&a[..n]), h(&b[..n]));
            let hb_scaled = h(&b[..n].iter().map(|v| v * scale).collect::<Vec<_>>());
            for kind in ALL {
                let s1 = kind.score(&ha, &hb);
                let s2 = kind.score(&ha, &hb_scaled);
                prop_assert!((s1 - s2).abs() < 1e-6, "{:?}: {} vs {}", kind, s1, s2);
            }
        }

        #[test]
        fn scores_are_bounded(
            a in prop::collection::vec(0u64..500, 4..24),
            b in prop::collection::vec(0u64..500, 4..24),
        ) {
            let n = a.len().min(b.len());
            let (ha, hb) = (h(&a[..n]), h(&b[..n]));
            for kind in ALL {
                let s = kind.score(&ha, &hb);
                prop_assert!((-1.0..=1.0 + 1e-9).contains(&s), "{:?} scored {}", kind, s);
            }
        }
    }
}
