//! Similarity metrics between interval histograms.
//!
//! The paper uses Pearson's coefficient of correlation and notes (§5)
//! that it "involves time consuming calculations", asking for cheaper
//! metrics as future work. This module provides Pearson plus three
//! cheaper candidates, all normalized so that `1.0` means "same shape"
//! and values at or below `0.0` mean "unrelated/opposite"; the ablation
//! bench (`similarity.rs` in `regmon-bench`) compares their cost and
//! their agreement with Pearson.

use regmon_stats::{simd, CountHistogram, PearsonAccumulator, PearsonParts};

/// A similarity score between two same-region histograms.
///
/// Implementations must be symmetric and scale-invariant: multiplying
/// every count of one histogram by a positive constant must not change
/// the score (sampling-rate variations are not phase changes).
pub trait Similarity: core::fmt::Debug {
    /// Scores `current` against `stable`; higher is more similar, `1.0`
    /// is identical shape.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the histograms have different slot
    /// counts — they must describe the same region.
    fn score(&self, stable: &CountHistogram, current: &CountHistogram) -> f64;
}

/// The available similarity metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimilarityKind {
    /// Pearson's coefficient of correlation (the paper's metric).
    #[default]
    Pearson,
    /// Cosine of the angle between the count vectors.
    Cosine,
    /// `1 − ½·L1(p, q)` over the normalized histograms (total-variation
    /// complement): cheap, no multiplications beyond the normalization.
    Manhattan,
    /// Pearson over the *ranks* of the slots (Spearman's rho): robust to
    /// monotone per-slot distortions.
    Rank,
}

impl Similarity for SimilarityKind {
    fn score(&self, stable: &CountHistogram, current: &CountHistogram) -> f64 {
        assert_eq!(
            stable.slots(),
            current.slots(),
            "histograms describe different regions"
        );
        match self {
            Self::Pearson => pearson(stable, current),
            Self::Cosine => cosine(stable, current),
            Self::Manhattan => manhattan(stable, current),
            Self::Rank => rank(stable, current),
        }
    }
}

fn pearson(a: &CountHistogram, b: &CountHistogram) -> f64 {
    a.pearson(b).unwrap_or(0.0)
}

/// Cached stable-side state for incremental Pearson scoring.
///
/// The paper notes (§5) that Pearson "involves time consuming
/// calculations"; the bulk of that work in the steady state is redundant,
/// because the *stable* histogram only changes while a region is
/// restabilizing. This cache keeps the stable side's shifted sums
/// (`x0`, `Σ(x−x0)`, `Σ(x−x0)²`) and per-slot deltas, so scoring an
/// interval costs one pass over the *current* histogram only — and when
/// the current histogram's first slot is empty (the common case for
/// peaked loop regions), slots with zero samples are skipped entirely,
/// which is exact: their contribution to every running sum is a signed
/// zero, and adding a signed zero to a running sum that starts at `+0.0`
/// never changes its bits.
///
/// [`PearsonCache::score`] is **bit-identical** to
/// `SimilarityKind::Pearson.score(stable, current)` — the final `r` is
/// produced by the same [`PearsonAccumulator::r`] code path, fed the
/// same sums accumulated in the same order.
#[derive(Debug, Clone, Default)]
pub struct PearsonCache {
    x0: f64,
    sx: f64,
    sxx: f64,
    /// Per-slot `x_i − x0` of the stable histogram.
    dx: Vec<f64>,
}

impl PearsonCache {
    /// An empty cache (matches a zero-slot stable histogram).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Recomputes the cached sums from `stable`. Call whenever the
    /// stable histogram changes (the Figure 12 `prev_hist ← curr_hist`
    /// tracking step); the per-slot buffer is reused.
    pub fn rebuild(&mut self, stable: &CountHistogram) {
        let counts = stable.counts();
        self.x0 = counts.first().map_or(0.0, |&c| c as f64);
        // The element-wise stages vectorize; the order-sensitive sums
        // always run scalar in index order, so the cached sums are
        // bitwise identical at every dispatch level.
        (self.sx, self.sxx) = simd::shifted_deltas(counts, self.x0, &mut self.dx, simd::active());
    }

    /// Scores `current` against the cached stable histogram. Bit-identical
    /// to `SimilarityKind::Pearson.score(stable, current)`.
    ///
    /// # Panics
    ///
    /// Panics when `current`'s slot count differs from the cached
    /// histogram's — they must describe the same region.
    #[must_use]
    pub fn score(&self, current: &CountHistogram) -> f64 {
        assert_eq!(
            self.dx.len(),
            current.slots(),
            "histograms describe different regions"
        );
        let counts = current.counts();
        if counts.len() < 2 {
            return 0.0; // Pearson undefined, same as the full path.
        }
        let y0 = counts[0] as f64;
        // Scalar keeps the sparse y0 == 0 skip (zero-count slots
        // contribute signed zeros to every sum, so skipping them is
        // exact — see type docs); the vector levels process every slot
        // with ordered scalar reductions. Both are bitwise identical.
        let (sy, syy, sxy) = simd::current_sums(counts, y0, &self.dx, simd::active());
        PearsonAccumulator::from_parts(PearsonParts {
            n: counts.len() as u64,
            x0: self.x0,
            y0,
            sx: self.sx,
            sy,
            sxx: self.sxx,
            syy,
            sxy,
        })
        .r()
        .unwrap_or(0.0)
    }
}

fn cosine(a: &CountHistogram, b: &CountHistogram) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.counts().iter().zip(b.counts()) {
        let (x, y) = (x as f64, y as f64);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 && nb == 0.0 {
        return 1.0; // both empty: trivially the same shape
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

fn manhattan(a: &CountHistogram, b: &CountHistogram) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (ta, tb) = (a.total() as f64, b.total() as f64);
    let l1: f64 = a
        .counts()
        .iter()
        .zip(b.counts())
        .map(|(&x, &y)| (x as f64 / ta - y as f64 / tb).abs())
        .sum();
    1.0 - 0.5 * l1
}

fn rank(a: &CountHistogram, b: &CountHistogram) -> f64 {
    let ra = ranks(a.counts());
    let rb = ranks(b.counts());
    regmon_stats::pearson_r(&ra, &rb).unwrap_or(0.0)
}

/// Average ranks (ties share the mean rank), 1-based.
fn ranks(counts: &[u64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..counts.len()).collect();
    idx.sort_by_key(|&i| counts[i]);
    let mut out = vec![0.0; counts.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && counts[idx[j + 1]] == counts[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL: [SimilarityKind; 4] = [
        SimilarityKind::Pearson,
        SimilarityKind::Cosine,
        SimilarityKind::Manhattan,
        SimilarityKind::Rank,
    ];

    fn h(counts: &[u64]) -> CountHistogram {
        CountHistogram::from_counts(counts.to_vec())
    }

    #[test]
    fn identical_histograms_score_one() {
        let a = h(&[1, 9, 40, 200, 30]);
        for kind in ALL {
            let s = kind.score(&a, &a);
            assert!((s - 1.0).abs() < 1e-9, "{kind:?} scored {s}");
        }
    }

    #[test]
    fn scaled_histograms_score_one() {
        let a = h(&[1, 9, 40, 200, 30]);
        let b = h(&[3, 27, 120, 600, 90]);
        for kind in ALL {
            let s = kind.score(&a, &b);
            assert!((s - 1.0).abs() < 1e-9, "{kind:?} scored {s}");
        }
    }

    #[test]
    fn shifted_bottleneck_scores_low() {
        let a = h(&[5, 10, 30, 350, 60, 20, 10, 5, 5, 5]);
        let b = h(&[5, 5, 10, 30, 350, 60, 20, 10, 5, 5]);
        for kind in ALL {
            let s = kind.score(&a, &b);
            assert!(s < 0.8, "{kind:?} scored {s}");
        }
    }

    #[test]
    fn empty_pair_is_similar_single_empty_is_not() {
        let empty = h(&[0, 0, 0]);
        let busy = h(&[1, 2, 3]);
        for kind in ALL {
            assert!(kind.score(&empty, &empty) >= 0.99, "{kind:?}");
        }
        for kind in [SimilarityKind::Cosine, SimilarityKind::Manhattan] {
            assert!(kind.score(&empty, &busy) <= 0.01, "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "different regions")]
    fn mismatched_slots_panic() {
        let _ = SimilarityKind::Pearson.score(&h(&[1]), &h(&[1, 2]));
    }

    #[test]
    fn pearson_cache_matches_full_score_bitwise() {
        let stables = [
            vec![1u64, 9, 40, 200, 30, 8, 2, 1],
            vec![0, 0, 5, 100, 5, 0, 0, 0],
            vec![7, 7, 7, 7, 7, 7, 7, 7],
            vec![0, 0, 0, 0, 0, 0, 0, 0],
        ];
        let currents = [
            vec![2u64, 18, 80, 400, 60, 16, 4, 2],
            vec![0, 3, 0, 250, 0, 0, 1, 0], // sparse, first slot zero
            vec![5, 0, 0, 0, 0, 0, 0, 9],   // first slot nonzero
            vec![0, 0, 0, 0, 0, 0, 0, 0],
        ];
        for s in &stables {
            let hs = h(s);
            let mut cache = PearsonCache::new();
            cache.rebuild(&hs);
            for c in &currents {
                let hc = h(c);
                let full = SimilarityKind::Pearson.score(&hs, &hc);
                let fast = cache.score(&hc);
                assert_eq!(
                    fast.to_bits(),
                    full.to_bits(),
                    "stable={s:?} current={c:?}: {fast} vs {full}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "different regions")]
    fn pearson_cache_rejects_mismatched_slots() {
        let mut cache = PearsonCache::new();
        cache.rebuild(&h(&[1, 2, 3]));
        let _ = cache.score(&h(&[1, 2]));
    }

    #[test]
    fn rank_handles_ties() {
        assert_eq!(ranks(&[5, 5, 5]), vec![2.0, 2.0, 2.0]);
        assert_eq!(ranks(&[10, 20, 30]), vec![1.0, 2.0, 3.0]);
        assert_eq!(ranks(&[20, 10, 20]), vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn rank_is_robust_to_monotone_distortion() {
        let a = h(&[1, 4, 9, 100, 25]);
        let b = h(&[1, 2, 3, 10, 5]); // same ordering, squashed
        let s = SimilarityKind::Rank.score(&a, &b);
        assert!((s - 1.0).abs() < 1e-9, "s={s}");
    }

    proptest! {
        #[test]
        fn scores_are_symmetric(
            a in prop::collection::vec(0u64..500, 4..32),
            b in prop::collection::vec(0u64..500, 4..32),
        ) {
            let n = a.len().min(b.len());
            let (ha, hb) = (h(&a[..n]), h(&b[..n]));
            for kind in ALL {
                let xy = kind.score(&ha, &hb);
                let yx = kind.score(&hb, &ha);
                prop_assert!((xy - yx).abs() < 1e-9, "{:?}: {} vs {}", kind, xy, yx);
            }
        }

        #[test]
        fn scores_are_scale_invariant(
            a in prop::collection::vec(0u64..200, 4..24),
            b in prop::collection::vec(0u64..200, 4..24),
            scale in 2u64..9,
        ) {
            let n = a.len().min(b.len());
            let (ha, hb) = (h(&a[..n]), h(&b[..n]));
            let hb_scaled = h(&b[..n].iter().map(|v| v * scale).collect::<Vec<_>>());
            for kind in ALL {
                let s1 = kind.score(&ha, &hb);
                let s2 = kind.score(&ha, &hb_scaled);
                prop_assert!((s1 - s2).abs() < 1e-6, "{:?}: {} vs {}", kind, s1, s2);
            }
        }

        #[test]
        fn pearson_cache_always_bit_identical(
            stable in prop::collection::vec(0u64..500, 2..48),
            current in prop::collection::vec(0u64..500, 2..48),
        ) {
            let n = stable.len().min(current.len());
            let (hs, hc) = (h(&stable[..n]), h(&current[..n]));
            let mut cache = PearsonCache::new();
            cache.rebuild(&hs);
            let full = SimilarityKind::Pearson.score(&hs, &hc);
            let fast = cache.score(&hc);
            prop_assert_eq!(fast.to_bits(), full.to_bits(), "{} vs {}", fast, full);
        }

        #[test]
        fn scores_are_bounded(
            a in prop::collection::vec(0u64..500, 4..24),
            b in prop::collection::vec(0u64..500, 4..24),
        ) {
            let n = a.len().min(b.len());
            let (ha, hb) = (h(&a[..n]), h(&b[..n]));
            for kind in ALL {
                let s = kind.score(&ha, &hb);
                prop_assert!((-1.0..=1.0 + 1e-9).contains(&s), "{:?} scored {}", kind, s);
            }
        }
    }
}
