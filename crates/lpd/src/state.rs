//! The three-state machine of the paper's Figure 12.

/// Per-region phase state.
///
/// `r ≥ rt` promotes one step towards stable; `r < rt` demotes straight to
/// unstable. The stable histogram (`prev_hist`) follows the current one
/// while unstable or less-unstable and freezes upon stabilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LpdState {
    /// No established phase; the stable set tracks the current set.
    #[default]
    Unstable,
    /// One good correlation seen; one more stabilizes.
    LessUnstable,
    /// Established stable phase; the stable set is frozen.
    Stable,
}

impl LpdState {
    /// `true` only for [`LpdState::Stable`].
    #[must_use]
    pub fn is_stable(self) -> bool {
        matches!(self, Self::Stable)
    }

    /// The state's display name, as used in telemetry events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Unstable => "Unstable",
            Self::LessUnstable => "LessUnstable",
            Self::Stable => "Stable",
        }
    }

    /// The next state given whether the interval's correlation met the
    /// threshold.
    #[must_use]
    pub fn next(self, correlated: bool) -> Self {
        match (self, correlated) {
            (Self::Unstable, true) => Self::LessUnstable,
            (Self::LessUnstable, true) | (Self::Stable, true) => Self::Stable,
            (_, false) => Self::Unstable,
        }
    }

    /// `true` when the stable histogram must track the current one in
    /// this state (Figure 12: updates happen while not stable).
    #[must_use]
    pub fn tracks_current(self) -> bool {
        !self.is_stable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unstable() {
        assert_eq!(LpdState::default(), LpdState::Unstable);
    }

    #[test]
    fn two_good_intervals_stabilize() {
        let s = LpdState::Unstable.next(true);
        assert_eq!(s, LpdState::LessUnstable);
        assert_eq!(s.next(true), LpdState::Stable);
    }

    #[test]
    fn any_bad_interval_destabilizes() {
        for s in [LpdState::Unstable, LpdState::LessUnstable, LpdState::Stable] {
            assert_eq!(s.next(false), LpdState::Unstable);
        }
    }

    #[test]
    fn stable_stays_stable_on_good() {
        assert_eq!(LpdState::Stable.next(true), LpdState::Stable);
    }

    #[test]
    fn tracking_matches_figure12() {
        assert!(LpdState::Unstable.tracks_current());
        assert!(LpdState::LessUnstable.tracks_current());
        assert!(!LpdState::Stable.tracks_current());
    }

    #[test]
    fn phase_change_edges() {
        // Dotted edges of Figure 12: LessUnstable→Stable and Stable→Unstable.
        let promote = LpdState::LessUnstable.next(true);
        assert!(promote.is_stable() && !LpdState::LessUnstable.is_stable());
        let demote = LpdState::Stable.next(false);
        assert!(!demote.is_stable() && LpdState::Stable.is_stable());
    }
}
