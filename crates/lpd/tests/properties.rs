//! Property tests for the per-region detector's state machine.

use proptest::prelude::*;

use regmon_lpd::{LpdConfig, RegionPhaseDetector};
use regmon_stats::CountHistogram;

fn hist(counts: &[u64]) -> CountHistogram {
    CountHistogram::from_counts(counts.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn detector_never_panics_and_counts_flips(
        histograms in prop::collection::vec(
            prop::collection::vec(0u64..400, 8),
            1..60
        )
    ) {
        let mut det = RegionPhaseDetector::new(8, LpdConfig::default());
        let mut flips = 0usize;
        let mut was_stable = false;
        for counts in &histograms {
            let h = hist(counts);
            let obs = det.observe(Some(&h));
            prop_assert!((-1.0..=1.0).contains(&obs.r), "r = {}", obs.r);
            prop_assert_eq!(
                obs.phase_changed,
                obs.state_before.is_stable() != obs.state_after.is_stable()
            );
            if det.is_stable() != was_stable {
                flips += 1;
                was_stable = det.is_stable();
            }
        }
        let stats = det.stats();
        prop_assert_eq!(stats.phase_changes, flips);
        prop_assert_eq!(stats.intervals, histograms.len());
        prop_assert!(stats.active_intervals <= stats.intervals);
        prop_assert!((0.0..=1.0).contains(&stats.stable_fraction()));
    }

    #[test]
    fn repeated_shape_always_stabilizes(
        shape in prop::collection::vec(1u64..500, 8..64),
        repeats in 3usize..12,
    ) {
        // Any fixed histogram with some variation across slots repeated
        // identically must stabilize by the third interval and never flap.
        prop_assume!(shape.iter().any(|&c| c != shape[0]));
        prop_assume!(shape.iter().sum::<u64>() >= 64);
        let mut det = RegionPhaseDetector::new(shape.len(), LpdConfig::default());
        let h = hist(&shape);
        for _ in 0..repeats {
            det.observe(Some(&h));
        }
        prop_assert!(det.is_stable());
        prop_assert_eq!(det.stats().phase_changes, 1);
    }

    #[test]
    fn positive_scaling_never_destabilizes(
        shape in prop::collection::vec(1u64..200, 8..32),
        scales in prop::collection::vec(1u64..9, 4..12),
    ) {
        // The paper's key requirement (Figure 8): sampling-rate changes
        // (uniform count scaling) must never register as phase changes.
        prop_assume!(shape.iter().any(|&c| c != shape[0]));
        prop_assume!(shape.iter().sum::<u64>() >= 64);
        let mut det = RegionPhaseDetector::new(shape.len(), LpdConfig::default());
        for _ in 0..3 {
            det.observe(Some(&hist(&shape)));
        }
        prop_assert!(det.is_stable());
        for s in scales {
            let scaled: Vec<u64> = shape.iter().map(|c| c * s).collect();
            let obs = det.observe(Some(&hist(&scaled)));
            prop_assert!(!obs.phase_changed, "scale {} flagged a change", s);
        }
        prop_assert!(det.is_stable());
    }

    #[test]
    fn inactive_runs_preserve_state_and_r(
        shape in prop::collection::vec(1u64..200, 8..32),
        gaps in 1usize..20,
    ) {
        prop_assume!(shape.iter().any(|&c| c != shape[0]));
        prop_assume!(shape.iter().sum::<u64>() >= 64);
        let mut det = RegionPhaseDetector::new(shape.len(), LpdConfig::default());
        for _ in 0..3 {
            det.observe(Some(&hist(&shape)));
        }
        let state = det.state();
        let r = det.last_r();
        for _ in 0..gaps {
            let obs = det.observe(None);
            prop_assert!(!obs.active);
            prop_assert_eq!(obs.r, r);
        }
        prop_assert_eq!(det.state(), state);
    }
}
