//! Offline stand-in for the crates-io `proptest` crate.
//!
//! The regmon workspace must build and test with **zero network access**:
//! no registry index, no vendored tarballs. Real `proptest` (and its
//! transitive dependency tree) cannot be downloaded in that environment,
//! so this crate re-implements the small surface the workspace's property
//! tests actually use, under the same package name, as a path dependency:
//!
//! - the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! - integer / float range strategies (`0u64..1_000`, `-1e4..1e4f64`),
//! - tuple strategies (`(0u64..64, 1u64..32)`),
//! - [`prop::collection::vec`] with a `usize` or `Range<usize>` size,
//! - [`prop::bool::ANY`] and [`prop::bool::weighted`],
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! 1. **No shrinking.** A failing case panics with the generated inputs
//!    in scope; reproduce it from the reported case number.
//! 2. **Deterministic generation.** Inputs derive from a splitmix64
//!    stream seeded by `fnv(test name) ^ case index` (overridable with
//!    `PROPTEST_SHIM_SEED`), so every run and every machine exercises
//!    the same cases — property failures are never flaky.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// Run-configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trims that to keep the
        // offline test suite fast while still exploring a useful volume.
        Self { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

/// FNV-1a, used to fold the test name into the seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRng {
    /// The generator for case `case` of the property named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        let base = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self {
            state: fnv1a(name.as_bytes()) ^ base.wrapping_add(u64::from(case) << 1),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`. Panics when the range is empty.
    pub fn gen_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test inputs (the shim keeps proptest's trait name but
/// none of its shrinking machinery).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range");
                let span = (hi - lo) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                (lo + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                let draw = u128::from(rng.next_u64()) % span;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.gen_unit_f64() as f32) * (self.end - self.start)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A strategy that always yields a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The size argument of [`prop::collection::vec`]: a fixed length or a
/// half-open length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_u64(self.size.lo as u64, self.size.hi as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A strategy generating vectors of `element` with a length drawn
        /// from `size` (a `usize` for a fixed length, or a range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The canonical uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Booleans that are `true` with probability `p`.
        #[derive(Debug, Clone, Copy)]
        pub struct Weighted(pub f64);

        /// A strategy yielding `true` with probability `probability`.
        #[must_use]
        pub fn weighted(probability: f64) -> Weighted {
            Weighted(probability)
        }

        impl Strategy for Weighted {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen_unit_f64() < self.0
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Mirrors proptest's macro of the same name:
/// an optional leading `#![proptest_config(expr)]`, then `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The body may `continue` (via prop_assume!) to skip a case.
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure; the shim
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when its inputs do not satisfy a
/// precondition. Expands to `continue` targeting the per-case loop, so it
/// must appear at the top level of the property body (as in real
/// proptest's common usage).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_sizes_honour_fixed_and_ranged() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let fixed = prop::collection::vec(0u64..5, 8).generate(&mut rng);
            assert_eq!(fixed.len(), 8);
            let ranged = prop::collection::vec(0u64..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn weighted_bool_is_biased() {
        let mut rng = TestRng::for_case("weighted", 0);
        let trues = (0..10_000)
            .filter(|_| prop::bool::weighted(0.3).generate(&mut rng))
            .count();
        assert!((2_500..3_500).contains(&trues), "trues = {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec((0u64..10, 1u64..5), 1..6),
            flag in prop::bool::ANY,
            scale in 0.5..2.0f64,
        ) {
            prop_assume!(!xs.is_empty());
            for (a, b) in &xs {
                prop_assert!(*a < 10 && (1..5).contains(b));
            }
            let _ = flag;
            prop_assert!((0.5..2.0).contains(&scale));
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(scale, 2.0);
        }
    }
}
