//! Region formation: building loop regions around hot unmonitored samples.
//!
//! Formation (paper §3.1) triggers when the UCR's share of an interval
//! exceeds a threshold (30% in the paper's study). It walks the
//! unattributed samples, finds the innermost loop containing each hot PC
//! *within its own procedure*, and adds a region per sufficiently-hot
//! loop. Samples in procedures whose loop lives in a *caller* cannot be
//! covered — the pathology that keeps 254.gap's and 186.crafty's UCR high
//! forever. The paper's proposed fix, inter-procedural regions, is
//! implemented behind [`FormationConfig::interprocedural`].

use std::collections::HashMap;

use regmon_binary::{AddrRange, Binary};
use regmon_sampling::PcSample;

use crate::monitor::RegionMonitor;
use crate::region::{RegionId, RegionKind};

/// Region-formation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormationConfig {
    /// UCR fraction above which formation triggers (paper: 30%).
    pub ucr_trigger: f64,
    /// Minimum unattributed samples landing in a loop before it becomes a
    /// region (filters one-off noise).
    pub min_region_samples: usize,
    /// When `true`, hot samples in loop-less procedures produce
    /// whole-procedure regions (the paper's future-work extension).
    pub interprocedural: bool,
}

impl Default for FormationConfig {
    fn default() -> Self {
        Self {
            ucr_trigger: 0.30,
            min_region_samples: 16,
            interprocedural: false,
        }
    }
}

/// What one formation pass did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FormationOutcome {
    /// Regions created this pass.
    pub new_regions: Vec<RegionId>,
    /// Unattributed samples that no loop (or procedure, when
    /// inter-procedural formation is off) could cover.
    pub uncoverable_samples: usize,
}

/// The region-formation algorithm.
#[derive(Debug, Clone, Default)]
pub struct RegionFormation {
    config: FormationConfig,
}

impl RegionFormation {
    /// Creates a formation pass with the given policy.
    #[must_use]
    pub fn new(config: FormationConfig) -> Self {
        Self { config }
    }

    /// The policy in use.
    #[must_use]
    pub fn config(&self) -> &FormationConfig {
        &self.config
    }

    /// `true` when an interval with this UCR fraction should trigger
    /// formation.
    #[must_use]
    pub fn should_trigger(&self, ucr_fraction: f64) -> bool {
        ucr_fraction > self.config.ucr_trigger
    }

    /// Builds regions for the unattributed samples of one interval.
    ///
    /// `interval` is recorded as each new region's creation time.
    pub fn form(
        &self,
        binary: &Binary,
        unattributed: &[PcSample],
        monitor: &mut RegionMonitor,
        interval: usize,
    ) -> FormationOutcome {
        // Count samples per candidate range.
        let mut loop_hits: HashMap<AddrRange, (usize, usize)> = HashMap::new(); // range -> (count, depth)
        let mut proc_hits: HashMap<AddrRange, usize> = HashMap::new();
        let mut uncoverable = 0usize;
        for s in unattributed {
            match binary.innermost_loop_at(s.addr) {
                Some((_, lp)) => {
                    let e = loop_hits.entry(lp.range()).or_insert((0, lp.depth()));
                    e.0 += 1;
                }
                None => match binary.procedure_at(s.addr) {
                    Some(p) if self.config.interprocedural => {
                        *proc_hits.entry(p.range()).or_insert(0) += 1;
                    }
                    _ => uncoverable += 1,
                },
            }
        }

        let mut outcome = FormationOutcome::default();
        // Deterministic creation order: by range.
        let mut loop_candidates: Vec<(AddrRange, (usize, usize))> = loop_hits.into_iter().collect();
        loop_candidates.sort_by_key(|(r, _)| *r);
        for (range, (count, depth)) in loop_candidates {
            if count < self.config.min_region_samples {
                outcome.uncoverable_samples += count;
                continue;
            }
            if monitor.has_range(range) {
                continue; // already monitored (e.g. re-formed after pruning race)
            }
            let id = monitor.add_region(range, RegionKind::Loop { depth }, interval);
            outcome.new_regions.push(id);
        }
        let mut proc_candidates: Vec<(AddrRange, usize)> = proc_hits.into_iter().collect();
        proc_candidates.sort_by_key(|(r, _)| *r);
        for (range, count) in proc_candidates {
            if count < self.config.min_region_samples {
                outcome.uncoverable_samples += count;
                continue;
            }
            if monitor.has_range(range) {
                continue;
            }
            let id = monitor.add_region(range, RegionKind::Procedure, interval);
            outcome.new_regions.push(id);
        }
        outcome.uncoverable_samples += uncoverable;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use regmon_binary::{Addr, BinaryBuilder};

    /// A binary with one looped procedure and one flat procedure called
    /// from a loop in a driver.
    fn test_binary() -> Binary {
        let mut b = BinaryBuilder::new("t");
        b.procedure("looped", |p| {
            p.straight(2);
            p.loop_(|l| {
                l.straight(10);
            });
        });
        b.procedure("flat", |p| {
            p.straight(30);
        });
        b.procedure("driver", |p| {
            p.loop_(|l| {
                l.call("flat");
            });
        });
        b.build(Addr::new(0x1000))
    }

    fn samples_in(range: AddrRange, n: usize) -> Vec<PcSample> {
        (0..n)
            .map(|i| PcSample {
                addr: range.start() + ((i as u64 * 4) % range.len()),
                cycle: i as u64,
            })
            .collect()
    }

    #[test]
    fn trigger_threshold() {
        let f = RegionFormation::new(FormationConfig::default());
        assert!(!f.should_trigger(0.30));
        assert!(f.should_trigger(0.31));
    }

    #[test]
    fn forms_loop_region_around_hot_samples() {
        let bin = test_binary();
        let lp = bin.procedure_by_name("looped").unwrap().loops()[0].range();
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let f = RegionFormation::new(FormationConfig::default());
        let outcome = f.form(&bin, &samples_in(lp, 100), &mut mon, 7);
        assert_eq!(outcome.new_regions.len(), 1);
        let region = mon.region(outcome.new_regions[0]).unwrap();
        assert_eq!(region.range(), lp);
        assert_eq!(region.kind(), RegionKind::Loop { depth: 0 });
        assert_eq!(region.created_interval(), 7);
    }

    #[test]
    fn flat_procedure_samples_are_uncoverable_without_interproc() {
        let bin = test_binary();
        let flat = bin.procedure_by_name("flat").unwrap().range();
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let f = RegionFormation::new(FormationConfig::default());
        let outcome = f.form(&bin, &samples_in(flat, 100), &mut mon, 0);
        assert!(outcome.new_regions.is_empty());
        assert_eq!(outcome.uncoverable_samples, 100);
        assert!(mon.is_empty());
    }

    #[test]
    fn interprocedural_covers_flat_procedures() {
        let bin = test_binary();
        let flat = bin.procedure_by_name("flat").unwrap().range();
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let f = RegionFormation::new(FormationConfig {
            interprocedural: true,
            ..FormationConfig::default()
        });
        let outcome = f.form(&bin, &samples_in(flat, 100), &mut mon, 0);
        assert_eq!(outcome.new_regions.len(), 1);
        assert_eq!(outcome.uncoverable_samples, 0);
        assert_eq!(
            mon.region(outcome.new_regions[0]).unwrap().kind(),
            RegionKind::Procedure
        );
    }

    #[test]
    fn cold_loops_are_filtered() {
        let bin = test_binary();
        let lp = bin.procedure_by_name("looped").unwrap().loops()[0].range();
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let f = RegionFormation::new(FormationConfig::default());
        let outcome = f.form(&bin, &samples_in(lp, 5), &mut mon, 0);
        assert!(outcome.new_regions.is_empty());
        assert_eq!(outcome.uncoverable_samples, 5);
    }

    #[test]
    fn existing_regions_are_not_duplicated() {
        let bin = test_binary();
        let lp = bin.procedure_by_name("looped").unwrap().loops()[0].range();
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let f = RegionFormation::new(FormationConfig::default());
        let first = f.form(&bin, &samples_in(lp, 100), &mut mon, 0);
        assert_eq!(first.new_regions.len(), 1);
        let second = f.form(&bin, &samples_in(lp, 100), &mut mon, 1);
        assert!(second.new_regions.is_empty());
        assert_eq!(mon.len(), 1);
    }

    #[test]
    fn stray_samples_outside_binary_are_uncoverable() {
        let bin = test_binary();
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let f = RegionFormation::new(FormationConfig {
            interprocedural: true,
            ..FormationConfig::default()
        });
        let strays = vec![PcSample {
            addr: Addr::new(0x9999_0000),
            cycle: 0,
        }];
        let outcome = f.form(&bin, &strays, &mut mon, 0);
        assert_eq!(outcome.uncoverable_samples, 1);
    }
}
