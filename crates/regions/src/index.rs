//! Pluggable sample-attribution indexes.
//!
//! Attribution maps a sampled PC to *all* monitored regions containing it.
//! [`LinearIndex`] is the prototype's O(n) list walk; [`IntervalTreeIndex`]
//! is the paper's proposed O(log n + k) replacement. Both answer exactly
//! the same queries — Figure 16 compares only their cost.

use core::fmt;

use regmon_binary::{Addr, AddrRange};

use crate::interval_tree::IntervalTree;
use crate::region::RegionId;

/// A container of `(RegionId, AddrRange)` pairs supporting stabbing
/// queries.
pub trait RegionIndex: fmt::Debug {
    /// Adds an interval.
    fn insert(&mut self, id: RegionId, range: AddrRange);
    /// Removes an interval; returns `true` when it was present.
    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool;
    /// Appends all ids whose interval contains `addr` to `out`.
    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>);
    /// Number of stored intervals.
    fn len(&self) -> usize;
    /// `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which index implementation a [`crate::RegionMonitor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// O(n) list scan per sample (the prototype's scheme).
    Linear,
    /// O(log n + k) augmented-tree stab per sample (paper §3.2.3).
    #[default]
    IntervalTree,
}

impl IndexKind {
    /// Instantiates the chosen index.
    #[must_use]
    pub fn make(self) -> Box<dyn RegionIndex + Send> {
        match self {
            Self::Linear => Box::new(LinearIndex::new()),
            Self::IntervalTree => Box::new(IntervalTreeIndex::new()),
        }
    }
}

/// The O(n) per-sample list scan.
#[derive(Debug, Clone, Default)]
pub struct LinearIndex {
    entries: Vec<(RegionId, AddrRange)>,
}

impl LinearIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegionIndex for LinearIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        self.entries.push((id, range));
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        match self.entries.iter().position(|e| *e == (id, range)) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        for (id, range) in &self.entries {
            if range.contains(addr) {
                out.push(*id);
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The O(log n + k) augmented-tree index.
#[derive(Debug, Clone, Default)]
pub struct IntervalTreeIndex {
    tree: IntervalTree,
}

impl IntervalTreeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegionIndex for IntervalTreeIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        self.tree.insert(id, range);
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        self.tree.remove(id, range)
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        self.tree.stab(addr, out);
    }

    fn len(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(start: u64, end: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(end))
    }

    fn exercise(mut idx: Box<dyn RegionIndex + Send>) {
        assert!(idx.is_empty());
        idx.insert(RegionId(1), r(0, 10));
        idx.insert(RegionId(2), r(5, 15));
        assert_eq!(idx.len(), 2);
        let mut out = Vec::new();
        idx.stab(Addr::new(7), &mut out);
        out.sort();
        assert_eq!(out, vec![RegionId(1), RegionId(2)]);
        assert!(idx.remove(RegionId(1), r(0, 10)));
        assert!(!idx.remove(RegionId(1), r(0, 10)));
        out.clear();
        idx.stab(Addr::new(7), &mut out);
        assert_eq!(out, vec![RegionId(2)]);
    }

    #[test]
    fn linear_index_basic() {
        exercise(IndexKind::Linear.make());
    }

    #[test]
    fn tree_index_basic() {
        exercise(IndexKind::IntervalTree.make());
    }

    #[test]
    fn default_kind_is_tree() {
        assert_eq!(IndexKind::default(), IndexKind::IntervalTree);
    }

    proptest! {
        #[test]
        fn implementations_agree(
            intervals in prop::collection::vec((0u64..200, 1u64..50), 0..80),
            probes in prop::collection::vec(0u64..260, 1..40),
        ) {
            let mut lin = LinearIndex::new();
            let mut tree = IntervalTreeIndex::new();
            for (i, (s, l)) in intervals.iter().enumerate() {
                lin.insert(RegionId(i as u64), r(*s, s + l));
                tree.insert(RegionId(i as u64), r(*s, s + l));
            }
            for p in probes {
                let mut a = Vec::new();
                let mut b = Vec::new();
                lin.stab(Addr::new(p), &mut a);
                tree.stab(Addr::new(p), &mut b);
                a.sort();
                b.sort();
                prop_assert_eq!(a, b);
            }
        }
    }
}
