//! Pluggable sample-attribution indexes.
//!
//! Attribution maps a sampled PC to *all* monitored regions containing it.
//! [`LinearIndex`] is the prototype's O(n) list walk; [`IntervalTreeIndex`]
//! is the paper's proposed O(log n + k) replacement; [`FlatSortedIndex`]
//! flattens the interval set into sorted elementary segments fronted by
//! a direct-mapped bucket table, so a stab is one shift + one load + a
//! short scan — no pointer chasing at all. All three answer exactly the
//! same queries — Figure 16 compares only their cost.
//!
//! # Batch attribution
//!
//! The monitor's hot path hands the index a whole interval of samples at
//! once via [`RegionIndex::stab_batch`]. The default implementation walks
//! the samples in order through a one-entry **last-hit cache**
//! ([`HitCache`]): every stab also reports the *validity window* — the
//! maximal address range around the query on which the answer set is
//! constant (bounded by the nearest region boundaries) — and consecutive
//! samples that land in the same window are answered without touching the
//! index at all. The paper observes exactly this locality: hot PCs
//! cluster in a handful of regions, so intra-interval streams hit the
//! cache far more often than they miss. [`FlatSortedIndex`] overrides
//! the batch with the same window-cache structure inlined around its
//! O(1) bucket-table lookup, so even locality-free streams stay cheap.

use core::fmt;

use regmon_binary::{Addr, AddrRange};
use regmon_sampling::PcSample;

use crate::interval_tree::IntervalTree;
use crate::region::RegionId;

/// A one-entry last-hit cache for stabbing queries.
///
/// Stores the answer of the previous stab together with the half-open
/// address window `[lo, hi)` on which that answer remains valid (no
/// region boundary lies strictly inside the window). Attribution streams
/// exhibit strong sample locality — consecutive samples usually fall in
/// the same elementary segment — so most lookups are answered here.
#[derive(Debug, Clone, Default)]
pub struct HitCache {
    lo: u64,
    hi: u64,
    ids: Vec<RegionId>,
    valid: bool,
}

impl HitCache {
    /// Creates an empty (always-missing) cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the cached answer covers `addr`.
    #[must_use]
    pub fn covers(&self, addr: Addr) -> bool {
        self.valid && self.lo <= addr.get() && addr.get() < self.hi
    }

    /// The cached answer set (meaningful only after a fill).
    #[must_use]
    pub fn ids(&self) -> &[RegionId] {
        &self.ids
    }

    /// Refills the cache for `addr` by querying `index`, then returns the
    /// (now cached) answer set.
    pub fn refill(&mut self, index: &(impl RegionIndex + ?Sized), addr: Addr) -> &[RegionId] {
        self.ids.clear();
        let (lo, hi) = index.stab_window(addr, &mut self.ids);
        self.lo = lo;
        self.hi = hi;
        self.valid = true;
        &self.ids
    }

    /// Invalidates the cache (e.g. after the index mutated).
    pub fn clear(&mut self) {
        self.valid = false;
    }
}

/// A container of `(RegionId, AddrRange)` pairs supporting stabbing
/// queries.
pub trait RegionIndex: fmt::Debug {
    /// Adds an interval.
    fn insert(&mut self, id: RegionId, range: AddrRange);
    /// Removes an interval; returns `true` when it was present.
    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool;
    /// Appends all ids whose interval contains `addr` to `out`.
    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>);
    /// Number of stored intervals.
    fn len(&self) -> usize;
    /// `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Like [`RegionIndex::stab`], but additionally returns the maximal
    /// half-open window `[lo, hi)` containing `addr` on which the answer
    /// set is constant (i.e. no region start/end lies in `(lo, hi)`
    /// other than at `lo` itself). Implementations may return a
    /// conservative (smaller) window; the default returns the degenerate
    /// single-address window.
    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        self.stab(addr, out);
        (addr.get(), addr.get().saturating_add(1))
    }

    /// Attributes a whole interval of samples: invokes
    /// `emit(i, ids)` exactly once per sample, **in input order**, where
    /// `i` is the sample's position in `samples` and `ids` the set of
    /// containing regions (empty slice for UCR samples).
    ///
    /// The default implementation streams the samples through a
    /// thread-local [`HitCache`] (invalidated on entry, so index
    /// mutations between batches are safe) so runs of samples in the
    /// same elementary segment cost one slice borrow each and the batch
    /// performs no steady-state allocation. Implementations may override
    /// with a sort-and-merge strategy; the emitted sets must be
    /// identical.
    fn stab_batch(&self, samples: &[PcSample], emit: &mut dyn FnMut(usize, &[RegionId])) {
        BATCH_CACHE.with(|cell| {
            let cache = &mut *cell.borrow_mut();
            cache.clear();
            for (i, sample) in samples.iter().enumerate() {
                if cache.covers(sample.addr) {
                    emit(i, cache.ids());
                } else {
                    emit(i, cache.refill(self, sample.addr));
                }
            }
        });
    }
}

/// Which index implementation a [`crate::RegionMonitor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// O(n) list scan per sample (the prototype's scheme).
    Linear,
    /// O(log n + k) augmented-tree stab per sample (paper §3.2.3).
    #[default]
    IntervalTree,
    /// Flat sorted segment array behind a direct-mapped bucket table:
    /// O(1) per stab with zero pointer chasing; rebuilds on mutation.
    FlatSorted,
}

impl IndexKind {
    /// Instantiates the chosen index.
    #[must_use]
    pub fn make(self) -> Box<dyn RegionIndex + Send + Sync> {
        match self {
            Self::Linear => Box::new(LinearIndex::new()),
            Self::IntervalTree => Box::new(IntervalTreeIndex::new()),
            Self::FlatSorted => Box::new(FlatSortedIndex::new()),
        }
    }

    /// Parses a CLI-style name (`linear`/`list`, `tree`/`interval-tree`,
    /// `flat`/`flat-sorted`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "linear" | "list" => Ok(Self::Linear),
            "tree" | "interval-tree" => Ok(Self::IntervalTree),
            "flat" | "flat-sorted" => Ok(Self::FlatSorted),
            other => Err(format!(
                "unknown index kind {other:?}; expected linear|tree|flat"
            )),
        }
    }

    /// Stable short label (`linear`/`tree`/`flat`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Linear => "linear",
            Self::IntervalTree => "tree",
            Self::FlatSorted => "flat",
        }
    }
}

/// The O(n) per-sample list scan.
#[derive(Debug, Clone, Default)]
pub struct LinearIndex {
    entries: Vec<(RegionId, AddrRange)>,
}

impl LinearIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegionIndex for LinearIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        self.entries.push((id, range));
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        match self.entries.iter().position(|e| *e == (id, range)) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        for (id, range) in &self.entries {
            if range.contains(addr) {
                out.push(*id);
            }
        }
    }

    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        let a = addr.get();
        let (mut lo, mut hi) = (0u64, u64::MAX);
        for (id, range) in &self.entries {
            let (s, e) = (range.start().get(), range.end().get());
            if s <= a && a < e {
                out.push(*id);
                lo = lo.max(s);
                hi = hi.min(e);
            } else if s > a {
                hi = hi.min(s);
            } else {
                // Entire range at or below addr: its nearest boundary is
                // its end (or its start, for empty ranges).
                lo = lo.max(e.max(s));
            }
        }
        (lo, hi)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The O(log n + k) augmented-tree index.
#[derive(Debug, Clone, Default)]
pub struct IntervalTreeIndex {
    tree: IntervalTree,
}

impl IntervalTreeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegionIndex for IntervalTreeIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        self.tree.insert(id, range);
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        self.tree.remove(id, range)
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        self.tree.stab(addr, out);
    }

    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        self.tree.stab_window(addr, out)
    }

    fn len(&self) -> usize {
        self.tree.len()
    }
}

std::thread_local! {
    /// Per-thread [`HitCache`] backing the default
    /// [`RegionIndex::stab_batch`], so repeated batches on one thread
    /// (the shard-worker steady state) never allocate.
    static BATCH_CACHE: std::cell::RefCell<HitCache> =
        std::cell::RefCell::new(HitCache::new());
}

/// Sentinel segment meaning "outside every elementary segment".
const NO_SEG: u32 = u32::MAX;

/// Upper bound on the bucket table's entry count (128 KiB of `u32`s).
/// The shift widens until the covered span fits.
const TABLE_MAX_ENTRIES: usize = 1 << 15;

/// A flat, fully sorted attribution index.
///
/// The interval set is compiled into *elementary segments*: the sorted,
/// deduplicated array of all region boundaries (`cuts`) splits the
/// address space into runs on which the answer set is constant, and a
/// CSR layout (`offsets` into `ids`) stores each run's covering regions
/// (sorted by id). A stab is a segment lookup over a contiguous `u64`
/// array plus one slice borrow — no pointer chasing, no per-node
/// branching.
///
/// The segment lookup itself is served by a direct-mapped *bucket
/// table*: the covered span is split into `2^shift`-byte buckets, each
/// storing the segment containing its first address. A lookup shifts,
/// loads one `u32` and advances past at most the cuts that fall inside
/// that bucket — O(1) with dense monitored text, degrading gracefully
/// (and still bounded by a binary search fallback never being needed)
/// when regions are sparse. The shift widens until the table fits
/// [`TABLE_MAX_ENTRIES`], so memory stays bounded for arbitrarily wide
/// binaries.
///
/// Mutations recompile segments and table (O(n log n + coverage +
/// buckets)). Regions change a few times per *run* (formation /
/// pruning events) while stabs happen thousands of times per
/// *interval*, so this is the right side of the trade.
#[derive(Debug, Clone, Default)]
pub struct FlatSortedIndex {
    /// The authoritative interval set, sorted by `(start, end, id)`.
    entries: Vec<(AddrRange, RegionId)>,
    /// Sorted, deduplicated region boundaries. `cuts[i]..cuts[i+1]` is
    /// elementary segment `i`.
    cuts: Vec<u64>,
    /// CSR row offsets into `ids`, one row per elementary segment.
    offsets: Vec<u32>,
    /// Concatenated per-segment answer sets, each sorted by id.
    ids: Vec<RegionId>,
    /// Direct-mapped bucket table: `table[(a - table_base) >>
    /// table_shift]` is the segment containing the bucket's first
    /// address.
    table: Vec<u32>,
    /// First covered address (`cuts[0]`); the table's origin.
    table_base: u64,
    /// log2 of the bucket width in bytes.
    table_shift: u32,
}

impl FlatSortedIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Recompiles `cuts`/`offsets`/`ids` and the bucket table from
    /// `entries`.
    fn rebuild(&mut self) {
        self.cuts.clear();
        self.offsets.clear();
        self.ids.clear();
        self.table.clear();
        if self.entries.is_empty() {
            return;
        }
        for (range, _) in &self.entries {
            if !range.is_empty() {
                self.cuts.push(range.start().get());
                self.cuts.push(range.end().get());
            }
        }
        self.cuts.sort_unstable();
        self.cuts.dedup();
        let segs = self.cuts.len().saturating_sub(1);
        if segs == 0 {
            self.cuts.clear();
            return;
        }
        // Coverage pairs (segment, id), then counting-sorted into CSR.
        let mut pairs: Vec<(u32, RegionId)> = Vec::new();
        for (range, id) in &self.entries {
            if range.is_empty() {
                continue;
            }
            let first = self.cuts.partition_point(|&c| c < range.start().get());
            let last = self.cuts.partition_point(|&c| c < range.end().get());
            for seg in first..last {
                pairs.push((seg as u32, *id));
            }
        }
        pairs.sort_unstable_by_key(|&(seg, id)| (seg, id.0));
        self.offsets = Vec::with_capacity(segs + 1);
        self.ids = Vec::with_capacity(pairs.len());
        let mut next = 0usize;
        self.offsets.push(0);
        for seg in 0..segs as u32 {
            while next < pairs.len() && pairs[next].0 == seg {
                self.ids.push(pairs[next].1);
                next += 1;
            }
            self.offsets.push(self.ids.len() as u32);
        }

        // Bucket table over the covered span [cuts[0], cuts[last]).
        let lo = self.cuts[0];
        let hi = *self.cuts.last().expect("non-empty cuts");
        let span = hi - lo;
        let mut shift = 0u32;
        while ((span >> shift) as usize).saturating_add(1) > TABLE_MAX_ENTRIES {
            shift += 1;
        }
        self.table_base = lo;
        self.table_shift = shift;
        let buckets = (span >> shift) as usize + 1;
        self.table.reserve(buckets);
        let mut seg = 0usize;
        for b in 0..buckets {
            let bucket_start = lo + ((b as u64) << shift);
            while seg + 2 < self.cuts.len() && self.cuts[seg + 1] <= bucket_start {
                seg += 1;
            }
            self.table.push(seg as u32);
        }
    }

    /// The elementary segment containing `addr`, or [`NO_SEG`].
    ///
    /// One shift, one table load, then a forward scan past however many
    /// cuts share the bucket — O(1) when buckets are at least as fine as
    /// segments (the common case; the shift only widens on very large
    /// spans).
    #[inline]
    fn segment_of(&self, addr: u64) -> u32 {
        if self.table.is_empty()
            || addr < self.table_base
            || addr >= *self.cuts.last().expect("table implies cuts")
        {
            return NO_SEG;
        }
        let bucket = ((addr - self.table_base) >> self.table_shift) as usize;
        let mut seg = self.table[bucket] as usize;
        // `addr < cuts[last]` guarantees the scan stops in bounds.
        while self.cuts[seg + 1] <= addr {
            seg += 1;
        }
        seg as u32
    }

    /// The answer set of segment `seg` (empty for [`NO_SEG`]).
    #[inline]
    fn seg_ids(&self, seg: u32) -> &[RegionId] {
        if seg == NO_SEG {
            &[]
        } else {
            let s = self.offsets[seg as usize] as usize;
            let e = self.offsets[seg as usize + 1] as usize;
            &self.ids[s..e]
        }
    }
}

impl RegionIndex for FlatSortedIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        let pos = self.entries.partition_point(|&(r, i)| {
            (r.start(), r.end(), i.0) < (range.start(), range.end(), id.0)
        });
        self.entries.insert(pos, (range, id));
        self.rebuild();
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        match self.entries.iter().position(|e| *e == (range, id)) {
            Some(pos) => {
                self.entries.remove(pos);
                self.rebuild();
                true
            }
            None => false,
        }
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        out.extend_from_slice(self.seg_ids(self.segment_of(addr.get())));
    }

    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        let seg = self.segment_of(addr.get());
        out.extend_from_slice(self.seg_ids(seg));
        if seg == NO_SEG {
            // Outside the covered span: constant-empty until the nearest
            // boundary on each side.
            if self.cuts.is_empty() {
                return (0, u64::MAX);
            }
            if addr.get() < self.cuts[0] {
                return (0, self.cuts[0]);
            }
            return (*self.cuts.last().expect("non-empty"), u64::MAX);
        }
        (self.cuts[seg as usize], self.cuts[seg as usize + 1])
    }

    fn stab_batch(&self, samples: &[PcSample], emit: &mut dyn FnMut(usize, &[RegionId])) {
        // Per-sample bucket-table lookup behind an inline validity-window
        // cache: consecutive samples inside one elementary segment (the
        // loop-dominated steady state) reuse the previous answer with a
        // two-compare check, and a cache miss costs one shift + one load
        // + a short scan. No sorting, no scratch, no allocation.
        let mut lo = 1u64;
        let mut hi = 0u64; // empty window: the first sample always misses
        let mut ids: &[RegionId] = &[];
        for (i, sample) in samples.iter().enumerate() {
            let a = sample.addr.get();
            if a < lo || a >= hi {
                let seg = self.segment_of(a);
                ids = self.seg_ids(seg);
                if seg == NO_SEG {
                    // Outside the covered span: constant-empty up to the
                    // nearest boundary on each side.
                    if self.cuts.is_empty() {
                        (lo, hi) = (0, u64::MAX);
                    } else if a < self.cuts[0] {
                        (lo, hi) = (0, self.cuts[0]);
                    } else {
                        (lo, hi) = (*self.cuts.last().expect("non-empty"), u64::MAX);
                    }
                } else {
                    lo = self.cuts[seg as usize];
                    hi = self.cuts[seg as usize + 1];
                }
            }
            emit(i, ids);
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(start: u64, end: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(end))
    }

    fn exercise(mut idx: Box<dyn RegionIndex + Send + Sync>) {
        assert!(idx.is_empty());
        idx.insert(RegionId(1), r(0, 10));
        idx.insert(RegionId(2), r(5, 15));
        assert_eq!(idx.len(), 2);
        let mut out = Vec::new();
        idx.stab(Addr::new(7), &mut out);
        out.sort();
        assert_eq!(out, vec![RegionId(1), RegionId(2)]);
        assert!(idx.remove(RegionId(1), r(0, 10)));
        assert!(!idx.remove(RegionId(1), r(0, 10)));
        out.clear();
        idx.stab(Addr::new(7), &mut out);
        assert_eq!(out, vec![RegionId(2)]);
    }

    #[test]
    fn linear_index_basic() {
        exercise(IndexKind::Linear.make());
    }

    #[test]
    fn tree_index_basic() {
        exercise(IndexKind::IntervalTree.make());
    }

    #[test]
    fn flat_index_basic() {
        exercise(IndexKind::FlatSorted.make());
    }

    #[test]
    fn default_kind_is_tree() {
        assert_eq!(IndexKind::default(), IndexKind::IntervalTree);
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            assert_eq!(IndexKind::parse(kind.label()), Ok(kind));
        }
        assert!(IndexKind::parse("btree").is_err());
        assert_eq!(IndexKind::parse("list"), Ok(IndexKind::Linear));
        assert_eq!(
            IndexKind::parse("interval-tree"),
            Ok(IndexKind::IntervalTree)
        );
        assert_eq!(IndexKind::parse("flat-sorted"), Ok(IndexKind::FlatSorted));
    }

    #[test]
    fn flat_stab_outside_span_is_empty() {
        let mut idx = FlatSortedIndex::new();
        idx.insert(RegionId(1), r(100, 200));
        let mut out = Vec::new();
        for probe in [0, 99, 200, 300] {
            out.clear();
            idx.stab(Addr::new(probe), &mut out);
            assert!(out.is_empty(), "probe {probe} hit {out:?}");
        }
    }

    #[test]
    fn windows_are_sound_and_stabs_agree() {
        // Adjacent + nested + disjoint intervals; probe every address and
        // check that each kind's window reproduces the exact answer set
        // across the whole window.
        let intervals = [
            (1u64, r(10, 30)),
            (2, r(20, 40)),
            (3, r(25, 28)),
            (4, r(40, 50)),
            (5, r(60, 61)),
        ];
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut idx = kind.make();
            for (id, range) in intervals {
                idx.insert(RegionId(id), range);
            }
            for probe in 0..70u64 {
                let mut expect = Vec::new();
                idx.stab(Addr::new(probe), &mut expect);
                expect.sort();
                let mut got = Vec::new();
                let (lo, hi) = idx.stab_window(Addr::new(probe), &mut got);
                got.sort();
                assert_eq!(got, expect, "{kind:?} probe {probe}");
                assert!(lo <= probe && probe < hi, "{kind:?} window {lo}..{hi}");
                // Every address in the window must share the answer.
                for w in lo..hi.min(70) {
                    let mut at_w = Vec::new();
                    idx.stab(Addr::new(w), &mut at_w);
                    at_w.sort();
                    assert_eq!(at_w, expect, "{kind:?} window {lo}..{hi} probe {w}");
                }
            }
        }
    }

    #[test]
    fn stab_batch_matches_per_sample_and_preserves_order() {
        let intervals = [(1u64, r(0, 40)), (2, r(16, 64)), (3, r(100, 140))];
        let addrs = [5u64, 120, 5, 20, 80, 39, 40, 0, 139, 140, 200];
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut idx = kind.make();
            for (id, range) in intervals {
                idx.insert(RegionId(id), range);
            }
            let samples: Vec<PcSample> = addrs
                .iter()
                .map(|&a| PcSample {
                    addr: Addr::new(a),
                    cycle: a,
                })
                .collect();
            let mut seen = Vec::new();
            idx.stab_batch(&samples, &mut |i, ids| {
                let mut ids = ids.to_vec();
                ids.sort();
                seen.push((i, ids));
            });
            assert_eq!(seen.len(), samples.len(), "{kind:?}");
            for (pos, (i, ids)) in seen.iter().enumerate() {
                assert_eq!(pos, *i, "{kind:?} emitted out of order");
                let mut expect = Vec::new();
                idx.stab(samples[*i].addr, &mut expect);
                expect.sort();
                assert_eq!(ids, &expect, "{kind:?} sample {i}");
            }
        }
    }

    #[test]
    fn hit_cache_reuses_windows() {
        let mut idx = FlatSortedIndex::new();
        idx.insert(RegionId(7), r(100, 200));
        let mut cache = HitCache::new();
        assert!(!cache.covers(Addr::new(150)));
        assert_eq!(cache.refill(&idx, Addr::new(150)), &[RegionId(7)]);
        assert!(cache.covers(Addr::new(199)));
        assert!(cache.covers(Addr::new(100)));
        assert!(!cache.covers(Addr::new(200)));
        assert!(!cache.covers(Addr::new(99)));
        cache.clear();
        assert!(!cache.covers(Addr::new(150)));
    }

    proptest! {
        #[test]
        fn implementations_agree(
            intervals in prop::collection::vec((0u64..200, 1u64..50), 0..80),
            probes in prop::collection::vec(0u64..260, 1..40),
        ) {
            let mut lin = LinearIndex::new();
            let mut tree = IntervalTreeIndex::new();
            let mut flat = FlatSortedIndex::new();
            for (i, (s, l)) in intervals.iter().enumerate() {
                lin.insert(RegionId(i as u64), r(*s, s + l));
                tree.insert(RegionId(i as u64), r(*s, s + l));
                flat.insert(RegionId(i as u64), r(*s, s + l));
            }
            for p in probes {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let mut c = Vec::new();
                lin.stab(Addr::new(p), &mut a);
                tree.stab(Addr::new(p), &mut b);
                flat.stab(Addr::new(p), &mut c);
                a.sort();
                b.sort();
                c.sort();
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(&a, &c);
            }
        }

        #[test]
        fn windows_agree_with_exhaustive_scan(
            intervals in prop::collection::vec((0u64..120, 1u64..40), 1..24),
            probes in prop::collection::vec(0u64..200, 1..24),
        ) {
            for kind in [IndexKind::Linear, IndexKind::IntervalTree, IndexKind::FlatSorted] {
                let mut idx = kind.make();
                for (i, (s, l)) in intervals.iter().enumerate() {
                    idx.insert(RegionId(i as u64), r(*s, s + l));
                }
                for &p in &probes {
                    let mut expect = Vec::new();
                    idx.stab(Addr::new(p), &mut expect);
                    expect.sort();
                    let mut got = Vec::new();
                    let (lo, hi) = idx.stab_window(Addr::new(p), &mut got);
                    got.sort();
                    prop_assert_eq!(&got, &expect);
                    prop_assert!(lo <= p && p < hi);
                    // Soundness at the window's edges (cheap spot checks).
                    for w in [lo, p.saturating_sub(1).max(lo), (hi - 1).min(200)] {
                        if w >= lo && w < hi {
                            let mut at_w = Vec::new();
                            idx.stab(Addr::new(w), &mut at_w);
                            at_w.sort();
                            prop_assert_eq!(&at_w, &expect);
                        }
                    }
                }
            }
        }
    }
}
