//! Pluggable sample-attribution indexes.
//!
//! Attribution maps a sampled PC to *all* monitored regions containing it.
//! [`LinearIndex`] is the prototype's O(n) list walk; [`IntervalTreeIndex`]
//! is the paper's proposed O(log n + k) replacement; [`FlatSortedIndex`]
//! flattens the interval set into sorted elementary segments fronted by
//! a direct-mapped bucket table, so a stab is one shift + one load + a
//! short scan — no pointer chasing at all. All three answer exactly the
//! same queries — Figure 16 compares only their cost.
//!
//! # Batch attribution
//!
//! The monitor's hot path hands the index a whole interval of samples at
//! once via [`RegionIndex::stab_batch`]. The default implementation walks
//! the samples in order through a one-entry **last-hit cache**
//! ([`HitCache`]): every stab also reports the *validity window* — the
//! maximal address range around the query on which the answer set is
//! constant (bounded by the nearest region boundaries) — and consecutive
//! samples that land in the same window are answered without touching the
//! index at all. The paper observes exactly this locality: hot PCs
//! cluster in a handful of regions, so intra-interval streams hit the
//! cache far more often than they miss. [`FlatSortedIndex`] overrides
//! the batch with the same window-cache structure inlined around its
//! O(1) bucket-table lookup, so even locality-free streams stay cheap.

use core::fmt;

use regmon_binary::{Addr, AddrRange};
use regmon_sampling::PcSample;

use crate::interval_tree::IntervalTree;
use crate::region::RegionId;

/// A one-entry last-hit cache for stabbing queries.
///
/// Stores the answer of the previous stab together with the half-open
/// address window `[lo, hi)` on which that answer remains valid (no
/// region boundary lies strictly inside the window). Attribution streams
/// exhibit strong sample locality — consecutive samples usually fall in
/// the same elementary segment — so most lookups are answered here.
#[derive(Debug, Clone, Default)]
pub struct HitCache {
    lo: u64,
    hi: u64,
    ids: Vec<RegionId>,
    valid: bool,
}

impl HitCache {
    /// Creates an empty (always-missing) cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the cached answer covers `addr`.
    #[must_use]
    pub fn covers(&self, addr: Addr) -> bool {
        self.valid && self.lo <= addr.get() && addr.get() < self.hi
    }

    /// The cached answer set (meaningful only after a fill).
    #[must_use]
    pub fn ids(&self) -> &[RegionId] {
        &self.ids
    }

    /// Refills the cache for `addr` by querying `index`, then returns the
    /// (now cached) answer set.
    pub fn refill(&mut self, index: &(impl RegionIndex + ?Sized), addr: Addr) -> &[RegionId] {
        self.ids.clear();
        let (lo, hi) = index.stab_window(addr, &mut self.ids);
        self.lo = lo;
        self.hi = hi;
        self.valid = true;
        &self.ids
    }

    /// Invalidates the cache (e.g. after the index mutated).
    pub fn clear(&mut self) {
        self.valid = false;
    }
}

/// A container of `(RegionId, AddrRange)` pairs supporting stabbing
/// queries.
pub trait RegionIndex: fmt::Debug {
    /// Adds an interval.
    fn insert(&mut self, id: RegionId, range: AddrRange);
    /// Removes an interval; returns `true` when it was present.
    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool;
    /// Appends all ids whose interval contains `addr` to `out`.
    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>);
    /// Number of stored intervals.
    fn len(&self) -> usize;
    /// `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Like [`RegionIndex::stab`], but additionally returns the maximal
    /// half-open window `[lo, hi)` containing `addr` on which the answer
    /// set is constant (i.e. no region start/end lies in `(lo, hi)`
    /// other than at `lo` itself). Implementations may return a
    /// conservative (smaller) window; the default returns the degenerate
    /// single-address window.
    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        self.stab(addr, out);
        (addr.get(), addr.get().saturating_add(1))
    }

    /// Attributes a whole interval of samples: invokes
    /// `emit(i, ids)` exactly once per sample, **in input order**, where
    /// `i` is the sample's position in `samples` and `ids` the set of
    /// containing regions (empty slice for UCR samples).
    ///
    /// The default implementation streams the samples through a
    /// thread-local [`HitCache`] (invalidated on entry, so index
    /// mutations between batches are safe) so runs of samples in the
    /// same elementary segment cost one slice borrow each and the batch
    /// performs no steady-state allocation. Implementations may override
    /// with a sort-and-merge strategy; the emitted sets must be
    /// identical.
    fn stab_batch(&self, samples: &[PcSample], emit: &mut dyn FnMut(usize, &[RegionId])) {
        BATCH_CACHE.with(|cell| {
            let cache = &mut *cell.borrow_mut();
            cache.clear();
            for (i, sample) in samples.iter().enumerate() {
                if cache.covers(sample.addr) {
                    emit(i, cache.ids());
                } else {
                    emit(i, cache.refill(self, sample.addr));
                }
            }
        });
    }

    /// Downcast hook for the monitor's fused flat-index attribution
    /// kernel ([`crate::RegionMonitor::attribute`]); only
    /// [`FlatSortedIndex`] returns itself.
    fn as_flat(&self) -> Option<&FlatSortedIndex> {
        None
    }
}

/// Which index implementation a [`crate::RegionMonitor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// O(n) list scan per sample (the prototype's scheme).
    Linear,
    /// O(log n + k) augmented-tree stab per sample (paper §3.2.3).
    #[default]
    IntervalTree,
    /// Flat sorted segment array behind a direct-mapped bucket table:
    /// O(1) per stab with zero pointer chasing; rebuilds on mutation.
    FlatSorted,
}

impl IndexKind {
    /// Instantiates the chosen index.
    #[must_use]
    pub fn make(self) -> Box<dyn RegionIndex + Send + Sync> {
        match self {
            Self::Linear => Box::new(LinearIndex::new()),
            Self::IntervalTree => Box::new(IntervalTreeIndex::new()),
            Self::FlatSorted => Box::new(FlatSortedIndex::new()),
        }
    }

    /// Parses a CLI-style name (`linear`/`list`, `tree`/`interval-tree`,
    /// `flat`/`flat-sorted`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "linear" | "list" => Ok(Self::Linear),
            "tree" | "interval-tree" => Ok(Self::IntervalTree),
            "flat" | "flat-sorted" => Ok(Self::FlatSorted),
            other => Err(format!(
                "unknown index kind {other:?}; expected linear|tree|flat"
            )),
        }
    }

    /// Stable short label (`linear`/`tree`/`flat`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Linear => "linear",
            Self::IntervalTree => "tree",
            Self::FlatSorted => "flat",
        }
    }
}

/// The O(n) per-sample list scan.
#[derive(Debug, Clone, Default)]
pub struct LinearIndex {
    entries: Vec<(RegionId, AddrRange)>,
}

impl LinearIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegionIndex for LinearIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        self.entries.push((id, range));
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        match self.entries.iter().position(|e| *e == (id, range)) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        for (id, range) in &self.entries {
            if range.contains(addr) {
                out.push(*id);
            }
        }
    }

    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        let a = addr.get();
        let (mut lo, mut hi) = (0u64, u64::MAX);
        for (id, range) in &self.entries {
            let (s, e) = (range.start().get(), range.end().get());
            if s <= a && a < e {
                out.push(*id);
                lo = lo.max(s);
                hi = hi.min(e);
            } else if s > a {
                hi = hi.min(s);
            } else {
                // Entire range at or below addr: its nearest boundary is
                // its end (or its start, for empty ranges).
                lo = lo.max(e.max(s));
            }
        }
        (lo, hi)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The O(log n + k) augmented-tree index.
#[derive(Debug, Clone, Default)]
pub struct IntervalTreeIndex {
    tree: IntervalTree,
}

impl IntervalTreeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegionIndex for IntervalTreeIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        self.tree.insert(id, range);
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        self.tree.remove(id, range)
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        self.tree.stab(addr, out);
    }

    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        self.tree.stab_window(addr, out)
    }

    fn len(&self) -> usize {
        self.tree.len()
    }
}

std::thread_local! {
    /// Per-thread [`HitCache`] backing the default
    /// [`RegionIndex::stab_batch`], so repeated batches on one thread
    /// (the shard-worker steady state) never allocate.
    static BATCH_CACHE: std::cell::RefCell<HitCache> =
        std::cell::RefCell::new(HitCache::new());
}

/// Sentinel segment meaning "outside every elementary segment".
pub(crate) const NO_SEG: u32 = u32::MAX;

/// Upper bound on the bucket table's entry count (128 KiB of `u32`s).
/// The shift widens until the covered span fits.
const TABLE_MAX_ENTRIES: usize = 1 << 15;

/// A flat, fully sorted attribution index.
///
/// The interval set is compiled into *elementary segments*: the sorted,
/// deduplicated array of all region boundaries (`cuts`) splits the
/// address space into runs on which the answer set is constant, and a
/// CSR layout (`offsets` into `ids`) stores each run's covering regions
/// (sorted by id). A stab is a segment lookup over a contiguous `u64`
/// array plus one slice borrow — no pointer chasing, no per-node
/// branching.
///
/// The segment lookup itself is served by a direct-mapped *bucket
/// table*: the covered span is split into `2^shift`-byte buckets, each
/// storing the segment containing its first address. A lookup shifts,
/// loads one `u32` and advances past at most the cuts that fall inside
/// that bucket — O(1) with dense monitored text, degrading gracefully
/// (and still bounded by a binary search fallback never being needed)
/// when regions are sparse. The shift widens until the table fits
/// [`TABLE_MAX_ENTRIES`], so memory stays bounded for arbitrarily wide
/// binaries.
///
/// Mutations recompile segments and table (O(n log n + coverage +
/// buckets)). Regions change a few times per *run* (formation /
/// pruning events) while stabs happen thousands of times per
/// *interval*, so this is the right side of the trade.
#[derive(Debug, Clone, Default)]
pub struct FlatSortedIndex {
    /// The authoritative interval set, sorted by `(start, end, id)`.
    entries: Vec<(AddrRange, RegionId)>,
    /// Sorted, deduplicated region boundaries. `cuts[i]..cuts[i+1]` is
    /// elementary segment `i`.
    cuts: Vec<u64>,
    /// CSR row offsets into `ids`, one row per elementary segment.
    offsets: Vec<u32>,
    /// Concatenated per-segment answer sets, each sorted by id.
    ids: Vec<RegionId>,
    /// Direct-mapped bucket table: `table[(a - table_base) >>
    /// table_shift]` is the segment containing the bucket's first
    /// address.
    table: Vec<u32>,
    /// First covered address (`cuts[0]`); the table's origin.
    table_base: u64,
    /// log2 of the bucket width in bytes.
    table_shift: u32,
}

impl FlatSortedIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Recompiles `cuts`/`offsets`/`ids` and the bucket table from
    /// `entries`.
    fn rebuild(&mut self) {
        self.cuts.clear();
        self.offsets.clear();
        self.ids.clear();
        self.table.clear();
        if self.entries.is_empty() {
            return;
        }
        for (range, _) in &self.entries {
            if !range.is_empty() {
                self.cuts.push(range.start().get());
                self.cuts.push(range.end().get());
            }
        }
        self.cuts.sort_unstable();
        self.cuts.dedup();
        let segs = self.cuts.len().saturating_sub(1);
        if segs == 0 {
            self.cuts.clear();
            return;
        }
        // Coverage pairs (segment, id), then counting-sorted into CSR.
        let mut pairs: Vec<(u32, RegionId)> = Vec::new();
        for (range, id) in &self.entries {
            if range.is_empty() {
                continue;
            }
            let first = self.cuts.partition_point(|&c| c < range.start().get());
            let last = self.cuts.partition_point(|&c| c < range.end().get());
            for seg in first..last {
                pairs.push((seg as u32, *id));
            }
        }
        pairs.sort_unstable_by_key(|&(seg, id)| (seg, id.0));
        self.offsets = Vec::with_capacity(segs + 1);
        self.ids = Vec::with_capacity(pairs.len());
        let mut next = 0usize;
        self.offsets.push(0);
        for seg in 0..segs as u32 {
            while next < pairs.len() && pairs[next].0 == seg {
                self.ids.push(pairs[next].1);
                next += 1;
            }
            self.offsets.push(self.ids.len() as u32);
        }

        // Bucket table over the covered span [cuts[0], cuts[last]).
        // Sizing: ~4 buckets per segment keeps the correction scan at
        // zero or one step while staying L1-resident for realistic
        // region sets (the old span-only policy built tables up to
        // [`TABLE_MAX_ENTRIES`] even when a few hundred buckets would
        // do, pushing every random-order lookup out to L2).
        let lo = self.cuts[0];
        let hi = *self.cuts.last().expect("non-empty cuts");
        let span = hi - lo;
        let target = (4 * segs).next_power_of_two().clamp(64, TABLE_MAX_ENTRIES);
        let mut shift = 0u32;
        while ((span >> shift) as usize).saturating_add(1) > target {
            shift += 1;
        }
        self.table_base = lo;
        self.table_shift = shift;
        let buckets = (span >> shift) as usize + 1;
        self.table.reserve(buckets);
        let mut seg = 0usize;
        for b in 0..buckets {
            let bucket_start = lo + ((b as u64) << shift);
            while seg + 2 < self.cuts.len() && self.cuts[seg + 1] <= bucket_start {
                seg += 1;
            }
            self.table.push(seg as u32);
        }
    }

    /// The elementary segment containing `addr`, or [`NO_SEG`].
    ///
    /// One shift, one table load, then a forward scan past however many
    /// cuts share the bucket — O(1) when buckets are at least as fine as
    /// segments (the common case; the shift only widens on very large
    /// spans).
    #[inline]
    fn segment_of(&self, addr: u64) -> u32 {
        if self.table.is_empty()
            || addr < self.table_base
            || addr >= *self.cuts.last().expect("table implies cuts")
        {
            return NO_SEG;
        }
        let bucket = ((addr - self.table_base) >> self.table_shift) as usize;
        let mut seg = self.table[bucket] as usize;
        // `addr < cuts[last]` guarantees the scan stops in bounds.
        while self.cuts[seg + 1] <= addr {
            seg += 1;
        }
        seg as u32
    }

    /// The answer set of segment `seg` (empty for [`NO_SEG`]).
    #[inline]
    pub(crate) fn seg_ids(&self, seg: u32) -> &[RegionId] {
        if seg == NO_SEG {
            &[]
        } else {
            let s = self.offsets[seg as usize] as usize;
            let e = self.offsets[seg as usize + 1] as usize;
            &self.ids[s..e]
        }
    }

    /// The validity window of `addr` given its segment: the segment's
    /// span, or the constant-empty gap up to the nearest boundary when
    /// `addr` is outside the covered span.
    #[inline]
    fn window_of_seg(&self, addr: u64, seg: u32) -> (u64, u64) {
        if seg == NO_SEG {
            if self.cuts.is_empty() {
                (0, u64::MAX)
            } else if addr < self.cuts[0] {
                (0, self.cuts[0])
            } else {
                (*self.cuts.last().expect("non-empty"), u64::MAX)
            }
        } else {
            (self.cuts[seg as usize], self.cuts[seg as usize + 1])
        }
    }

    /// The scalar batch stab: per-sample bucket-table lookup behind an
    /// inline validity-window cache. Kept as the oracle for the SIMD
    /// block path (emissions are a pure function of each sample's
    /// address, so both paths emit identical id slices in identical
    /// order).
    fn stab_batch_scalar(&self, samples: &[PcSample], emit: &mut dyn FnMut(usize, &[RegionId])) {
        let mut lo = 1u64;
        let mut hi = 0u64; // empty window: the first sample always misses
        let mut ids: &[RegionId] = &[];
        for (i, sample) in samples.iter().enumerate() {
            let a = sample.addr.get();
            if a < lo || a >= hi {
                let seg = self.segment_of(a);
                ids = self.seg_ids(seg);
                (lo, hi) = self.window_of_seg(a, seg);
            }
            emit(i, ids);
        }
    }

    /// Number of elementary segments currently compiled.
    pub(crate) fn nsegs(&self) -> usize {
        self.cuts.len().saturating_sub(1)
    }

    /// `true` when the bucket table is compiled (at least one non-empty
    /// region) — the precondition of the bulk segment resolvers.
    pub(crate) fn has_table(&self) -> bool {
        !self.table.is_empty()
    }

    /// The half-open address span of elementary segment `seg`.
    pub(crate) fn seg_span(&self, seg: u32) -> (u64, u64) {
        (self.cuts[seg as usize], self.cuts[seg as usize + 1])
    }

    /// Resolves every sample's elementary segment into `segs` (one
    /// entry per sample), eight samples per AVX2 block with the same
    /// validity-window fast path as
    /// [`FlatSortedIndex::stab_batch_avx2`]. Out-of-span samples get
    /// [`FlatSortedIndex::nsegs`] — one past the last segment — so the
    /// caller can index a `nsegs + 1`-entry side table without
    /// clamping. This is the vector front half of the monitor's fused
    /// attribution kernel.
    ///
    /// Caller contract: AVX2 dispatch is active and
    /// [`FlatSortedIndex::has_table`] holds.
    #[cfg(target_arch = "x86_64")]
    pub(crate) fn segments_bulk_avx2(&self, samples: &[PcSample], segs: &mut Vec<u32>) {
        let sentinel = self.nsegs() as u32;
        segs.clear();
        segs.resize(samples.len(), sentinel);
        stab_x86::resolve_all(
            &self.cuts,
            &self.table,
            self.table_base,
            self.table_shift,
            sentinel,
            samples,
            segs,
        );
    }

    /// The AVX2 batch stab: samples resolve in 8-wide blocks. A packed
    /// unsigned compare tests the whole block against the current
    /// validity window (the loop-dominated steady state answers eight
    /// samples with two compares); on a miss, the block's buckets are
    /// computed with packed subtract/shift and the bucket table is
    /// loaded with a masked 8-lane gather, leaving only the short
    /// cut-scan per lane scalar. Emissions are bitwise identical to
    /// [`FlatSortedIndex::stab_batch_scalar`] — integer compares and
    /// loads only, no reassociation anywhere.
    #[cfg(target_arch = "x86_64")]
    fn stab_batch_avx2(&self, samples: &[PcSample], emit: &mut dyn FnMut(usize, &[RegionId])) {
        use stab_x86::BLOCK;
        let mut lo = 1u64;
        let mut hi = 0u64; // empty window: the first block always misses
        let mut ids: &[RegionId] = &[];
        let mut addrs = [0u64; BLOCK];
        let mut segs = [NO_SEG; BLOCK];
        let mut base_i = 0usize;
        let mut chunks = samples.chunks_exact(BLOCK);
        for chunk in chunks.by_ref() {
            for (a, s) in addrs.iter_mut().zip(chunk) {
                *a = s.addr.get();
            }
            if stab_x86::all_in_window(&addrs, lo, hi) {
                for i in 0..BLOCK {
                    emit(base_i + i, ids);
                }
            } else {
                stab_x86::segments(
                    &self.cuts,
                    &self.table,
                    self.table_base,
                    self.table_shift,
                    &addrs,
                    &mut segs,
                );
                for (i, &seg) in segs.iter().enumerate() {
                    emit(base_i + i, self.seg_ids(seg));
                }
                // Carry the last sample's window into the next block —
                // the same invariant the scalar loop maintains (its
                // window always contains the last processed sample).
                let last = BLOCK - 1;
                (lo, hi) = self.window_of_seg(addrs[last], segs[last]);
                ids = self.seg_ids(segs[last]);
            }
            base_i += BLOCK;
        }
        for (i, sample) in chunks.remainder().iter().enumerate() {
            let a = sample.addr.get();
            if a < lo || a >= hi {
                let seg = self.segment_of(a);
                ids = self.seg_ids(seg);
                (lo, hi) = self.window_of_seg(a, seg);
            }
            emit(base_i + i, ids);
        }
    }
}

impl RegionIndex for FlatSortedIndex {
    fn insert(&mut self, id: RegionId, range: AddrRange) {
        let pos = self.entries.partition_point(|&(r, i)| {
            (r.start(), r.end(), i.0) < (range.start(), range.end(), id.0)
        });
        self.entries.insert(pos, (range, id));
        self.rebuild();
    }

    fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        match self.entries.iter().position(|e| *e == (range, id)) {
            Some(pos) => {
                self.entries.remove(pos);
                self.rebuild();
                true
            }
            None => false,
        }
    }

    fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        out.extend_from_slice(self.seg_ids(self.segment_of(addr.get())));
    }

    fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        let seg = self.segment_of(addr.get());
        out.extend_from_slice(self.seg_ids(seg));
        if seg == NO_SEG {
            // Outside the covered span: constant-empty until the nearest
            // boundary on each side.
            if self.cuts.is_empty() {
                return (0, u64::MAX);
            }
            if addr.get() < self.cuts[0] {
                return (0, self.cuts[0]);
            }
            return (*self.cuts.last().expect("non-empty"), u64::MAX);
        }
        (self.cuts[seg as usize], self.cuts[seg as usize + 1])
    }

    fn stab_batch(&self, samples: &[PcSample], emit: &mut dyn FnMut(usize, &[RegionId])) {
        // Bucket-table lookups behind an inline validity-window cache;
        // on AVX2 hardware (unless `REGMON_SIMD` dials dispatch down)
        // samples resolve in 8-wide blocks. Both paths emit identical
        // id slices in identical order. SSE2 has no packed 64-bit
        // unsigned compare or gather, so it shares the scalar path.
        #[cfg(target_arch = "x86_64")]
        if regmon_stats::simd::active() == regmon_stats::SimdLevel::Avx2 && !self.table.is_empty() {
            return self.stab_batch_avx2(samples, emit);
        }
        self.stab_batch_scalar(samples, emit)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn as_flat(&self) -> Option<&FlatSortedIndex> {
        Some(self)
    }
}

/// AVX2 bodies for the 8-wide [`FlatSortedIndex`] batch stab — the only
/// unsafe code in this crate. All comparisons are unsigned 64-bit,
/// realized as signed compares after flipping the sign bit.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod stab_x86 {
    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_castsi256_pd, _mm256_cmpgt_epi64,
        _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_movemask_pd, _mm256_permute4x64_epi64,
        _mm256_set1_epi64x, _mm256_srl_epi64, _mm256_storeu_si256, _mm256_sub_epi64,
        _mm256_unpacklo_epi64, _mm256_xor_si256, _mm_cvtsi32_si128,
    };

    use regmon_sampling::PcSample;

    /// Samples resolved per block (two 256-bit registers of addresses).
    pub const BLOCK: usize = 8;

    const SIGN: u64 = 1 << 63;

    /// Resolves every sample's elementary segment into `segs`
    /// (out-of-span lanes get the caller-chosen `empty` value, which
    /// must not collide with a real segment index). One
    /// `target_feature` function owns the whole loop so
    /// the window fast path, the packed range checks and the packed
    /// bucket arithmetic all inline together and the broadcast constants
    /// are hoisted out of the per-block path — calling the 8-wide
    /// kernels per block through the dispatch boundary costs more than
    /// the kernels themselves.
    ///
    /// Same dispatch invariant as [`all_in_window`]; `cuts`, `table`,
    /// `base` and `shift` must be a [`super::FlatSortedIndex`]'s
    /// compiled state with a non-empty table, and `segs.len() ==
    /// samples.len()`.
    pub fn resolve_all(
        cuts: &[u64],
        table: &[u32],
        base: u64,
        shift: u32,
        empty: u32,
        samples: &[PcSample],
        segs: &mut [u32],
    ) {
        debug_assert!(regmon_stats::SimdLevel::Avx2.is_supported());
        debug_assert_eq!(samples.len(), segs.len());
        // SAFETY: AVX2 is active (dispatch invariant above).
        unsafe { resolve_all_avx2(cuts, table, base, shift, empty, samples, segs) }
    }

    /// # Safety
    ///
    /// Requires AVX2, plus the [`resolve_all`] shape contract:
    /// `table.len() == ((cuts.last() - base) >> shift) + 1` and
    /// `table[b] <=` the segment of bucket `b`'s first address (the
    /// `FlatSortedIndex` rebuild invariant), so every in-range lane's
    /// bucket load and cut scan stay in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn resolve_all_avx2(
        cuts: &[u64],
        table: &[u32],
        base: u64,
        shift: u32,
        empty: u32,
        samples: &[PcSample],
        segs: &mut [u32],
    ) {
        let cuts_last = *cuts.last().expect("table implies cuts");
        let cuts_first = cuts[0];
        // SAFETY: intrinsics are guarded by the avx2 target feature;
        // the unchecked loads are covered by the rebuild invariant
        // (`bucket` bounded for in-range lanes, cut scan stops before
        // `cuts.len()` because in-range lanes have `a < cuts[last]`).
        unsafe {
            let bias = _mm256_set1_epi64x(SIGN as i64);
            let basev = _mm256_set1_epi64x((base ^ SIGN) as i64);
            let lastv = _mm256_set1_epi64x((cuts_last ^ SIGN) as i64);
            let base_raw = _mm256_set1_epi64x(base as i64);
            let cnt = _mm_cvtsi32_si128(shift as i32);
            let mut lo = 1u64;
            let mut hi = 0u64; // empty window: the first block misses
            let mut wseg = empty;
            let mut lov = _mm256_set1_epi64x((lo ^ SIGN) as i64);
            let mut hiv = _mm256_set1_epi64x((hi ^ SIGN) as i64);
            let mut addrs = [0u64; BLOCK];
            let n = samples.len();
            let mut i = 0usize;
            while i + BLOCK <= n {
                // `PcSample` is `repr(C)` `{ Addr(u64), cycle: u64 }`,
                // so eight samples are four 256-bit words with the
                // addresses in the even qword lanes; unpack + permute
                // packs them without a scalar bounce buffer.
                let p = samples.as_ptr().add(i).cast::<__m256i>();
                let s01 = _mm256_loadu_si256(p);
                let s23 = _mm256_loadu_si256(p.add(1));
                let s45 = _mm256_loadu_si256(p.add(2));
                let s67 = _mm256_loadu_si256(p.add(3));
                let raw0 = _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(s01, s23), 0xD8);
                let raw1 = _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(s45, s67), 0xD8);
                let x0 = _mm256_xor_si256(raw0, bias);
                let x1 = _mm256_xor_si256(raw1, bias);
                // Whole-block validity-window test: two compares per
                // half answer all eight samples in the loop-dominated
                // steady state.
                let w0 =
                    _mm256_andnot_si256(_mm256_cmpgt_epi64(lov, x0), _mm256_cmpgt_epi64(hiv, x0));
                let w1 =
                    _mm256_andnot_si256(_mm256_cmpgt_epi64(lov, x1), _mm256_cmpgt_epi64(hiv, x1));
                if _mm256_movemask_epi8(_mm256_and_si256(w0, w1)) == -1 {
                    segs[i..i + BLOCK].fill(wseg);
                    i += BLOCK;
                    continue;
                }
                // The per-lane correction below wants scalar addresses;
                // spill the packed registers only on the miss path.
                _mm256_storeu_si256(addrs.as_mut_ptr().cast::<__m256i>(), raw0);
                _mm256_storeu_si256(addrs.as_mut_ptr().add(4).cast::<__m256i>(), raw1);
                for (half, (raw, x)) in [(raw0, x0), (raw1, x1)].into_iter().enumerate() {
                    let in_range = _mm256_andnot_si256(
                        _mm256_cmpgt_epi64(basev, x), // a < base
                        _mm256_cmpgt_epi64(lastv, x), // a < cuts[last]
                    );
                    // Out-of-range lanes are squashed to bucket 0 so
                    // every lane's table load is unconditionally in
                    // bounds.
                    let bucket = _mm256_and_si256(
                        _mm256_srl_epi64(_mm256_sub_epi64(raw, base_raw), cnt),
                        in_range,
                    );
                    let ok = _mm256_movemask_pd(_mm256_castsi256_pd(in_range));
                    let mut buckets = [0u64; 4];
                    _mm256_storeu_si256(buckets.as_mut_ptr().cast::<__m256i>(), bucket);
                    for (lane, &b) in buckets.iter().enumerate() {
                        let k = half * 4 + lane;
                        segs[i + k] = if ok & (1 << lane) != 0 {
                            let a = addrs[k];
                            let mut seg = *table.get_unchecked(b as usize) as usize;
                            while *cuts.get_unchecked(seg + 1) <= a {
                                seg += 1;
                            }
                            seg as u32
                        } else {
                            empty
                        };
                    }
                }
                // Carry the last lane's window into the next block —
                // the same invariant the scalar loop maintains.
                wseg = segs[i + BLOCK - 1];
                let a = addrs[BLOCK - 1];
                (lo, hi) = if wseg == empty {
                    if a < cuts_first {
                        (0, cuts_first)
                    } else {
                        (cuts_last, u64::MAX)
                    }
                } else {
                    (cuts[wseg as usize], cuts[wseg as usize + 1])
                };
                lov = _mm256_set1_epi64x((lo ^ SIGN) as i64);
                hiv = _mm256_set1_epi64x((hi ^ SIGN) as i64);
                i += BLOCK;
            }
            // Scalar remainder under the same carried window.
            while i < n {
                let a = samples[i].addr.get();
                if a < lo || a >= hi {
                    wseg = if a < base || a >= cuts_last {
                        empty
                    } else {
                        let mut seg = table[((a - base) >> shift) as usize] as usize;
                        while cuts[seg + 1] <= a {
                            seg += 1;
                        }
                        seg as u32
                    };
                    (lo, hi) = if wseg == empty {
                        if a < cuts_first {
                            (0, cuts_first)
                        } else {
                            (cuts_last, u64::MAX)
                        }
                    } else {
                        (cuts[wseg as usize], cuts[wseg as usize + 1])
                    };
                }
                segs[i] = wseg;
                i += 1;
            }
        }
    }

    /// `true` when every lane of `addrs` lies in `[lo, hi)` (unsigned).
    ///
    /// Callers dispatch on [`regmon_stats::SimdLevel::Avx2`], which is
    /// only ever active after runtime detection (debug-asserted here).
    pub fn all_in_window(addrs: &[u64; BLOCK], lo: u64, hi: u64) -> bool {
        debug_assert!(regmon_stats::SimdLevel::Avx2.is_supported());
        // SAFETY: AVX2 is active (dispatch invariant above).
        unsafe { all_in_window_avx2(addrs, lo, hi) }
    }

    /// Resolves the elementary segment of every lane (or
    /// [`super::NO_SEG`]) via packed range checks and packed bucket
    /// arithmetic; the bucket-table loads themselves stay scalar (two
    /// loads per cycle beat a microcoded masked gather on every
    /// deployment target measured).
    ///
    /// Same dispatch invariant as [`all_in_window`]; `cuts`, `table`,
    /// `base` and `shift` must be a [`super::FlatSortedIndex`]'s
    /// compiled state with a non-empty table.
    pub fn segments(
        cuts: &[u64],
        table: &[u32],
        base: u64,
        shift: u32,
        addrs: &[u64; BLOCK],
        segs: &mut [u32; BLOCK],
    ) {
        debug_assert!(regmon_stats::SimdLevel::Avx2.is_supported());
        // SAFETY: AVX2 is active (dispatch invariant above).
        unsafe { segments_avx2(cuts, table, base, shift, addrs, segs) }
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn all_in_window_avx2(addrs: &[u64; BLOCK], lo: u64, hi: u64) -> bool {
        // SAFETY: `addrs` is 8 lanes = two unaligned 256-bit loads.
        unsafe {
            let bias = _mm256_set1_epi64x(SIGN as i64);
            let lov = _mm256_set1_epi64x((lo ^ SIGN) as i64);
            let hiv = _mm256_set1_epi64x((hi ^ SIGN) as i64);
            let mut ok = -1i32;
            for half in 0..2 {
                let x = _mm256_xor_si256(
                    _mm256_loadu_si256(addrs.as_ptr().add(half * 4).cast::<__m256i>()),
                    bias,
                );
                let lt_lo = _mm256_cmpgt_epi64(lov, x); // a < lo
                let lt_hi = _mm256_cmpgt_epi64(hiv, x); // a < hi
                ok &= _mm256_movemask_epi8(_mm256_andnot_si256(lt_lo, lt_hi));
            }
            ok == -1
        }
    }

    /// # Safety
    ///
    /// Requires AVX2. `table.len() == ((cuts.last() - base) >> shift) + 1`
    /// (the `FlatSortedIndex` rebuild invariant), so every in-range
    /// lane's bucket indexes `table` in bounds; out-of-range lanes get
    /// bucket 0 and resolve to [`super::NO_SEG`].
    #[target_feature(enable = "avx2")]
    unsafe fn segments_avx2(
        cuts: &[u64],
        table: &[u32],
        base: u64,
        shift: u32,
        addrs: &[u64; BLOCK],
        segs: &mut [u32; BLOCK],
    ) {
        let cuts_last = *cuts.last().expect("table implies cuts");
        // SAFETY: lane arithmetic is bounded by BLOCK; `bucket` is
        // zeroed on out-of-range lanes and bounded by the rebuild
        // invariant on in-range ones, and the cut scan stops before
        // `cuts.len()` because every in-range lane has
        // `addr < cuts[last]`.
        unsafe {
            let bias = _mm256_set1_epi64x(SIGN as i64);
            let basev = _mm256_set1_epi64x((base ^ SIGN) as i64);
            let lastv = _mm256_set1_epi64x((cuts_last ^ SIGN) as i64);
            let base_raw = _mm256_set1_epi64x(base as i64);
            let cnt = _mm_cvtsi32_si128(shift as i32);
            for half in 0..2 {
                let raw = _mm256_loadu_si256(addrs.as_ptr().add(half * 4).cast::<__m256i>());
                let x = _mm256_xor_si256(raw, bias);
                let lt_base = _mm256_cmpgt_epi64(basev, x); // a < base
                let lt_last = _mm256_cmpgt_epi64(lastv, x); // a < cuts[last]
                let in_range = _mm256_andnot_si256(lt_base, lt_last);
                // Out-of-range lanes are squashed to bucket 0 so every
                // lane's table load below is unconditionally in bounds.
                let bucket = _mm256_and_si256(
                    _mm256_srl_epi64(_mm256_sub_epi64(raw, base_raw), cnt),
                    in_range,
                );
                let ok = _mm256_movemask_pd(_mm256_castsi256_pd(in_range));
                let mut buckets = [0u64; 4];
                _mm256_storeu_si256(buckets.as_mut_ptr().cast::<__m256i>(), bucket);
                for lane in 0..4 {
                    let i = half * 4 + lane;
                    segs[i] = if ok & (1 << lane) != 0 {
                        let a = addrs[i];
                        let mut seg = table[buckets[lane] as usize] as usize;
                        while cuts[seg + 1] <= a {
                            seg += 1;
                        }
                        seg as u32
                    } else {
                        super::NO_SEG
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(start: u64, end: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(end))
    }

    fn exercise(mut idx: Box<dyn RegionIndex + Send + Sync>) {
        assert!(idx.is_empty());
        idx.insert(RegionId(1), r(0, 10));
        idx.insert(RegionId(2), r(5, 15));
        assert_eq!(idx.len(), 2);
        let mut out = Vec::new();
        idx.stab(Addr::new(7), &mut out);
        out.sort();
        assert_eq!(out, vec![RegionId(1), RegionId(2)]);
        assert!(idx.remove(RegionId(1), r(0, 10)));
        assert!(!idx.remove(RegionId(1), r(0, 10)));
        out.clear();
        idx.stab(Addr::new(7), &mut out);
        assert_eq!(out, vec![RegionId(2)]);
    }

    #[test]
    fn linear_index_basic() {
        exercise(IndexKind::Linear.make());
    }

    #[test]
    fn tree_index_basic() {
        exercise(IndexKind::IntervalTree.make());
    }

    #[test]
    fn flat_index_basic() {
        exercise(IndexKind::FlatSorted.make());
    }

    #[test]
    fn default_kind_is_tree() {
        assert_eq!(IndexKind::default(), IndexKind::IntervalTree);
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            assert_eq!(IndexKind::parse(kind.label()), Ok(kind));
        }
        assert!(IndexKind::parse("btree").is_err());
        assert_eq!(IndexKind::parse("list"), Ok(IndexKind::Linear));
        assert_eq!(
            IndexKind::parse("interval-tree"),
            Ok(IndexKind::IntervalTree)
        );
        assert_eq!(IndexKind::parse("flat-sorted"), Ok(IndexKind::FlatSorted));
    }

    #[test]
    fn flat_stab_outside_span_is_empty() {
        let mut idx = FlatSortedIndex::new();
        idx.insert(RegionId(1), r(100, 200));
        let mut out = Vec::new();
        for probe in [0, 99, 200, 300] {
            out.clear();
            idx.stab(Addr::new(probe), &mut out);
            assert!(out.is_empty(), "probe {probe} hit {out:?}");
        }
    }

    #[test]
    fn windows_are_sound_and_stabs_agree() {
        // Adjacent + nested + disjoint intervals; probe every address and
        // check that each kind's window reproduces the exact answer set
        // across the whole window.
        let intervals = [
            (1u64, r(10, 30)),
            (2, r(20, 40)),
            (3, r(25, 28)),
            (4, r(40, 50)),
            (5, r(60, 61)),
        ];
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut idx = kind.make();
            for (id, range) in intervals {
                idx.insert(RegionId(id), range);
            }
            for probe in 0..70u64 {
                let mut expect = Vec::new();
                idx.stab(Addr::new(probe), &mut expect);
                expect.sort();
                let mut got = Vec::new();
                let (lo, hi) = idx.stab_window(Addr::new(probe), &mut got);
                got.sort();
                assert_eq!(got, expect, "{kind:?} probe {probe}");
                assert!(lo <= probe && probe < hi, "{kind:?} window {lo}..{hi}");
                // Every address in the window must share the answer.
                for w in lo..hi.min(70) {
                    let mut at_w = Vec::new();
                    idx.stab(Addr::new(w), &mut at_w);
                    at_w.sort();
                    assert_eq!(at_w, expect, "{kind:?} window {lo}..{hi} probe {w}");
                }
            }
        }
    }

    #[test]
    fn stab_batch_matches_per_sample_and_preserves_order() {
        let intervals = [(1u64, r(0, 40)), (2, r(16, 64)), (3, r(100, 140))];
        let addrs = [5u64, 120, 5, 20, 80, 39, 40, 0, 139, 140, 200];
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut idx = kind.make();
            for (id, range) in intervals {
                idx.insert(RegionId(id), range);
            }
            let samples: Vec<PcSample> = addrs
                .iter()
                .map(|&a| PcSample {
                    addr: Addr::new(a),
                    cycle: a,
                })
                .collect();
            let mut seen = Vec::new();
            idx.stab_batch(&samples, &mut |i, ids| {
                let mut ids = ids.to_vec();
                ids.sort();
                seen.push((i, ids));
            });
            assert_eq!(seen.len(), samples.len(), "{kind:?}");
            for (pos, (i, ids)) in seen.iter().enumerate() {
                assert_eq!(pos, *i, "{kind:?} emitted out of order");
                let mut expect = Vec::new();
                idx.stab(samples[*i].addr, &mut expect);
                expect.sort();
                assert_eq!(ids, &expect, "{kind:?} sample {i}");
            }
        }
    }

    /// Collects `(sample index, sorted ids)` emissions of one batch.
    #[cfg(target_arch = "x86_64")]
    fn emissions(
        idx: &FlatSortedIndex,
        samples: &[PcSample],
        path: impl Fn(&FlatSortedIndex, &[PcSample], &mut dyn FnMut(usize, &[RegionId])),
    ) -> Vec<(usize, Vec<RegionId>)> {
        let mut seen = Vec::new();
        path(idx, samples, &mut |i, ids| seen.push((i, ids.to_vec())));
        seen
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn simd_stab_batch_matches_scalar_for_every_remainder_shape() {
        // Every batch length 0..4*BLOCK (straddling the 8-wide block
        // boundary) over a mix of covered, gap, below-span and
        // above-span addresses — the SIMD block path must emit exactly
        // what the scalar oracle emits, in the same order.
        if regmon_stats::SimdLevel::Avx2 != regmon_stats::simd::detected() {
            return; // no AVX2 path to compare on this host
        }
        let mut idx = FlatSortedIndex::new();
        for (id, range) in [
            (1u64, r(0x100, 0x180)),
            (2, r(0x140, 0x1c0)),
            (3, r(0x400, 0x500)),
            (4, r(0x4f0, 0x4f1)),
        ] {
            idx.insert(RegionId(id), range);
        }
        for len in 0..=32usize {
            let samples: Vec<PcSample> = (0..len as u64)
                .map(|i| {
                    // Deterministic pseudo-random walk over interesting
                    // addresses: in-region, gaps, and out-of-span.
                    let a = match i % 5 {
                        0 => 0x100 + (i * 37) % 0x100,
                        1 => 0x400 + (i * 53) % 0x110,
                        2 => (i * 29) % 0x100,        // below span
                        3 => 0x200 + (i * 31) % 0x80, // gap
                        _ => 0x600 + i,               // above span
                    };
                    PcSample {
                        addr: Addr::new(a),
                        cycle: i,
                    }
                })
                .collect();
            let scalar = emissions(&idx, &samples, |x, s, e| x.stab_batch_scalar(s, e));
            let simd = emissions(&idx, &samples, |x, s, e| x.stab_batch_avx2(s, e));
            assert_eq!(simd, scalar, "len {len}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    proptest! {
        #[test]
        fn simd_stab_batch_always_matches_scalar(
            ranges in prop::collection::vec((0u64..500, 1u64..80), 1..10),
            addrs in prop::collection::vec(0u64..700, 0..64),
        ) {
            if regmon_stats::SimdLevel::Avx2 != regmon_stats::simd::detected() {
                return;
            }
            let mut idx = FlatSortedIndex::new();
            for (i, (start, len)) in ranges.iter().enumerate() {
                idx.insert(RegionId(i as u64 + 1), r(*start, start + len));
            }
            let samples: Vec<PcSample> = addrs
                .iter()
                .map(|&a| PcSample { addr: Addr::new(a), cycle: a })
                .collect();
            let scalar = emissions(&idx, &samples, |x, s, e| x.stab_batch_scalar(s, e));
            let simd = emissions(&idx, &samples, |x, s, e| x.stab_batch_avx2(s, e));
            prop_assert_eq!(simd, scalar);
        }
    }

    #[test]
    fn hit_cache_reuses_windows() {
        let mut idx = FlatSortedIndex::new();
        idx.insert(RegionId(7), r(100, 200));
        let mut cache = HitCache::new();
        assert!(!cache.covers(Addr::new(150)));
        assert_eq!(cache.refill(&idx, Addr::new(150)), &[RegionId(7)]);
        assert!(cache.covers(Addr::new(199)));
        assert!(cache.covers(Addr::new(100)));
        assert!(!cache.covers(Addr::new(200)));
        assert!(!cache.covers(Addr::new(99)));
        cache.clear();
        assert!(!cache.covers(Addr::new(150)));
    }

    proptest! {
        #[test]
        fn implementations_agree(
            intervals in prop::collection::vec((0u64..200, 1u64..50), 0..80),
            probes in prop::collection::vec(0u64..260, 1..40),
        ) {
            let mut lin = LinearIndex::new();
            let mut tree = IntervalTreeIndex::new();
            let mut flat = FlatSortedIndex::new();
            for (i, (s, l)) in intervals.iter().enumerate() {
                lin.insert(RegionId(i as u64), r(*s, s + l));
                tree.insert(RegionId(i as u64), r(*s, s + l));
                flat.insert(RegionId(i as u64), r(*s, s + l));
            }
            for p in probes {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let mut c = Vec::new();
                lin.stab(Addr::new(p), &mut a);
                tree.stab(Addr::new(p), &mut b);
                flat.stab(Addr::new(p), &mut c);
                a.sort();
                b.sort();
                c.sort();
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(&a, &c);
            }
        }

        #[test]
        fn windows_agree_with_exhaustive_scan(
            intervals in prop::collection::vec((0u64..120, 1u64..40), 1..24),
            probes in prop::collection::vec(0u64..200, 1..24),
        ) {
            for kind in [IndexKind::Linear, IndexKind::IntervalTree, IndexKind::FlatSorted] {
                let mut idx = kind.make();
                for (i, (s, l)) in intervals.iter().enumerate() {
                    idx.insert(RegionId(i as u64), r(*s, s + l));
                }
                for &p in &probes {
                    let mut expect = Vec::new();
                    idx.stab(Addr::new(p), &mut expect);
                    expect.sort();
                    let mut got = Vec::new();
                    let (lo, hi) = idx.stab_window(Addr::new(p), &mut got);
                    got.sort();
                    prop_assert_eq!(&got, &expect);
                    prop_assert!(lo <= p && p < hi);
                    // Soundness at the window's edges (cheap spot checks).
                    for w in [lo, p.saturating_sub(1).max(lo), (hi - 1).min(200)] {
                        if w >= lo && w < hi {
                            let mut at_w = Vec::new();
                            idx.stab(Addr::new(w), &mut at_w);
                            at_w.sort();
                            prop_assert_eq!(&at_w, &expect);
                        }
                    }
                }
            }
        }
    }
}
