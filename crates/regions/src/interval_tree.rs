//! An augmented interval tree with `O(log n + k)` stabbing queries.
//!
//! The paper (§3.2.3) proposes replacing the O(n) per-sample region list
//! scan with an interval tree (citing CLRS), reducing attribution to
//! `O(log n + k)` where `k` is the number of regions containing the
//! sample. CLRS builds on a red-black tree; this implementation uses a
//! *treap* with deterministic pseudo-random priorities — the same
//! max-endpoint augmentation and the same expected asymptotics, with far
//! less rebalancing machinery. Equivalence with a linear scan is
//! property-tested.
//!
//! Intervals are half-open `[start, end)` and identified by a
//! [`RegionId`]; duplicate ranges with distinct ids are allowed.

use regmon_binary::{Addr, AddrRange};

use crate::region::RegionId;

/// Deterministic node priority (SplitMix64 of the key).
fn priority(range: AddrRange, id: RegionId) -> u64 {
    let mut z = range
        .start()
        .get()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(id.0)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
struct Node {
    start: u64,
    end: u64,
    id: RegionId,
    prio: u64,
    /// Max `end` within this subtree — the stabbing-query augmentation.
    max_end: u64,
    left: Option<usize>,
    right: Option<usize>,
}

impl Node {
    fn key(&self) -> (u64, u64, u64) {
        (self.start, self.end, self.id.0)
    }
}

/// The interval tree.
///
/// # Example
///
/// ```
/// use regmon_regions::{IntervalTree, RegionId};
/// use regmon_binary::{Addr, AddrRange};
///
/// let mut t = IntervalTree::new();
/// let outer = AddrRange::new(Addr::new(0x100), Addr::new(0x200));
/// let inner = AddrRange::new(Addr::new(0x140), Addr::new(0x180));
/// t.insert(RegionId(1), outer);
/// t.insert(RegionId(2), inner);
///
/// let mut hits = Vec::new();
/// t.stab(Addr::new(0x150), &mut hits);
/// hits.sort();
/// assert_eq!(hits, vec![RegionId(1), RegionId(2)]); // nested: both count
/// ```
#[derive(Debug, Clone, Default)]
pub struct IntervalTree {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: Option<usize>,
    len: usize,
}

impl IntervalTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no intervals are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `range` under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty — empty intervals can never be stabbed
    /// and would only poison the augmentation.
    pub fn insert(&mut self, id: RegionId, range: AddrRange) {
        assert!(!range.is_empty(), "cannot index an empty range");
        let idx = self.alloc(Node {
            start: range.start().get(),
            end: range.end().get(),
            id,
            prio: priority(range, id),
            max_end: range.end().get(),
            left: None,
            right: None,
        });
        self.root = Some(self.insert_at(self.root, idx));
        self.len += 1;
    }

    /// Removes the interval `(id, range)`. Returns `true` when found.
    pub fn remove(&mut self, id: RegionId, range: AddrRange) -> bool {
        let key = (range.start().get(), range.end().get(), id.0);
        let (root, removed) = self.remove_at(self.root, key);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Appends the ids of all intervals containing `addr` to `out`
    /// (order unspecified).
    pub fn stab(&self, addr: Addr, out: &mut Vec<RegionId>) {
        self.stab_at(self.root, addr.get(), out);
    }

    /// Like [`IntervalTree::stab`], but also returns the maximal half-open
    /// window `[lo, hi)` around `addr` on which the answer set is
    /// constant. The window is computed from the boundaries encountered
    /// during the treap descent; subtrees pruned by the `max_end`
    /// augmentation contribute their `max_end` as a lower bound, which is
    /// exact because every interval inside ends at or before it.
    pub fn stab_window(&self, addr: Addr, out: &mut Vec<RegionId>) -> (u64, u64) {
        let (mut lo, mut hi) = (0u64, u64::MAX);
        self.stab_window_at(self.root, addr.get(), &mut lo, &mut hi, out);
        (lo, hi)
    }

    /// Appends the ids of all intervals overlapping `range` to `out`
    /// (order unspecified). Half-open semantics: intervals merely
    /// touching `range`'s endpoints do not overlap.
    pub fn overlapping(&self, range: AddrRange, out: &mut Vec<RegionId>) {
        if !range.is_empty() {
            self.overlap_at(self.root, range.start().get(), range.end().get(), out);
        }
    }

    /// All `(id, range)` pairs in key order.
    #[must_use]
    pub fn entries(&self) -> Vec<(RegionId, AddrRange)> {
        let mut out = Vec::with_capacity(self.len);
        self.inorder(self.root, &mut out);
        out
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn fix(&mut self, n: usize) {
        let mut max_end = self.nodes[n].end;
        if let Some(l) = self.nodes[n].left {
            max_end = max_end.max(self.nodes[l].max_end);
        }
        if let Some(r) = self.nodes[n].right {
            max_end = max_end.max(self.nodes[r].max_end);
        }
        self.nodes[n].max_end = max_end;
    }

    /// Right rotation: left child becomes the root of this subtree.
    fn rotate_right(&mut self, n: usize) -> usize {
        let l = self.nodes[n].left.expect("rotate_right needs a left child");
        self.nodes[n].left = self.nodes[l].right;
        self.nodes[l].right = Some(n);
        self.fix(n);
        self.fix(l);
        l
    }

    /// Left rotation: right child becomes the root of this subtree.
    fn rotate_left(&mut self, n: usize) -> usize {
        let r = self.nodes[n]
            .right
            .expect("rotate_left needs a right child");
        self.nodes[n].right = self.nodes[r].left;
        self.nodes[r].left = Some(n);
        self.fix(n);
        self.fix(r);
        r
    }

    fn insert_at(&mut self, node: Option<usize>, new: usize) -> usize {
        let Some(n) = node else {
            return new;
        };
        if self.nodes[new].key() < self.nodes[n].key() {
            let child = self.insert_at(self.nodes[n].left, new);
            self.nodes[n].left = Some(child);
            self.fix(n);
            if self.nodes[child].prio > self.nodes[n].prio {
                return self.rotate_right(n);
            }
        } else {
            let child = self.insert_at(self.nodes[n].right, new);
            self.nodes[n].right = Some(child);
            self.fix(n);
            if self.nodes[child].prio > self.nodes[n].prio {
                return self.rotate_left(n);
            }
        }
        n
    }

    fn remove_at(&mut self, node: Option<usize>, key: (u64, u64, u64)) -> (Option<usize>, bool) {
        let Some(n) = node else {
            return (None, false);
        };
        let nkey = self.nodes[n].key();
        if key < nkey {
            let (child, removed) = self.remove_at(self.nodes[n].left, key);
            self.nodes[n].left = child;
            self.fix(n);
            (Some(n), removed)
        } else if key > nkey {
            let (child, removed) = self.remove_at(self.nodes[n].right, key);
            self.nodes[n].right = child;
            self.fix(n);
            (Some(n), removed)
        } else {
            // Found: rotate down until it is a leaf-ish node, then unlink.
            let replacement = self.sink_and_unlink(n);
            self.free.push(n);
            (replacement, true)
        }
    }

    /// Rotates `n` down by priority until it can be unlinked; returns the
    /// subtree that replaces it.
    fn sink_and_unlink(&mut self, n: usize) -> Option<usize> {
        match (self.nodes[n].left, self.nodes[n].right) {
            (None, None) => None,
            (Some(_), None) => {
                let top = self.rotate_right(n);
                self.nodes[top].right = self.sink_and_unlink(n);
                self.fix(top);
                Some(top)
            }
            (None, Some(_)) => {
                let top = self.rotate_left(n);
                self.nodes[top].left = self.sink_and_unlink(n);
                self.fix(top);
                Some(top)
            }
            (Some(l), Some(r)) => {
                if self.nodes[l].prio > self.nodes[r].prio {
                    let top = self.rotate_right(n);
                    self.nodes[top].right = self.sink_and_unlink(n);
                    self.fix(top);
                    Some(top)
                } else {
                    let top = self.rotate_left(n);
                    self.nodes[top].left = self.sink_and_unlink(n);
                    self.fix(top);
                    Some(top)
                }
            }
        }
    }

    fn stab_at(&self, node: Option<usize>, addr: u64, out: &mut Vec<RegionId>) {
        let Some(n) = node else { return };
        let node = &self.nodes[n];
        // Nothing in this subtree ends after addr ⇒ nothing contains it.
        if node.max_end <= addr {
            return;
        }
        self.stab_at(node.left, addr, out);
        if node.start <= addr && addr < node.end {
            out.push(node.id);
        }
        // Right subtree keys start at or after node.start; they can only
        // contain addr when node.start <= addr.
        if node.start <= addr {
            self.stab_at(node.right, addr, out);
        }
    }

    fn stab_window_at(
        &self,
        node: Option<usize>,
        addr: u64,
        lo: &mut u64,
        hi: &mut u64,
        out: &mut Vec<RegionId>,
    ) {
        let Some(n) = node else { return };
        let node = &self.nodes[n];
        // Nothing in this subtree ends after addr: every boundary inside
        // is at or below max_end, so the answer stays constant up to it.
        if node.max_end <= addr {
            *lo = (*lo).max(node.max_end);
            return;
        }
        self.stab_window_at(node.left, addr, lo, hi, out);
        if node.start <= addr {
            if addr < node.end {
                out.push(node.id);
                *lo = (*lo).max(node.start);
                *hi = (*hi).min(node.end);
            } else {
                *lo = (*lo).max(node.end);
            }
            self.stab_window_at(node.right, addr, lo, hi, out);
        } else {
            // This node and its whole right subtree start after addr;
            // node.start is the nearest such boundary on this path.
            *hi = (*hi).min(node.start);
        }
    }

    fn overlap_at(&self, node: Option<usize>, start: u64, end: u64, out: &mut Vec<RegionId>) {
        let Some(n) = node else { return };
        let node = &self.nodes[n];
        // Nothing in this subtree ends after the query start.
        if node.max_end <= start {
            return;
        }
        self.overlap_at(node.left, start, end, out);
        if node.start < end && start < node.end {
            out.push(node.id);
        }
        // Right-subtree keys start at or after node.start; they can only
        // overlap when node.start < end.
        if node.start < end {
            self.overlap_at(node.right, start, end, out);
        }
    }

    fn inorder(&self, node: Option<usize>, out: &mut Vec<(RegionId, AddrRange)>) {
        let Some(n) = node else { return };
        self.inorder(self.nodes[n].left, out);
        let node = &self.nodes[n];
        out.push((
            node.id,
            AddrRange::new(Addr::new(node.start), Addr::new(node.end)),
        ));
        self.inorder(self.nodes[n].right, out);
    }

    /// Validates the treap and augmentation invariants (test support).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn walk(
            t: &IntervalTree,
            n: Option<usize>,
            lo: Option<(u64, u64, u64)>,
            hi: Option<(u64, u64, u64)>,
        ) -> (u64, usize) {
            let Some(i) = n else { return (0, 0) };
            let node = &t.nodes[i];
            let key = node.key();
            if let Some(lo) = lo {
                assert!(key > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(key < hi, "BST order violated");
            }
            for child in [node.left, node.right].into_iter().flatten() {
                assert!(t.nodes[child].prio <= node.prio, "heap priority violated");
            }
            let (lmax, lcount) = walk(t, node.left, lo, Some(key));
            let (rmax, rcount) = walk(t, node.right, Some(key), hi);
            let expect = node.end.max(lmax).max(rmax);
            assert_eq!(node.max_end, expect, "max_end augmentation stale");
            (expect, lcount + rcount + 1)
        }
        let (_, count) = walk(self, self.root, None, None);
        assert_eq!(count, self.len, "len out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(start: u64, end: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(end))
    }

    #[test]
    fn empty_tree_stabs_nothing() {
        let t = IntervalTree::new();
        let mut out = Vec::new();
        t.stab(Addr::new(5), &mut out);
        assert!(out.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn single_interval() {
        let mut t = IntervalTree::new();
        t.insert(RegionId(1), r(10, 20));
        let mut out = Vec::new();
        t.stab(Addr::new(10), &mut out);
        assert_eq!(out, vec![RegionId(1)]);
        out.clear();
        t.stab(Addr::new(20), &mut out); // half-open: end excluded
        assert!(out.is_empty());
        out.clear();
        t.stab(Addr::new(9), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn nested_and_overlapping() {
        let mut t = IntervalTree::new();
        t.insert(RegionId(1), r(0, 100));
        t.insert(RegionId(2), r(20, 40));
        t.insert(RegionId(3), r(30, 60));
        t.insert(RegionId(4), r(90, 200));
        let mut out = Vec::new();
        t.stab(Addr::new(35), &mut out);
        out.sort();
        assert_eq!(out, vec![RegionId(1), RegionId(2), RegionId(3)]);
        out.clear();
        t.stab(Addr::new(95), &mut out);
        out.sort();
        assert_eq!(out, vec![RegionId(1), RegionId(4)]);
    }

    #[test]
    fn remove_restores_behavior() {
        let mut t = IntervalTree::new();
        t.insert(RegionId(1), r(0, 100));
        t.insert(RegionId(2), r(20, 40));
        assert!(t.remove(RegionId(1), r(0, 100)));
        assert!(!t.remove(RegionId(1), r(0, 100))); // already gone
        let mut out = Vec::new();
        t.stab(Addr::new(35), &mut out);
        assert_eq!(out, vec![RegionId(2)]);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn duplicate_ranges_distinct_ids() {
        let mut t = IntervalTree::new();
        t.insert(RegionId(1), r(10, 20));
        t.insert(RegionId(2), r(10, 20));
        let mut out = Vec::new();
        t.stab(Addr::new(15), &mut out);
        out.sort();
        assert_eq!(out, vec![RegionId(1), RegionId(2)]);
        assert!(t.remove(RegionId(1), r(10, 20)));
        out.clear();
        t.stab(Addr::new(15), &mut out);
        assert_eq!(out, vec![RegionId(2)]);
    }

    #[test]
    fn entries_are_in_key_order() {
        let mut t = IntervalTree::new();
        t.insert(RegionId(3), r(30, 40));
        t.insert(RegionId(1), r(10, 20));
        t.insert(RegionId(2), r(10, 30));
        let e = t.entries();
        assert_eq!(
            e.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![RegionId(1), RegionId(2), RegionId(3)]
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_interval_panics() {
        let mut t = IntervalTree::new();
        t.insert(RegionId(0), r(5, 5));
    }

    #[test]
    fn node_slots_are_reused_after_removal() {
        let mut t = IntervalTree::new();
        for i in 0..10u64 {
            t.insert(RegionId(i), r(i * 10, i * 10 + 5));
        }
        for i in 0..10u64 {
            assert!(t.remove(RegionId(i), r(i * 10, i * 10 + 5)));
        }
        let arena = t.nodes.len();
        for i in 10..20u64 {
            t.insert(RegionId(i), r(i * 10, i * 10 + 5));
        }
        assert_eq!(t.nodes.len(), arena, "freed slots must be reused");
        t.check_invariants();
    }

    #[test]
    fn overlapping_finds_partial_and_full_overlaps() {
        let mut t = IntervalTree::new();
        t.insert(RegionId(1), r(0, 10));
        t.insert(RegionId(2), r(20, 30));
        t.insert(RegionId(3), r(5, 25));
        let mut out = Vec::new();
        t.overlapping(r(8, 22), &mut out);
        out.sort();
        assert_eq!(out, vec![RegionId(1), RegionId(2), RegionId(3)]);
        out.clear();
        t.overlapping(r(10, 20), &mut out); // touches 1 and 2 only at endpoints
        assert_eq!(out, vec![RegionId(3)]);
        out.clear();
        t.overlapping(r(30, 40), &mut out);
        assert!(out.is_empty());
    }

    proptest! {
        #[test]
        fn overlapping_matches_linear_scan(
            intervals in prop::collection::vec((0u64..120, 1u64..30), 0..60),
            queries in prop::collection::vec((0u64..140, 1u64..40), 1..20),
        ) {
            let mut tree = IntervalTree::new();
            let mut reference: Vec<(RegionId, AddrRange)> = Vec::new();
            for (i, (s, l)) in intervals.iter().enumerate() {
                let id = RegionId(i as u64);
                tree.insert(id, r(*s, s + l));
                reference.push((id, r(*s, s + l)));
            }
            for (qs, ql) in queries {
                let q = r(qs, qs + ql);
                let mut got = Vec::new();
                tree.overlapping(q, &mut got);
                got.sort();
                let mut want: Vec<RegionId> = reference
                    .iter()
                    .filter(|(_, range)| range.overlaps(q))
                    .map(|(id, _)| *id)
                    .collect();
                want.sort();
                prop_assert_eq!(got, want);
            }
        }

        #[test]
        fn matches_linear_scan(
            ops in prop::collection::vec(
                (0u64..64, 1u64..32, prop::bool::weighted(0.3)),
                1..120
            ),
            probes in prop::collection::vec(0u64..100, 1..40),
        ) {
            let mut tree = IntervalTree::new();
            let mut reference: Vec<(RegionId, AddrRange)> = Vec::new();
            for (i, (start, len, is_remove)) in ops.iter().enumerate() {
                if *is_remove && !reference.is_empty() {
                    let victim = reference.remove(i % reference.len());
                    prop_assert!(tree.remove(victim.0, victim.1));
                } else {
                    let id = RegionId(i as u64);
                    let range = r(*start, start + len);
                    tree.insert(id, range);
                    reference.push((id, range));
                }
                tree.check_invariants();
            }
            prop_assert_eq!(tree.len(), reference.len());
            for p in probes {
                let mut got = Vec::new();
                tree.stab(Addr::new(p), &mut got);
                got.sort();
                let mut want: Vec<RegionId> = reference
                    .iter()
                    .filter(|(_, range)| range.contains(Addr::new(p)))
                    .map(|(id, _)| *id)
                    .collect();
                want.sort();
                prop_assert_eq!(got, want, "probe at {}", p);
            }
        }
    }
}
