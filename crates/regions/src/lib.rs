//! Region monitoring: formation, sample attribution and UCR accounting.
//!
//! Region monitoring (paper §3) has two halves. *Region formation* watches
//! for working-set changes: samples that fall in no monitored region are
//! attributed to the **unmonitored code region (UCR)**, and when the UCR's
//! share of an interval exceeds a threshold (30% in the paper), new
//! regions — loops around the hot samples — are built and added to the
//! monitor. *Phase detection* (the `regmon-lpd` crate) then analyzes each
//! region's per-instruction histogram independently.
//!
//! Sample attribution is the monitor's hot path: every one of the
//! thousands of samples per interval must find all regions containing its
//! PC (overlapping regions each count it — nested loops double-count
//! exactly as in the paper's Figure 2). Two interchangeable indexes are
//! provided, reproducing the paper's Figure 16 cost study:
//!
//! * [`LinearIndex`] — the O(n)-per-sample list scan of the prototype;
//! * [`IntervalTreeIndex`] — an augmented balanced search tree with
//!   O(log n + k) stabbing queries;
//! * [`FlatSortedIndex`] — the interval set compiled to sorted elementary
//!   segments, answering a stab with one binary search over a flat array
//!   and a whole interval with a sort-and-merge batch sweep.
//!
//! Attribution itself is allocation-free: the monitor owns a reusable
//! [`monitor::AttributionArena`] and hands out borrow-based
//! [`ArenaReport`]s (see [`RegionMonitor::attribute`]).
//!
//! # Example
//!
//! ```
//! use regmon_regions::{IndexKind, RegionKind, RegionMonitor};
//! use regmon_binary::{Addr, AddrRange};
//! use regmon_sampling::PcSample;
//!
//! let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
//! let r = mon.add_region(
//!     AddrRange::new(Addr::new(0x1000), Addr::new(0x1040)),
//!     RegionKind::Loop { depth: 0 },
//!     0,
//! );
//! let samples = [PcSample { addr: Addr::new(0x1008), cycle: 1 },
//!                PcSample { addr: Addr::new(0x2000), cycle: 2 }];
//! let report = mon.distribute(&samples);
//! assert_eq!(report.histogram(r).unwrap().total(), 1);
//! assert_eq!(report.unattributed_samples().len(), 1);
//! assert!((report.ucr_fraction() - 0.5).abs() < 1e-12);
//! ```

// `deny` rather than `forbid`: `index::stab_x86` carries the one
// scoped `allow(unsafe_code)` in this crate, for the AVX2 batch-stab
// intrinsic bodies behind runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod formation;
pub mod index;
pub mod interval_tree;
pub mod monitor;
pub mod pruning;
pub mod region;
pub mod traces;
pub mod ucr;

pub use formation::{FormationConfig, FormationOutcome, RegionFormation};
pub use index::{
    FlatSortedIndex, HitCache, IndexKind, IntervalTreeIndex, LinearIndex, RegionIndex,
};
pub use interval_tree::IntervalTree;
pub use monitor::{
    ArenaReport, AttributionView, DistributionReport, MonitorSnapshot, RegionMonitor, RegionRecord,
};
pub use pruning::Pruner;
pub use region::{Region, RegionId, RegionKind};
pub use traces::{Trace, TraceConfig, TraceFormation};
pub use ucr::UcrTracker;
