//! The region monitor: holds regions and distributes samples to them.

use std::collections::BTreeMap;

use regmon_binary::{AddrRange, INST_BYTES};
use regmon_sampling::PcSample;
use regmon_stats::CountHistogram;

use crate::index::{IndexKind, RegionIndex};
use crate::region::{Region, RegionId, RegionKind};

/// Per-interval result of distributing a buffer of samples.
///
/// Overlapping regions each receive the sample (the paper's stacked
/// region charts exceed the buffer size for exactly this reason), so the
/// per-region totals may sum to more than `total_samples`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionReport {
    per_region: BTreeMap<RegionId, CountHistogram>,
    unattributed: Vec<PcSample>,
    total_samples: usize,
}

impl DistributionReport {
    /// The histogram of one region, or `None` when it received no samples
    /// this interval.
    #[must_use]
    pub fn histogram(&self, id: RegionId) -> Option<&CountHistogram> {
        self.per_region.get(&id)
    }

    /// All `(region, histogram)` pairs that received samples, in id order.
    pub fn histograms(&self) -> impl Iterator<Item = (RegionId, &CountHistogram)> {
        self.per_region.iter().map(|(id, h)| (*id, h))
    }

    /// Number of regions that received samples.
    #[must_use]
    pub fn active_regions(&self) -> usize {
        self.per_region.len()
    }

    /// Samples that fell in no monitored region — the unmonitored code
    /// region (UCR).
    #[must_use]
    pub fn unattributed_samples(&self) -> &[PcSample] {
        &self.unattributed
    }

    /// Total samples distributed this interval.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// Fraction of samples in the UCR, in `[0, 1]` (0 for an empty
    /// interval).
    #[must_use]
    pub fn ucr_fraction(&self) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        self.unattributed.len() as f64 / self.total_samples as f64
    }
}

/// Holds the monitored regions and their attribution index.
#[derive(Debug)]
pub struct RegionMonitor {
    regions: BTreeMap<RegionId, Region>,
    index: Box<dyn RegionIndex + Send>,
    next_id: u64,
    scratch: Vec<RegionId>,
}

impl RegionMonitor {
    /// Creates an empty monitor using the given attribution index.
    #[must_use]
    pub fn new(index: IndexKind) -> Self {
        Self {
            regions: BTreeMap::new(),
            index: index.make(),
            next_id: 0,
            scratch: Vec::new(),
        }
    }

    /// Adds a region and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn add_region(
        &mut self,
        range: AddrRange,
        kind: RegionKind,
        created_interval: usize,
    ) -> RegionId {
        let id = RegionId(self.next_id);
        self.next_id += 1;
        let region = Region::new(id, range, kind, created_interval);
        self.index.insert(id, range);
        self.regions.insert(id, region);
        id
    }

    /// Removes a region. Returns `true` when it existed.
    pub fn remove_region(&mut self, id: RegionId) -> bool {
        match self.regions.remove(&id) {
            Some(region) => {
                let removed = self.index.remove(id, region.range());
                debug_assert!(removed, "index out of sync with region table");
                true
            }
            None => false,
        }
    }

    /// The region with the given id.
    #[must_use]
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(&id)
    }

    /// All monitored regions in id (creation) order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Number of monitored regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` when no regions are monitored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// `true` when some monitored region covers exactly `range`.
    #[must_use]
    pub fn has_range(&self, range: AddrRange) -> bool {
        self.regions.values().any(|r| r.range() == range)
    }

    /// The monitored region whose range equals `range`, if any.
    #[must_use]
    pub fn region_by_range(&self, range: AddrRange) -> Option<&Region> {
        self.regions.values().find(|r| r.range() == range)
    }

    /// Distributes one interval's samples across the monitored regions.
    ///
    /// Every region containing a sample's PC receives it in the slot
    /// `(pc − region.start) / INST_BYTES`; samples contained by no region
    /// are collected as the UCR.
    pub fn distribute(&mut self, samples: &[PcSample]) -> DistributionReport {
        let mut per_region: BTreeMap<RegionId, CountHistogram> = BTreeMap::new();
        let mut unattributed = Vec::new();
        for sample in samples {
            self.scratch.clear();
            self.index.stab(sample.addr, &mut self.scratch);
            if self.scratch.is_empty() {
                unattributed.push(*sample);
                continue;
            }
            for &id in &self.scratch {
                let region = &self.regions[&id];
                let slot = (sample.addr.offset_from(region.range().start()) / INST_BYTES) as usize;
                per_region
                    .entry(id)
                    .or_insert_with(|| CountHistogram::new(region.slots()))
                    .record(slot);
            }
        }
        DistributionReport {
            per_region,
            unattributed,
            total_samples: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::Addr;

    fn sample(addr: u64) -> PcSample {
        PcSample {
            addr: Addr::new(addr),
            cycle: 0,
        }
    }

    fn range(start: u64, end: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(end))
    }

    #[test]
    fn add_and_remove_regions() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let a = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        let b = mon.add_region(range(0x200, 0x240), RegionKind::Custom, 1);
        assert_ne!(a, b);
        assert_eq!(mon.len(), 2);
        assert!(mon.remove_region(a));
        assert!(!mon.remove_region(a));
        assert_eq!(mon.len(), 1);
        assert!(mon.region(b).is_some());
        assert!(mon.region(a).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let a = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        mon.remove_region(a);
        let b = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn distribute_fills_slots() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let id = mon.add_region(range(0x100, 0x120), RegionKind::Custom, 0);
        let report = mon.distribute(&[sample(0x100), sample(0x104), sample(0x104)]);
        let h = report.histogram(id).unwrap();
        assert_eq!(h.counts(), &[1, 2, 0, 0, 0, 0, 0, 0]);
        assert_eq!(report.ucr_fraction(), 0.0);
    }

    #[test]
    fn overlapping_regions_both_count() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let outer = mon.add_region(range(0x100, 0x200), RegionKind::Loop { depth: 0 }, 0);
        let inner = mon.add_region(range(0x140, 0x180), RegionKind::Loop { depth: 1 }, 0);
        let report = mon.distribute(&[sample(0x150)]);
        assert_eq!(report.histogram(outer).unwrap().total(), 1);
        assert_eq!(report.histogram(inner).unwrap().total(), 1);
        // The stacked total exceeds the number of samples, as in Figure 2.
        let stacked: u64 = report.histograms().map(|(_, h)| h.total()).sum();
        assert_eq!(stacked, 2);
        assert_eq!(report.total_samples(), 1);
    }

    #[test]
    fn unattributed_samples_form_the_ucr() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        let report = mon.distribute(&[sample(0x100), sample(0x500), sample(0x600)]);
        assert_eq!(report.unattributed_samples().len(), 2);
        assert!((report.ucr_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_reports_zero_ucr() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let report = mon.distribute(&[]);
        assert_eq!(report.total_samples(), 0);
        assert_eq!(report.ucr_fraction(), 0.0);
        assert_eq!(report.active_regions(), 0);
    }

    #[test]
    fn has_range_and_lookup() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let id = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 3);
        assert!(mon.has_range(range(0x100, 0x140)));
        assert!(!mon.has_range(range(0x100, 0x144)));
        assert_eq!(mon.region_by_range(range(0x100, 0x140)).unwrap().id(), id);
    }

    #[test]
    fn linear_and_tree_monitors_agree() {
        let mut a = RegionMonitor::new(IndexKind::Linear);
        let mut b = RegionMonitor::new(IndexKind::IntervalTree);
        for (s, e) in [(0x100u64, 0x180u64), (0x140, 0x1c0), (0x300, 0x340)] {
            a.add_region(range(s, e), RegionKind::Custom, 0);
            b.add_region(range(s, e), RegionKind::Custom, 0);
        }
        let samples: Vec<PcSample> = (0..200).map(|i| sample(0x100 + i * 4)).collect();
        let ra = a.distribute(&samples);
        let rb = b.distribute(&samples);
        assert_eq!(ra, rb);
    }
}
