//! The region monitor: holds regions and distributes samples to them.
//!
//! # The attribution fast path
//!
//! Sample attribution is the hottest loop in the whole system (paper
//! §3.2.3, Figures 15/16): every sample of every interval must find all
//! regions containing its PC and bump one histogram slot per region.
//! The monitor therefore owns a reusable [`AttributionArena`] — dense
//! per-region histogram storage indexed directly by [`RegionId`] (ids are
//! monotonic and never reused), epoch-stamped so an interval boundary is
//! an O(touched) logical clear rather than an allocation. The whole
//! interval is attributed in one [`RegionIndex::stab_batch`] call, which
//! exploits sample locality (see [`crate::index::HitCache`]) or, for the
//! flat index, a sort-and-merge sweep. Steady-state attribution performs
//! **zero heap allocations**.
//!
//! Consumers read the interval's result through [`ArenaReport`], a
//! borrow-based view equivalent to the owned [`DistributionReport`]; both
//! implement [`AttributionView`] so detectors and pruning accept either.
//! The owned report remains available via [`RegionMonitor::distribute`]
//! (now itself materialized from the arena, so the two paths cannot
//! drift).

use std::collections::BTreeMap;

use regmon_binary::{Addr, AddrRange, INST_BYTES};
use regmon_sampling::PcSample;
use regmon_stats::CountHistogram;

use crate::index::{IndexKind, RegionIndex};
use crate::region::{Region, RegionId, RegionKind};

/// Read-only access to one interval's attribution result.
///
/// Implemented by the owned [`DistributionReport`] and the borrow-based
/// [`ArenaReport`]; detectors and pruning are generic over this so the
/// zero-copy arena path and the legacy owned path share one consumer
/// code base (and therefore cannot diverge).
pub trait AttributionView {
    /// The histogram of one region, or `None` when it received no
    /// samples this interval.
    fn histogram(&self, id: RegionId) -> Option<&CountHistogram>;
    /// Total samples distributed this interval.
    fn total_samples(&self) -> usize;
    /// Samples that fell in no monitored region (the UCR).
    fn unattributed_samples(&self) -> &[PcSample];
    /// Fraction of samples in the UCR, in `[0, 1]` (0 for an empty
    /// interval).
    fn ucr_fraction(&self) -> f64 {
        if self.total_samples() == 0 {
            return 0.0;
        }
        self.unattributed_samples().len() as f64 / self.total_samples() as f64
    }
}

/// Per-interval result of distributing a buffer of samples.
///
/// Overlapping regions each receive the sample (the paper's stacked
/// region charts exceed the buffer size for exactly this reason), so the
/// per-region totals may sum to more than `total_samples`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionReport {
    per_region: BTreeMap<RegionId, CountHistogram>,
    unattributed: Vec<PcSample>,
    total_samples: usize,
}

impl DistributionReport {
    /// The histogram of one region, or `None` when it received no samples
    /// this interval.
    #[must_use]
    pub fn histogram(&self, id: RegionId) -> Option<&CountHistogram> {
        self.per_region.get(&id)
    }

    /// All `(region, histogram)` pairs that received samples, in id order.
    pub fn histograms(&self) -> impl Iterator<Item = (RegionId, &CountHistogram)> {
        self.per_region.iter().map(|(id, h)| (*id, h))
    }

    /// Number of regions that received samples.
    #[must_use]
    pub fn active_regions(&self) -> usize {
        self.per_region.len()
    }

    /// Samples that fell in no monitored region — the unmonitored code
    /// region (UCR).
    #[must_use]
    pub fn unattributed_samples(&self) -> &[PcSample] {
        &self.unattributed
    }

    /// Total samples distributed this interval.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// Fraction of samples in the UCR, in `[0, 1]` (0 for an empty
    /// interval).
    #[must_use]
    pub fn ucr_fraction(&self) -> f64 {
        AttributionView::ucr_fraction(self)
    }
}

impl AttributionView for DistributionReport {
    fn histogram(&self, id: RegionId) -> Option<&CountHistogram> {
        DistributionReport::histogram(self, id)
    }

    fn total_samples(&self) -> usize {
        self.total_samples
    }

    fn unattributed_samples(&self) -> &[PcSample] {
        &self.unattributed
    }
}

/// One region's reusable attribution state inside the arena.
#[derive(Debug)]
struct ArenaSlot {
    hist: CountHistogram,
    /// Cached region start so the hot loop never touches the region table.
    start: u64,
    /// Last epoch this slot received a sample; stale slots are logically
    /// clear without being touched.
    epoch: u64,
}

/// Reusable per-interval attribution storage.
///
/// Histograms are stored densely, indexed by `RegionId.0` (ids are
/// monotonic per monitor and never reused, so the mapping is stable for
/// a region's whole lifetime). An interval boundary bumps an epoch
/// counter instead of clearing or reallocating anything; a slot is
/// cleared lazily the first time it is touched in a new epoch. The
/// unattributed buffer is likewise reused across intervals.
#[derive(Debug, Default)]
pub struct AttributionArena {
    slots: Vec<Option<ArenaSlot>>,
    /// Regions that received samples this epoch, sorted ascending after
    /// [`AttributionArena::finish`].
    touched: Vec<RegionId>,
    unattributed: Vec<PcSample>,
    epoch: u64,
    total_samples: usize,
}

impl AttributionArena {
    /// Starts a new interval: O(1), nothing is deallocated.
    fn begin(&mut self, total_samples: usize) {
        self.epoch += 1;
        self.touched.clear();
        self.unattributed.clear();
        self.total_samples = total_samples;
    }

    /// Seals the interval: orders the touched set so reports iterate in
    /// region-id order, exactly like the owned [`DistributionReport`].
    fn finish(&mut self) {
        self.touched.sort_unstable();
        if regmon_telemetry::enabled() {
            regmon_telemetry::metrics::ATTRIB_EPOCHS.inc();
            regmon_telemetry::metrics::ATTRIB_SAMPLES.add(self.total_samples as u64);
            regmon_telemetry::metrics::ATTRIB_UNATTRIBUTED.add(self.unattributed.len() as u64);
        }
    }

    /// Ensures `id`'s slot exists and is current for this epoch (lazy
    /// clear + touched-set registration), returning it. `regions` is
    /// consulted only on the very first sample a region ever receives
    /// (slot creation).
    #[inline]
    fn ensure(&mut self, id: RegionId, regions: &BTreeMap<RegionId, Region>) -> &mut ArenaSlot {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let epoch = self.epoch;
        let slot = self.slots[idx].get_or_insert_with(|| {
            let region = &regions[&id];
            ArenaSlot {
                hist: CountHistogram::new(region.slots()),
                start: region.range().start().get(),
                epoch: 0,
            }
        });
        if slot.epoch != epoch {
            slot.hist.clear();
            slot.epoch = epoch;
            self.touched.push(id);
        }
        slot
    }

    /// Records one sample for `id` at `addr`.
    #[inline]
    fn record(&mut self, id: RegionId, addr: Addr, regions: &BTreeMap<RegionId, Region>) {
        let slot = self.ensure(id, regions);
        let off = addr.get() - slot.start;
        slot.hist.record((off / INST_BYTES) as usize);
    }

    /// Merges a whole per-chunk histogram into `id`'s slot via the
    /// 8-lane [`CountHistogram::accumulate`] kernel — the parallel
    /// path's counterpart of per-sample [`AttributionArena::record`].
    /// Histogram addition commutes, so chunk-order merging reproduces
    /// the serial result exactly.
    fn merge(&mut self, id: RegionId, hist: &CountHistogram, regions: &BTreeMap<RegionId, Region>) {
        self.ensure(id, regions).hist.accumulate(hist);
    }

    #[inline]
    fn slot(&self, id: RegionId) -> Option<&ArenaSlot> {
        self.slots
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .filter(|s| s.epoch == self.epoch)
    }
}

/// Borrow-based view of the current interval's attribution, backed by
/// the monitor's [`AttributionArena`]. Equivalent to (and tested
/// byte-identical with) [`DistributionReport`], without copying a single
/// histogram.
#[derive(Debug, Clone, Copy)]
pub struct ArenaReport<'a> {
    arena: &'a AttributionArena,
}

impl ArenaReport<'_> {
    /// The histogram of one region, or `None` when it received no
    /// samples this interval.
    #[must_use]
    pub fn histogram(&self, id: RegionId) -> Option<&CountHistogram> {
        self.arena.slot(id).map(|s| &s.hist)
    }

    /// All `(region, histogram)` pairs that received samples, in id order.
    pub fn histograms(&self) -> impl Iterator<Item = (RegionId, &CountHistogram)> {
        self.arena.touched.iter().map(|&id| {
            let slot = self.arena.slot(id).expect("touched slot present");
            (id, &slot.hist)
        })
    }

    /// Number of regions that received samples.
    #[must_use]
    pub fn active_regions(&self) -> usize {
        self.arena.touched.len()
    }

    /// Samples that fell in no monitored region — the unmonitored code
    /// region (UCR).
    #[must_use]
    pub fn unattributed_samples(&self) -> &[PcSample] {
        &self.arena.unattributed
    }

    /// Total samples distributed this interval.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.arena.total_samples
    }

    /// Fraction of samples in the UCR.
    #[must_use]
    pub fn ucr_fraction(&self) -> f64 {
        AttributionView::ucr_fraction(self)
    }

    /// Materializes an owned [`DistributionReport`] (test support and
    /// legacy callers; the hot path never does this).
    #[must_use]
    pub fn to_owned_report(&self) -> DistributionReport {
        DistributionReport {
            per_region: self.histograms().map(|(id, h)| (id, h.clone())).collect(),
            unattributed: self.unattributed_samples().to_vec(),
            total_samples: self.total_samples(),
        }
    }
}

impl AttributionView for ArenaReport<'_> {
    fn histogram(&self, id: RegionId) -> Option<&CountHistogram> {
        ArenaReport::histogram(self, id)
    }

    fn total_samples(&self) -> usize {
        ArenaReport::total_samples(self)
    }

    fn unattributed_samples(&self) -> &[PcSample] {
        ArenaReport::unattributed_samples(self)
    }
}

/// One region's chunk-local histogram inside a [`ParScratch`].
#[derive(Debug)]
struct MiniSlot {
    hist: CountHistogram,
    /// Cached region start, mirroring [`ArenaSlot`].
    start: u64,
    /// Last interval epoch this mini received a sample; stale minis are
    /// logically clear without being touched.
    epoch: u64,
}

/// Per-worker scratch for [`RegionMonitor::attribute_parallel`], pooled
/// on the monitor so repeated parallel intervals reuse the buffers.
///
/// Workers accumulate chunk-local mini-histograms (dense by
/// `RegionId.0`, epoch-cleared like the arena) instead of emitting one
/// `(region, addr)` pair per hit; the join then merges whole histograms
/// with the vectorised accumulate kernel rather than replaying every
/// sample through `AttributionArena::record`.
#[derive(Debug, Default)]
struct ParScratch {
    minis: Vec<Option<MiniSlot>>,
    /// Regions this chunk touched, in first-hit order.
    touched: Vec<RegionId>,
    unattributed: Vec<PcSample>,
}

impl ParScratch {
    /// Chunk-local equivalent of [`AttributionArena::record`].
    #[inline]
    fn record(
        &mut self,
        id: RegionId,
        addr: Addr,
        epoch: u64,
        regions: &BTreeMap<RegionId, Region>,
    ) {
        let idx = id.0 as usize;
        if idx >= self.minis.len() {
            self.minis.resize_with(idx + 1, || None);
        }
        let slot = self.minis[idx].get_or_insert_with(|| {
            let region = &regions[&id];
            MiniSlot {
                hist: CountHistogram::new(region.slots()),
                start: region.range().start().get(),
                epoch: 0,
            }
        });
        if slot.epoch != epoch {
            slot.hist.clear();
            slot.epoch = epoch;
            self.touched.push(id);
        }
        slot.hist
            .record(((addr.get() - slot.start) / INST_BYTES) as usize);
    }
}

/// Durable identity of one monitored region — what [`MonitorSnapshot`]
/// records per region. Everything else the monitor holds (index
/// structures, range table, arena) is derived state rebuilt on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionRecord {
    /// The region's id (preserved across restore; ids are never reused).
    pub id: RegionId,
    /// Monitored address range.
    pub range: AddrRange,
    /// What formed the region.
    pub kind: RegionKind,
    /// Interval index at formation time.
    pub created_interval: usize,
}

/// Plain-data image of a [`RegionMonitor`]'s durable state. Snapshots
/// are taken at interval boundaries, where the attribution arena is
/// logically clear, so only the region table and the id allocator need
/// to survive; the attribution index and range table are pure functions
/// of the region set and are rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorSnapshot {
    /// Every monitored region, ascending by id.
    pub regions: Vec<RegionRecord>,
    /// The next id the monitor would hand out.
    pub next_id: u64,
}

/// Holds the monitored regions and their attribution index.
#[derive(Debug)]
pub struct RegionMonitor {
    regions: BTreeMap<RegionId, Region>,
    /// Exact-range lookup: every monitored range maps to its region ids
    /// in ascending (creation) order. Kept in sync by `add_region` /
    /// `remove_region` so `region_by_range` is O(log n).
    by_range: BTreeMap<AddrRange, Vec<RegionId>>,
    index: Box<dyn RegionIndex + Send + Sync>,
    next_id: u64,
    arena: AttributionArena,
    par_pool: Vec<ParScratch>,
    /// Reusable buffers of the fused flat-index attribution kernel.
    #[cfg(target_arch = "x86_64")]
    flat_scratch: flat_attrib::FlatScratch,
}

impl RegionMonitor {
    /// Creates an empty monitor using the given attribution index.
    #[must_use]
    pub fn new(index: IndexKind) -> Self {
        Self {
            regions: BTreeMap::new(),
            by_range: BTreeMap::new(),
            index: index.make(),
            next_id: 0,
            arena: AttributionArena::default(),
            par_pool: Vec::new(),
            #[cfg(target_arch = "x86_64")]
            flat_scratch: flat_attrib::FlatScratch::default(),
        }
    }

    /// Adds a region and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn add_region(
        &mut self,
        range: AddrRange,
        kind: RegionKind,
        created_interval: usize,
    ) -> RegionId {
        let id = RegionId(self.next_id);
        self.next_id += 1;
        let region = Region::new(id, range, kind, created_interval);
        self.index.insert(id, range);
        self.regions.insert(id, region);
        // Ids are handed out in ascending order, so pushing keeps the
        // per-range id list sorted.
        self.by_range.entry(range).or_default().push(id);
        id
    }

    /// Removes a region. Returns `true` when it existed.
    pub fn remove_region(&mut self, id: RegionId) -> bool {
        match self.regions.remove(&id) {
            Some(region) => {
                let removed = self.index.remove(id, region.range());
                debug_assert!(removed, "index out of sync with region table");
                if let Some(ids) = self.by_range.get_mut(&region.range()) {
                    ids.retain(|&i| i != id);
                    if ids.is_empty() {
                        self.by_range.remove(&region.range());
                    }
                }
                true
            }
            None => false,
        }
    }

    /// The region with the given id.
    #[must_use]
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(&id)
    }

    /// All monitored regions in id (creation) order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Number of monitored regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` when no regions are monitored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// `true` when some monitored region covers exactly `range`.
    #[must_use]
    pub fn has_range(&self, range: AddrRange) -> bool {
        self.by_range.contains_key(&range)
    }

    /// The monitored region whose range equals `range`, if any (the
    /// earliest-created one when duplicates exist).
    #[must_use]
    pub fn region_by_range(&self, range: AddrRange) -> Option<&Region> {
        let id = self.by_range.get(&range)?.first()?;
        self.regions.get(id)
    }

    /// Attributes one interval's samples into the monitor's arena —
    /// the zero-allocation hot path. Read the result through
    /// [`RegionMonitor::report`].
    pub fn attribute(&mut self, samples: &[PcSample]) {
        self.arena.begin(samples.len());
        // On AVX2 dispatch, a flat index takes the fused kernel: bulk
        // segment resolution (8-wide) followed by a branch-light
        // histogram fill. Histogram addition commutes and the kernel
        // preserves sample order for the UCR buffer, so its results are
        // identical to the per-sample path below (proven by the
        // equivalence suites at every dispatch level).
        #[cfg(target_arch = "x86_64")]
        if regmon_stats::simd::active() == regmon_stats::SimdLevel::Avx2 {
            if let Some(flat) = self.index.as_flat() {
                if flat.has_table() {
                    flat_attrib::attribute_fused(
                        flat,
                        &self.regions,
                        &mut self.arena,
                        &mut self.flat_scratch,
                        samples,
                    );
                    self.arena.finish();
                    return;
                }
            }
        }
        let Self {
            regions,
            index,
            arena,
            ..
        } = self;
        index.stab_batch(samples, &mut |i, ids| {
            if ids.is_empty() {
                arena.unattributed.push(samples[i]);
            } else {
                let addr = samples[i].addr;
                for &id in ids {
                    arena.record(id, addr, regions);
                }
            }
        });
        arena.finish();
    }

    /// Like [`RegionMonitor::attribute`], but splits the interval across
    /// `threads` scoped worker threads, each stabbing its contiguous
    /// chunk against the shared index; the hits are then merged into the
    /// arena in chunk order, which reproduces the serial result exactly
    /// (histogram addition commutes; the UCR buffer is concatenated in
    /// input order).
    pub fn attribute_parallel(&mut self, samples: &[PcSample], threads: usize) {
        let threads = threads.clamp(1, samples.len().max(1));
        if threads <= 1 {
            return self.attribute(samples);
        }
        let chunk = samples.len().div_ceil(threads);
        let nchunks = samples.len().div_ceil(chunk);
        let Self {
            regions,
            index,
            arena,
            par_pool,
            ..
        } = self;
        if par_pool.len() < nchunks {
            par_pool.resize_with(nchunks, ParScratch::default);
        }
        arena.begin(samples.len());
        let epoch = arena.epoch;
        std::thread::scope(|scope| {
            let index: &(dyn RegionIndex + Send + Sync) = &**index;
            let regions: &BTreeMap<RegionId, Region> = regions;
            for (scratch, chunk_samples) in par_pool.iter_mut().zip(samples.chunks(chunk)) {
                scope.spawn(move || {
                    scratch.touched.clear();
                    scratch.unattributed.clear();
                    index.stab_batch(chunk_samples, &mut |i, ids| {
                        if ids.is_empty() {
                            scratch.unattributed.push(chunk_samples[i]);
                        } else {
                            for &id in ids {
                                scratch.record(id, chunk_samples[i].addr, epoch, regions);
                            }
                        }
                    });
                });
            }
        });
        for scratch in par_pool.iter().take(nchunks) {
            for &id in &scratch.touched {
                let mini = scratch.minis[id.0 as usize]
                    .as_ref()
                    .expect("touched region has a mini histogram");
                arena.merge(id, &mini.hist, regions);
            }
            arena.unattributed.extend_from_slice(&scratch.unattributed);
        }
        arena.finish();
    }

    /// A borrow-based view of the most recent
    /// [`RegionMonitor::attribute`] result.
    #[must_use]
    pub fn report(&self) -> ArenaReport<'_> {
        ArenaReport { arena: &self.arena }
    }

    /// Takes the arena's unattributed buffer, leaving it empty, so the
    /// caller can hold the UCR samples while mutating the monitor
    /// (region formation). Pair with
    /// [`RegionMonitor::restore_unattributed`].
    #[must_use]
    pub fn take_unattributed(&mut self) -> Vec<PcSample> {
        std::mem::take(&mut self.arena.unattributed)
    }

    /// Returns a buffer taken by [`RegionMonitor::take_unattributed`],
    /// preserving its allocation for the next interval.
    pub fn restore_unattributed(&mut self, buf: Vec<PcSample>) {
        self.arena.unattributed = buf;
    }

    /// Distributes one interval's samples across the monitored regions,
    /// returning an owned report.
    ///
    /// Every region containing a sample's PC receives it in the slot
    /// `(pc − region.start) / INST_BYTES`; samples contained by no region
    /// are collected as the UCR. This runs the same arena path as
    /// [`RegionMonitor::attribute`] and then copies the result out; hot
    /// callers should use `attribute` + [`RegionMonitor::report`]
    /// instead.
    pub fn distribute(&mut self, samples: &[PcSample]) -> DistributionReport {
        self.attribute(samples);
        self.report().to_owned_report()
    }

    /// Exports the monitor's durable state for checkpointing. Must be
    /// called at an interval boundary (after the last interval's
    /// consumers are done with [`RegionMonitor::report`]): the arena's
    /// per-interval contents are deliberately not captured.
    #[must_use]
    pub fn export(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            regions: self
                .regions
                .values()
                .map(|r| RegionRecord {
                    id: r.id(),
                    range: r.range(),
                    kind: r.kind(),
                    created_interval: r.created_interval(),
                })
                .collect(),
            next_id: self.next_id,
        }
    }

    /// Rebuilds a monitor from an exported snapshot: region ids are
    /// preserved (so downstream per-region state keyed by id stays
    /// valid), the attribution index and range table are reconstructed,
    /// and the arena starts fresh — exactly the state an original
    /// monitor has at the same interval boundary.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's regions are not strictly ascending by
    /// id or an id is not below `next_id`.
    #[must_use]
    pub fn restore(index: IndexKind, snapshot: MonitorSnapshot) -> Self {
        let mut monitor = Self::new(index);
        let mut prev: Option<RegionId> = None;
        for record in snapshot.regions {
            assert!(
                prev.map_or(true, |p| p < record.id),
                "snapshot regions must be strictly ascending by id"
            );
            assert!(
                record.id.0 < snapshot.next_id,
                "snapshot region id {} not below next_id {}",
                record.id,
                snapshot.next_id
            );
            prev = Some(record.id);
            let region = Region::new(
                record.id,
                record.range,
                record.kind,
                record.created_interval,
            );
            monitor.index.insert(record.id, record.range);
            monitor
                .by_range
                .entry(record.range)
                .or_default()
                .push(record.id);
            monitor.regions.insert(record.id, region);
        }
        monitor.next_id = snapshot.next_id;
        monitor
    }
}

/// The fused flat-index attribution kernel (AVX2 dispatch only).
///
/// Instead of funnelling every sample through the `stab_batch` emit
/// callback and a per-sample arena lookup, the interval is attributed
/// in two passes:
///
/// 1. **Segment resolution** — [`FlatSortedIndex::segments_bulk_avx2`]
///    maps all samples to elementary segments, eight at a time.
/// 2. **Fill** — one branch-light pass bumps histogram slots through
///    per-segment *descriptors*: each distinct segment's first sample
///    builds a cursor into its (single) region's arena histogram — slot
///    ensure/clear/touched bookkeeping once per segment instead of once
///    per sample — and every later sample is a masked add through that
///    cursor. UCR samples append to the unattributed buffer
///    branchlessly (write, then conditionally advance) while their
///    histogram write lands in a sink cell; samples in multi-id
///    (overlapping-region) segments are deferred to the ordinary
///    `record` path.
///
/// Equivalence with the per-sample oracle: histogram addition over u64
/// commutes, the UCR buffer is filled in input order, and the touched
/// set is sorted by [`AttributionArena::finish`] — so every observable
/// output is identical (the SIMD equivalence suites assert this
/// end-to-end at each dispatch level).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod flat_attrib {
    use std::collections::BTreeMap;

    use regmon_binary::INST_BYTES;
    use regmon_sampling::PcSample;

    use super::AttributionArena;
    use crate::index::FlatSortedIndex;
    use crate::region::{Region, RegionId};

    /// Exactly one region claims the segment: samples bump its arena
    /// histogram straight through the descriptor cursor.
    const KIND_SINGLE: u8 = 0;
    /// No region claims the segment (UCR): samples append to the
    /// unattributed buffer.
    const KIND_UCR: u8 = 1;
    /// Overlapping regions: samples defer to the ordinary `record`
    /// path.
    const KIND_MULTI: u8 = 2;

    /// One segment's attribution cursor, rebuilt lazily each interval
    /// (an entry is live only while its tag's epoch matches the
    /// arena's). The histogram pointer is carried as `usize` so the
    /// scratch stays plain data and the monitor stays `Send`; it is
    /// only ever formed and dereferenced inside one
    /// [`attribute_fused`] call.
    #[derive(Debug, Clone, Copy)]
    struct SegDesc {
        /// `epoch << 2 | KIND_*`: the fill loop's single compare
        /// against `epoch << 2` answers "live and single-region?" in
        /// one branch (arena epochs are far below 2^62).
        tag: u64,
        /// The region's arena histogram slot buffer (`KIND_SINGLE`
        /// only; 0 otherwise, never dereferenced).
        base: usize,
        /// Region start (slot 0's address); 0 for UCR/multi.
        start: u64,
        /// The segment's inclusive slot range in the region histogram
        /// (`KIND_SINGLE` only): settle sums it to recover the hit
        /// count instead of bumping a counter per sample. Segments are
        /// disjoint address runs, so their slot ranges are disjoint
        /// even within one region.
        slot_lo: u32,
        slot_hi: u32,
        /// Region receiving the hits (`KIND_SINGLE` only).
        id: RegionId,
    }

    impl SegDesc {
        fn kind(&self) -> u8 {
            (self.tag & 3) as u8
        }
    }

    const STALE: SegDesc = SegDesc {
        tag: KIND_UCR as u64, // epoch 0: never a live interval
        base: 0,
        start: 0,
        slot_lo: 0,
        slot_hi: 0,
        id: RegionId(0),
    };

    /// Reusable buffers; plain data only (see [`SegDesc`]).
    #[derive(Debug, Default)]
    pub(super) struct FlatScratch {
        /// Per-sample elementary segment (pass 1 output).
        segs: Vec<u32>,
        /// Per-segment descriptors, indexed by segment (one trailing
        /// entry for the out-of-span sentinel).
        descs: Vec<SegDesc>,
        /// Segments with a live descriptor this interval.
        uniq: Vec<u32>,
        /// Sample indices deferred to the multi-id slow path.
        multi: Vec<u32>,
    }

    /// See the module docs. Caller contract: AVX2 dispatch is active,
    /// `flat.has_table()`, and `arena.begin` has been called for this
    /// interval.
    pub(super) fn attribute_fused(
        flat: &FlatSortedIndex,
        regions: &BTreeMap<RegionId, Region>,
        arena: &mut AttributionArena,
        scratch: &mut FlatScratch,
        samples: &[PcSample],
    ) {
        let FlatScratch {
            segs,
            descs,
            uniq,
            multi,
        } = scratch;
        flat.segments_bulk_avx2(samples, segs);

        // The resolver writes `nsegs` for out-of-span samples, so every
        // entry of `segs` indexes the `nsegs + 1`-entry descriptor
        // table directly. `epoch` is bumped by `arena.begin`, so stale
        // descriptors (earlier intervals, or an index recompile between
        // intervals) never match and `STALE` (epoch 0) never collides.
        let nsegs = flat.nsegs();
        if descs.len() < nsegs + 1 {
            descs.resize(nsegs + 1, STALE);
        }
        let epoch = arena.epoch;
        uniq.clear();
        multi.clear();

        let mut unattr = std::mem::take(&mut arena.unattributed);
        debug_assert!(unattr.is_empty(), "begin() clears the UCR buffer");
        unattr.reserve(samples.len());
        let uptr = unattr.as_mut_ptr();
        let mut ulen = 0usize;
        let live_single = epoch << 2; // | KIND_SINGLE
        let dptr = descs.as_mut_ptr();
        for (i, (sample, &seg32)) in samples.iter().zip(segs.iter()).enumerate() {
            // SAFETY: the resolver writes `seg32 <= nsegs` and `descs`
            // holds `nsegs + 1` live entries.
            let d = unsafe { &mut *dptr.add(seg32 as usize) };
            if d.tag != live_single {
                // Cold: stale descriptor, UCR or multi.
                if d.tag >> 2 != epoch {
                    *d = build_desc(flat, regions, arena, seg32, seg32 as usize == nsegs, epoch);
                    uniq.push(seg32);
                }
                if d.kind() == KIND_UCR {
                    // SAFETY: `ulen` advances at most once per sample
                    // and `unattr` reserved `samples.len()`; committed
                    // below via `set_len(ulen)`.
                    unsafe { uptr.add(ulen).write(*sample) };
                    ulen += 1;
                    continue;
                }
                if d.kind() == KIND_MULTI {
                    multi.push(i as u32);
                    continue;
                }
            }
            let slot = (sample.addr.get().wrapping_sub(d.start) / INST_BYTES) as usize;
            // SAFETY: `build_desc` checked that the whole segment span
            // maps into the histogram, and segment resolution
            // guarantees the sample's address lies in that span. The
            // buffer itself is kept alive and unmoved by the arena for
            // the whole pass — slot buffers never shrink or relocate.
            unsafe { *(d.base as *mut u64).add(slot) += 1 };
        }
        // SAFETY: exactly `ulen` leading cells were initialised above.
        unsafe { unattr.set_len(ulen) };
        arena.unattributed = unattr;

        // Settle histogram totals (counts were bumped raw): each
        // single-region descriptor's hits are the sum of its disjoint
        // slot range, all contributed by this interval's fill (the
        // range was cleared when the descriptor ensured its slot, and
        // the deferred multi replay below goes through `record`, which
        // keeps counts and total consistent by itself). Per-interval
        // counts are bounded by the interval's sample count, so the
        // totals cannot saturate.
        for &seg in uniq.iter() {
            let d = descs[seg as usize];
            if d.kind() == KIND_SINGLE {
                let hist = &mut arena.ensure(d.id, regions).hist;
                let hits: u64 = hist.counts()[d.slot_lo as usize..=d.slot_hi as usize]
                    .iter()
                    .sum();
                if hits > 0 {
                    hist.note_bulk_records(hits);
                }
            }
        }
        for &i in multi.iter() {
            let sample = &samples[i as usize];
            for &id in flat.seg_ids(segs[i as usize]) {
                arena.record(id, sample.addr, regions);
            }
        }
    }

    /// Builds the descriptor of one segment, ensuring its region's
    /// arena slot (single-id segments reserve their histogram cursor
    /// here; multi-id segments are handled entirely by the deferred
    /// `record` path, which does its own ensures).
    fn build_desc(
        flat: &FlatSortedIndex,
        regions: &BTreeMap<RegionId, Region>,
        arena: &mut AttributionArena,
        raw_seg: u32,
        out_of_span: bool,
        epoch: u64,
    ) -> SegDesc {
        let ids = if out_of_span {
            &[][..]
        } else {
            flat.seg_ids(raw_seg)
        };
        match ids {
            [] => SegDesc {
                tag: epoch << 2 | KIND_UCR as u64,
                ..STALE
            },
            &[id] => {
                let slot = arena.ensure(id, regions);
                let (seg_lo, seg_hi) = flat.seg_span(raw_seg);
                // Hoisted bounds proof for the raw adds in the fill
                // loop: the segment's highest address must map inside
                // the histogram (same contract `CountHistogram::record`
                // enforces per sample).
                debug_assert!(seg_lo >= slot.start, "segment below its region");
                let slot_lo = (seg_lo - slot.start) / INST_BYTES;
                let slot_hi = (seg_hi - 1).wrapping_sub(slot.start) / INST_BYTES;
                assert!(
                    (slot_hi as usize) < slot.hist.slots(),
                    "attribution slot out of bounds"
                );
                SegDesc {
                    tag: epoch << 2 | KIND_SINGLE as u64,
                    base: slot.hist.counts_mut().as_mut_ptr() as usize,
                    start: slot.start,
                    slot_lo: slot_lo as u32,
                    slot_hi: slot_hi as u32,
                    id,
                }
            }
            _ => SegDesc {
                tag: epoch << 2 | KIND_MULTI as u64,
                ..STALE
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::Addr;

    fn sample(addr: u64) -> PcSample {
        PcSample {
            addr: Addr::new(addr),
            cycle: 0,
        }
    }

    fn range(start: u64, end: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(end))
    }

    #[test]
    fn add_and_remove_regions() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let a = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        let b = mon.add_region(range(0x200, 0x240), RegionKind::Custom, 1);
        assert_ne!(a, b);
        assert_eq!(mon.len(), 2);
        assert!(mon.remove_region(a));
        assert!(!mon.remove_region(a));
        assert_eq!(mon.len(), 1);
        assert!(mon.region(b).is_some());
        assert!(mon.region(a).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let a = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        mon.remove_region(a);
        let b = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn distribute_fills_slots() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let id = mon.add_region(range(0x100, 0x120), RegionKind::Custom, 0);
        let report = mon.distribute(&[sample(0x100), sample(0x104), sample(0x104)]);
        let h = report.histogram(id).unwrap();
        assert_eq!(h.counts(), &[1, 2, 0, 0, 0, 0, 0, 0]);
        assert_eq!(report.ucr_fraction(), 0.0);
    }

    #[test]
    fn overlapping_regions_both_count() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let outer = mon.add_region(range(0x100, 0x200), RegionKind::Loop { depth: 0 }, 0);
        let inner = mon.add_region(range(0x140, 0x180), RegionKind::Loop { depth: 1 }, 0);
        let report = mon.distribute(&[sample(0x150)]);
        assert_eq!(report.histogram(outer).unwrap().total(), 1);
        assert_eq!(report.histogram(inner).unwrap().total(), 1);
        // The stacked total exceeds the number of samples, as in Figure 2.
        let stacked: u64 = report.histograms().map(|(_, h)| h.total()).sum();
        assert_eq!(stacked, 2);
        assert_eq!(report.total_samples(), 1);
    }

    #[test]
    fn unattributed_samples_form_the_ucr() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        let report = mon.distribute(&[sample(0x100), sample(0x500), sample(0x600)]);
        assert_eq!(report.unattributed_samples().len(), 2);
        assert!((report.ucr_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_reports_zero_ucr() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let report = mon.distribute(&[]);
        assert_eq!(report.total_samples(), 0);
        assert_eq!(report.ucr_fraction(), 0.0);
        assert_eq!(report.active_regions(), 0);
    }

    #[test]
    fn has_range_and_lookup() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let id = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 3);
        assert!(mon.has_range(range(0x100, 0x140)));
        assert!(!mon.has_range(range(0x100, 0x144)));
        assert_eq!(mon.region_by_range(range(0x100, 0x140)).unwrap().id(), id);
    }

    #[test]
    fn region_by_range_prefers_earliest_id_and_survives_removal() {
        let mut mon = RegionMonitor::new(IndexKind::Linear);
        let a = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        let b = mon.add_region(range(0x100, 0x140), RegionKind::Custom, 1);
        assert_eq!(mon.region_by_range(range(0x100, 0x140)).unwrap().id(), a);
        assert!(mon.remove_region(a));
        assert_eq!(mon.region_by_range(range(0x100, 0x140)).unwrap().id(), b);
        assert!(mon.remove_region(b));
        assert!(mon.region_by_range(range(0x100, 0x140)).is_none());
        assert!(!mon.has_range(range(0x100, 0x140)));
    }

    #[test]
    fn linear_and_tree_monitors_agree() {
        let mut a = RegionMonitor::new(IndexKind::Linear);
        let mut b = RegionMonitor::new(IndexKind::IntervalTree);
        for (s, e) in [(0x100u64, 0x180u64), (0x140, 0x1c0), (0x300, 0x340)] {
            a.add_region(range(s, e), RegionKind::Custom, 0);
            b.add_region(range(s, e), RegionKind::Custom, 0);
        }
        let samples: Vec<PcSample> = (0..200).map(|i| sample(0x100 + i * 4)).collect();
        let ra = a.distribute(&samples);
        let rb = b.distribute(&samples);
        assert_eq!(ra, rb);
    }

    #[test]
    fn arena_report_matches_owned_report() {
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut mon = RegionMonitor::new(kind);
            mon.add_region(range(0x100, 0x180), RegionKind::Custom, 0);
            mon.add_region(range(0x140, 0x1c0), RegionKind::Custom, 0);
            let samples: Vec<PcSample> =
                (0..300).map(|i| sample(0x100 + (i * 7) % 0x200)).collect();
            let owned = mon.distribute(&samples);
            // `distribute` went through the arena; the view must agree.
            let view = mon.report();
            assert_eq!(view.to_owned_report(), owned, "{kind:?}");
            assert_eq!(view.active_regions(), owned.active_regions());
            assert_eq!(view.ucr_fraction(), owned.ucr_fraction());
            let ids_view: Vec<RegionId> = view.histograms().map(|(id, _)| id).collect();
            let ids_owned: Vec<RegionId> = owned.histograms().map(|(id, _)| id).collect();
            assert_eq!(ids_view, ids_owned, "id order must match");
        }
    }

    #[test]
    fn arena_is_reset_between_intervals() {
        let mut mon = RegionMonitor::new(IndexKind::FlatSorted);
        let id = mon.add_region(range(0x100, 0x120), RegionKind::Custom, 0);
        mon.attribute(&[sample(0x104), sample(0x104)]);
        assert_eq!(mon.report().histogram(id).unwrap().total(), 2);
        mon.attribute(&[sample(0x500)]);
        assert!(mon.report().histogram(id).is_none(), "stale epoch leaked");
        assert_eq!(mon.report().unattributed_samples().len(), 1);
        mon.attribute(&[sample(0x100)]);
        assert_eq!(mon.report().histogram(id).unwrap().counts()[0], 1);
        assert_eq!(
            mon.report().histogram(id).unwrap().total(),
            1,
            "histogram must be cleared, not accumulated"
        );
    }

    #[test]
    fn take_restore_unattributed_round_trips() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        mon.attribute(&[sample(0x100), sample(0x900)]);
        let buf = mon.take_unattributed();
        assert_eq!(buf.len(), 1);
        assert!(mon.report().unattributed_samples().is_empty());
        mon.restore_unattributed(buf);
        assert_eq!(mon.report().unattributed_samples().len(), 1);
    }

    #[test]
    fn parallel_attribution_matches_serial() {
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut serial = RegionMonitor::new(kind);
            let mut par = RegionMonitor::new(kind);
            for (s, e) in [(0x100u64, 0x200u64), (0x180, 0x280), (0x400, 0x440)] {
                serial.add_region(range(s, e), RegionKind::Custom, 0);
                par.add_region(range(s, e), RegionKind::Custom, 0);
            }
            let samples: Vec<PcSample> =
                (0..997).map(|i| sample(0x80 + (i * 13) % 0x500)).collect();
            serial.attribute(&samples);
            let want = serial.report().to_owned_report();
            for threads in [2, 3, 7, 64] {
                par.attribute_parallel(&samples, threads);
                assert_eq!(
                    par.report().to_owned_report(),
                    want,
                    "{kind:?} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn export_restore_preserves_regions_ids_and_attribution() {
        for kind in [
            IndexKind::Linear,
            IndexKind::IntervalTree,
            IndexKind::FlatSorted,
        ] {
            let mut mon = RegionMonitor::new(kind);
            let a = mon.add_region(range(0x100, 0x180), RegionKind::Loop { depth: 1 }, 2);
            mon.add_region(range(0x140, 0x1c0), RegionKind::Custom, 3);
            mon.remove_region(a);
            let c = mon.add_region(range(0x300, 0x340), RegionKind::Procedure, 5);
            let snap = mon.export();
            let mut restored = RegionMonitor::restore(kind, snap.clone());
            assert_eq!(restored.export(), snap, "{kind:?}");
            assert_eq!(restored.len(), mon.len());
            assert_eq!(restored.region(c).unwrap().created_interval(), 5);
            // Ids keep advancing past the snapshot's allocator position.
            let d = restored.add_region(range(0x500, 0x540), RegionKind::Custom, 7);
            assert_eq!(
                d,
                mon.add_region(range(0x500, 0x540), RegionKind::Custom, 7)
            );
            // Attribution through the rebuilt index matches the original.
            let samples: Vec<PcSample> =
                (0..300).map(|i| sample(0x100 + (i * 7) % 0x500)).collect();
            assert_eq!(
                restored.distribute(&samples),
                mon.distribute(&samples),
                "{kind:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn restore_rejects_unsorted_snapshot() {
        let record = |id: u64| RegionRecord {
            id: RegionId(id),
            range: range(0x100 * (id + 1), 0x100 * (id + 1) + 0x40),
            kind: RegionKind::Custom,
            created_interval: 0,
        };
        let _ = RegionMonitor::restore(
            IndexKind::Linear,
            MonitorSnapshot {
                regions: vec![record(3), record(1)],
                next_id: 4,
            },
        );
    }

    #[test]
    fn parallel_attribution_handles_edge_sizes() {
        let mut mon = RegionMonitor::new(IndexKind::FlatSorted);
        mon.add_region(range(0x100, 0x140), RegionKind::Custom, 0);
        mon.attribute_parallel(&[], 4);
        assert_eq!(mon.report().total_samples(), 0);
        mon.attribute_parallel(&[sample(0x100)], 8);
        assert_eq!(mon.report().total_samples(), 1);
        assert_eq!(mon.report().active_regions(), 1);
    }
}
