//! Region pruning: dropping cold regions from the monitor.
//!
//! The paper (§3.2.3) lists pruning — "remove infrequently executing and
//! relatively cold regions from the region monitor" — as a future cost
//! reduction. [`Pruner`] implements it: a region that receives fewer than
//! `min_samples` in each of `cold_intervals` consecutive intervals is
//! evicted.

use std::collections::HashMap;

use crate::monitor::{AttributionView, RegionMonitor};
use crate::region::RegionId;

/// Evicts regions that stay cold for too long.
#[derive(Debug, Clone)]
pub struct Pruner {
    cold_intervals: usize,
    min_samples: u64,
    cold_streak: HashMap<RegionId, usize>,
}

impl Pruner {
    /// Creates a pruner: a region colder than `min_samples` for
    /// `cold_intervals` consecutive intervals is removed.
    ///
    /// # Panics
    ///
    /// Panics if `cold_intervals == 0`.
    #[must_use]
    pub fn new(cold_intervals: usize, min_samples: u64) -> Self {
        assert!(cold_intervals > 0, "cold_intervals must be positive");
        Self {
            cold_intervals,
            min_samples,
            cold_streak: HashMap::new(),
        }
    }

    /// Exports the per-region cold streaks, ascending by region id
    /// (checkpointing; the policy parameters live in the session
    /// config).
    #[must_use]
    pub fn cold_streaks(&self) -> Vec<(RegionId, usize)> {
        let mut streaks: Vec<(RegionId, usize)> =
            self.cold_streak.iter().map(|(id, s)| (*id, *s)).collect();
        streaks.sort_unstable_by_key(|(id, _)| *id);
        streaks
    }

    /// Restores previously exported cold streaks into a fresh pruner.
    pub fn restore_streaks(&mut self, streaks: &[(RegionId, usize)]) {
        self.cold_streak = streaks.iter().copied().collect();
    }

    /// Updates streaks from this interval's report and returns the
    /// regions whose streak reached the limit, **without** removing them
    /// from the monitor. The borrow-based arena report keeps the monitor
    /// immutably borrowed, so eviction is split: `plan` observes, the
    /// caller applies [`RegionMonitor::remove_region`] afterwards.
    pub fn plan<V: AttributionView>(
        &mut self,
        report: &V,
        monitor: &RegionMonitor,
    ) -> Vec<RegionId> {
        // Update streaks for every *monitored* region, not just active ones.
        let mut evicted = Vec::new();
        for id in monitor.regions().map(crate::region::Region::id) {
            let hot = report
                .histogram(id)
                .is_some_and(|h| h.total() >= self.min_samples);
            if hot {
                self.cold_streak.remove(&id);
                continue;
            }
            let streak = self.cold_streak.entry(id).or_insert(0);
            *streak += 1;
            if *streak >= self.cold_intervals {
                self.cold_streak.remove(&id);
                evicted.push(id);
            }
        }
        evicted
    }

    /// Updates streaks from this interval's report and evicts regions
    /// whose streak reached the limit. Returns the evicted ids.
    pub fn observe<V: AttributionView>(
        &mut self,
        report: &V,
        monitor: &mut RegionMonitor,
    ) -> Vec<RegionId> {
        let evicted = self.plan(report, monitor);
        for &id in &evicted {
            monitor.remove_region(id);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::region::RegionKind;
    use regmon_binary::{Addr, AddrRange};
    use regmon_sampling::PcSample;

    fn range(start: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(start + 0x40))
    }

    fn samples(start: u64, n: usize) -> Vec<PcSample> {
        (0..n)
            .map(|i| PcSample {
                addr: Addr::new(start + (i as u64 % 16) * 4),
                cycle: i as u64,
            })
            .collect()
    }

    #[test]
    fn hot_regions_survive() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let id = mon.add_region(range(0x1000), RegionKind::Custom, 0);
        let mut pruner = Pruner::new(3, 5);
        for _ in 0..10 {
            let report = mon.distribute(&samples(0x1000, 20));
            assert!(pruner.observe(&report, &mut mon).is_empty());
        }
        assert!(mon.region(id).is_some());
    }

    #[test]
    fn cold_region_evicted_after_streak() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let cold = mon.add_region(range(0x1000), RegionKind::Custom, 0);
        let hot = mon.add_region(range(0x2000), RegionKind::Custom, 0);
        let mut pruner = Pruner::new(3, 5);
        let mut evictions = Vec::new();
        for _ in 0..3 {
            let report = mon.distribute(&samples(0x2000, 20));
            evictions.extend(pruner.observe(&report, &mut mon));
        }
        assert_eq!(evictions, vec![cold]);
        assert!(mon.region(cold).is_none());
        assert!(mon.region(hot).is_some());
    }

    #[test]
    fn streak_resets_on_activity() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let id = mon.add_region(range(0x1000), RegionKind::Custom, 0);
        let mut pruner = Pruner::new(2, 5);
        // cold, hot, cold, hot ... never two colds in a row.
        for i in 0..8 {
            let report = if i % 2 == 0 {
                mon.distribute(&[])
            } else {
                mon.distribute(&samples(0x1000, 20))
            };
            assert!(pruner.observe(&report, &mut mon).is_empty());
        }
        assert!(mon.region(id).is_some());
    }

    #[test]
    fn below_threshold_counts_as_cold() {
        let mut mon = RegionMonitor::new(IndexKind::IntervalTree);
        let id = mon.add_region(range(0x1000), RegionKind::Custom, 0);
        let mut pruner = Pruner::new(2, 10);
        for _ in 0..2 {
            let report = mon.distribute(&samples(0x1000, 3)); // 3 < 10
            pruner.observe(&report, &mut mon);
        }
        assert!(mon.region(id).is_none());
    }
}
