//! Monitored regions.

use core::fmt;
use regmon_binary::{AddrRange, INST_BYTES};

/// Identifier of a monitored region, unique within its
/// [`crate::RegionMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What kind of code a region covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A natural loop at the given nesting depth — the paper's primary
    /// unit of optimization.
    Loop {
        /// Nesting depth, `0` for outermost.
        depth: usize,
    },
    /// A whole procedure — produced only by the inter-procedural
    /// formation extension.
    Procedure,
    /// A hot path (superblock) through a procedure's CFG — produced by
    /// the trace-formation extension; the monitored range is the trace's
    /// convex hull.
    Trace,
    /// A caller-supplied range (tests, ad-hoc monitoring).
    Custom,
}

/// A monitored code region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    id: RegionId,
    range: AddrRange,
    kind: RegionKind,
    created_interval: usize,
}

impl Region {
    /// Creates a region record; normally done via
    /// [`crate::RegionMonitor::add_region`].
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    #[must_use]
    pub fn new(id: RegionId, range: AddrRange, kind: RegionKind, created_interval: usize) -> Self {
        assert!(
            !range.is_empty(),
            "a region must cover at least one address"
        );
        Self {
            id,
            range,
            kind,
            created_interval,
        }
    }

    /// The region's identifier.
    #[must_use]
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The covered address range.
    #[must_use]
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// The region's kind.
    #[must_use]
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// Index of the sampling interval in which the region was formed.
    #[must_use]
    pub fn created_interval(&self) -> usize {
        self.created_interval
    }

    /// Number of instruction slots the region covers.
    #[must_use]
    pub fn slots(&self) -> usize {
        (self.range.len() / INST_BYTES) as usize
    }

    /// The paper-style name of the region: its hex range (`146f0-14770`).
    #[must_use]
    pub fn name(&self) -> String {
        self.range.to_string()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.id, self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::Addr;

    fn range() -> AddrRange {
        AddrRange::new(Addr::new(0x146f0), Addr::new(0x14770))
    }

    #[test]
    fn region_name_matches_paper_style() {
        let r = Region::new(RegionId(1), range(), RegionKind::Loop { depth: 0 }, 5);
        assert_eq!(r.name(), "146f0-14770");
        assert_eq!(r.to_string(), "R1 [146f0-14770]");
    }

    #[test]
    fn slots_divides_by_inst_width() {
        let r = Region::new(RegionId(0), range(), RegionKind::Custom, 0);
        assert_eq!(r.slots(), 0x80 / 4);
    }

    #[test]
    fn accessors() {
        let r = Region::new(RegionId(3), range(), RegionKind::Procedure, 7);
        assert_eq!(r.id(), RegionId(3));
        assert_eq!(r.kind(), RegionKind::Procedure);
        assert_eq!(r.created_interval(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn empty_range_panics() {
        let empty = AddrRange::new(Addr::new(8), Addr::new(8));
        let _ = Region::new(RegionId(0), empty, RegionKind::Custom, 0);
    }
}
