//! Trace formation: hot paths through a procedure's CFG as monitoring
//! units.
//!
//! The paper's region builder produces loops, but notes (§3.1) that "in
//! the future, regions can also include functions or traces". This module
//! implements the trace option: starting from the hottest sampled basic
//! block, a trace greedily follows the hottest successor until the path
//! goes cold, revisits itself (a loop closed), or hits the length cap —
//! the classic superblock-selection heuristic of trace-based optimizers
//! (Dynamo's NET, Merten's hot-spot detector).
//!
//! A trace's blocks need not be contiguous, while a monitored region is
//! one address range; the monitored range is the trace's convex hull
//! ([`Trace::hull`]), which is exact for the common fall-through-heavy
//! traces and a documented over-approximation otherwise.

use std::collections::HashMap;

use regmon_binary::{AddrRange, Binary, BlockId, ProcId};
use regmon_sampling::PcSample;

use crate::monitor::RegionMonitor;
use crate::region::{RegionId, RegionKind};

/// Trace-formation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Minimum samples a block needs to seed a trace.
    pub min_seed_samples: usize,
    /// A successor is followed only while its sample count is at least
    /// this fraction of the seed block's.
    pub continuation_ratio: f64,
    /// Maximum blocks per trace.
    pub max_blocks: usize,
    /// Maximum traces built per invocation.
    pub max_traces: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            min_seed_samples: 32,
            continuation_ratio: 0.25,
            max_blocks: 16,
            max_traces: 8,
        }
    }
}

/// A selected hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    proc: ProcId,
    blocks: Vec<BlockId>,
    ranges: Vec<AddrRange>,
    samples: usize,
}

impl Trace {
    /// The procedure the trace lives in.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// The trace's blocks, in selection (execution) order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The address ranges of the trace's blocks, in selection order.
    #[must_use]
    pub fn ranges(&self) -> &[AddrRange] {
        &self.ranges
    }

    /// Samples that landed in the trace's blocks.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The convex hull of the trace's blocks — the range monitored when
    /// the trace is registered as a region.
    #[must_use]
    pub fn hull(&self) -> AddrRange {
        let start = self
            .ranges
            .iter()
            .map(|r| r.start())
            .min()
            .expect("traces are non-empty");
        let end = self
            .ranges
            .iter()
            .map(|r| r.end())
            .max()
            .expect("traces are non-empty");
        AddrRange::new(start, end)
    }
}

/// The trace builder.
#[derive(Debug, Clone, Default)]
pub struct TraceFormation {
    config: TraceConfig,
}

impl TraceFormation {
    /// Creates a builder with the given policy.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        Self { config }
    }

    /// Selects hot traces from one interval's samples.
    ///
    /// Traces are returned hottest-first; blocks already claimed by an
    /// earlier trace are not reused as seeds (they may be *shared* as
    /// continuations, like overlapping superblocks).
    #[must_use]
    pub fn select(&self, binary: &Binary, samples: &[PcSample]) -> Vec<Trace> {
        // Per-(proc, block) sample counts.
        let mut counts: HashMap<(ProcId, BlockId), usize> = HashMap::new();
        for s in samples {
            if let Some(proc) = binary.procedure_at(s.addr) {
                if let Some(block) = proc.block_at(s.addr) {
                    *counts.entry((proc.id(), block.id())).or_insert(0) += 1;
                }
            }
        }

        // Hottest-first seed order, deterministic tie-break by ids.
        let mut seeds: Vec<((ProcId, BlockId), usize)> = counts
            .iter()
            .map(|(&k, &v)| (k, v))
            .filter(|&(_, v)| v >= self.config.min_seed_samples)
            .collect();
        seeds.sort_by_key(|&((p, b), v)| (usize::MAX - v, p, b));

        let mut used_seeds: HashMap<(ProcId, BlockId), ()> = HashMap::new();
        let mut traces = Vec::new();
        for ((proc_id, seed), seed_count) in seeds {
            if traces.len() >= self.config.max_traces {
                break;
            }
            if used_seeds.contains_key(&(proc_id, seed)) {
                continue;
            }
            let trace = self.grow(binary, proc_id, seed, seed_count, &counts);
            for &b in trace.blocks() {
                used_seeds.insert((proc_id, b), ());
            }
            traces.push(trace);
        }
        traces
    }

    /// Grows one trace forward from `seed` by hottest-successor.
    fn grow(
        &self,
        binary: &Binary,
        proc_id: ProcId,
        seed: BlockId,
        seed_count: usize,
        counts: &HashMap<(ProcId, BlockId), usize>,
    ) -> Trace {
        let proc = binary.procedure(proc_id);
        let cfg = proc.cfg();
        let floor = ((seed_count as f64 * self.config.continuation_ratio) as usize).max(1);

        let mut blocks = vec![seed];
        let mut samples = seed_count;
        let mut current = seed;
        while blocks.len() < self.config.max_blocks {
            let next = cfg
                .successors(current)
                .iter()
                .copied()
                .filter(|b| !blocks.contains(b))
                .max_by_key(|b| {
                    (
                        counts.get(&(proc_id, *b)).copied().unwrap_or(0),
                        // Deterministic tie-break: lowest id wins (Reverse).
                        usize::MAX - b.0,
                    )
                });
            let Some(next) = next else { break };
            let count = counts.get(&(proc_id, next)).copied().unwrap_or(0);
            if count < floor {
                break;
            }
            blocks.push(next);
            samples += count;
            current = next;
        }
        let ranges = blocks.iter().map(|&b| cfg.block(b).range()).collect();
        Trace {
            proc: proc_id,
            blocks,
            ranges,
            samples,
        }
    }

    /// Selects traces and registers each hull as a [`RegionKind::Trace`]
    /// region (skipping hulls already monitored). Returns the new ids.
    pub fn form(
        &self,
        binary: &Binary,
        samples: &[PcSample],
        monitor: &mut RegionMonitor,
        interval: usize,
    ) -> Vec<RegionId> {
        self.select(binary, samples)
            .into_iter()
            .filter_map(|t| {
                let hull = t.hull();
                if monitor.has_range(hull) {
                    None
                } else {
                    Some(monitor.add_region(hull, RegionKind::Trace, interval))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use regmon_binary::{Addr, BinaryBuilder};

    /// A procedure with a loop containing a nested loop: the CFG has a
    /// fork (inner loop back edge vs fall-through).
    fn binary() -> Binary {
        let mut b = BinaryBuilder::new("t");
        b.procedure("f", |p| {
            p.straight(4);
            p.loop_(|l| {
                l.straight(6);
                l.loop_(|inner| {
                    inner.straight(4);
                });
                l.straight(3);
            });
            p.straight(2);
        });
        b.build(Addr::new(0x1000))
    }

    /// `n` samples spread over `range`.
    fn spread(range: AddrRange, n: usize) -> Vec<PcSample> {
        (0..n)
            .map(|i| PcSample {
                addr: range.start() + ((i as u64 * 4) % range.len()),
                cycle: i as u64,
            })
            .collect()
    }

    #[test]
    fn hot_loop_body_becomes_a_trace() {
        let bin = binary();
        let f = bin.procedure_by_name("f").unwrap();
        let inner = f.loops()[1].range();
        let samples = spread(inner, 200);
        let traces = TraceFormation::new(TraceConfig::default()).select(&bin, &samples);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert!(t.samples() >= 150);
        assert!(t.hull().overlaps(inner));
        // Every trace block actually received samples or continues the path.
        assert!(!t.blocks().is_empty());
    }

    #[test]
    fn trace_follows_the_hot_path_not_the_cold_one() {
        let bin = binary();
        let f = bin.procedure_by_name("f").unwrap();
        let outer = f.loops()[0].range();
        let inner = f.loops()[1].range();
        // Hot: outer loop body excluding the inner loop. Cold: inner loop.
        let mut samples = Vec::new();
        let mut addr = outer.start();
        let mut i = 0u64;
        while addr < outer.end() {
            if !inner.contains(addr) {
                for _ in 0..50 {
                    samples.push(PcSample { addr, cycle: i });
                    i += 1;
                }
            }
            addr = addr + 4;
        }
        let traces = TraceFormation::new(TraceConfig::default()).select(&bin, &samples);
        assert!(!traces.is_empty());
        // The hottest trace must not dive into the cold inner loop's body
        // beyond its (shared) header region.
        let t = &traces[0];
        let inner_blocks_hit = t
            .ranges()
            .iter()
            .filter(|r| inner.contains_range(**r))
            .count();
        assert!(
            inner_blocks_hit <= 1,
            "trace should skip the cold inner loop, hit {inner_blocks_hit}"
        );
    }

    #[test]
    fn cold_samples_produce_no_traces() {
        let bin = binary();
        let f = bin.procedure_by_name("f").unwrap();
        let samples = spread(f.range(), 10); // below min_seed_samples
        let traces = TraceFormation::new(TraceConfig::default()).select(&bin, &samples);
        assert!(traces.is_empty());
    }

    #[test]
    fn max_blocks_caps_trace_length() {
        let bin = binary();
        let f = bin.procedure_by_name("f").unwrap();
        let samples = spread(f.range(), 500);
        let config = TraceConfig {
            max_blocks: 2,
            ..TraceConfig::default()
        };
        for t in TraceFormation::new(config).select(&bin, &samples) {
            assert!(t.blocks().len() <= 2);
        }
    }

    #[test]
    fn form_registers_trace_regions() {
        let bin = binary();
        let f = bin.procedure_by_name("f").unwrap();
        let inner = f.loops()[1].range();
        let samples = spread(inner, 200);
        let mut monitor = RegionMonitor::new(IndexKind::IntervalTree);
        let formation = TraceFormation::new(TraceConfig::default());
        let ids = formation.form(&bin, &samples, &mut monitor, 3);
        assert!(!ids.is_empty());
        let region = monitor.region(ids[0]).unwrap();
        assert_eq!(region.kind(), RegionKind::Trace);
        assert_eq!(region.created_interval(), 3);
        // Idempotent: the same hull is not re-registered.
        let again = formation.form(&bin, &samples, &mut monitor, 4);
        assert!(again.is_empty());
    }

    #[test]
    fn traces_are_deterministic() {
        let bin = binary();
        let f = bin.procedure_by_name("f").unwrap();
        let samples = spread(f.range(), 300);
        let formation = TraceFormation::new(TraceConfig::default());
        assert_eq!(
            formation.select(&bin, &samples),
            formation.select(&bin, &samples)
        );
    }
}
