//! Unmonitored-code-region (UCR) accounting.
//!
//! Figure 6 reports the *median* per-interval UCR percentage per
//! benchmark; Figure 7 plots the UCR timeline for 254.gap and 186.crafty.
//! [`UcrTracker`] keeps that history.

use regmon_stats::{median, Summary};

/// Tracks the per-interval UCR fraction over a run.
///
/// # Example
///
/// ```
/// let mut t = regmon_regions::UcrTracker::new();
/// t.record(0.10);
/// t.record(0.50);
/// t.record(0.20);
/// assert_eq!(t.median(), Some(0.20));
/// assert_eq!(t.timeline().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UcrTracker {
    fractions: Vec<f64>,
}

impl UcrTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a tracker from a previously exported
    /// [`UcrTracker::timeline`] (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]`.
    #[must_use]
    pub fn from_timeline(timeline: Vec<f64>) -> Self {
        assert!(
            timeline.iter().all(|f| (0.0..=1.0).contains(f)),
            "UCR fraction must be in [0,1]"
        );
        Self {
            fractions: timeline,
        }
    }

    /// Records one interval's UCR fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn record(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "UCR fraction must be in [0,1]"
        );
        self.fractions.push(fraction);
    }

    /// The per-interval timeline, oldest first.
    #[must_use]
    pub fn timeline(&self) -> &[f64] {
        &self.fractions
    }

    /// Median UCR fraction, or `None` before any interval.
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        median(&self.fractions)
    }

    /// Full distribution summary, or `None` before any interval.
    #[must_use]
    pub fn summary(&self) -> Option<Summary> {
        Summary::of(&self.fractions)
    }

    /// Number of intervals above `threshold` (e.g. how often formation
    /// would trigger at the paper's 30%).
    #[must_use]
    pub fn intervals_above(&self, threshold: f64) -> usize {
        self.fractions.iter().filter(|&&f| f > threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker() {
        let t = UcrTracker::new();
        assert_eq!(t.median(), None);
        assert!(t.summary().is_none());
        assert_eq!(t.intervals_above(0.3), 0);
    }

    #[test]
    fn median_and_counts() {
        let mut t = UcrTracker::new();
        for f in [0.1, 0.4, 0.35, 0.05, 0.45] {
            t.record(f);
        }
        assert_eq!(t.median(), Some(0.35));
        assert_eq!(t.intervals_above(0.3), 3);
        assert_eq!(t.summary().unwrap().count, 5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_out_of_range() {
        UcrTracker::new().record(1.5);
    }
}
