//! Cross-implementation equivalence: every `IndexKind` (and the serial,
//! batch and parallel attribution paths layered on them) must produce
//! *identical* `DistributionReport`s — same histograms byte for byte,
//! same unattributed sample list, same UCR fraction.
//!
//! These are the guarantees that let the session pick whichever index is
//! fastest without changing a single detector verdict.

use proptest::prelude::*;
use regmon_binary::{Addr, AddrRange};
use regmon_regions::{DistributionReport, IndexKind, RegionKind, RegionMonitor};
use regmon_sampling::PcSample;

const KINDS: [IndexKind; 3] = [
    IndexKind::Linear,
    IndexKind::IntervalTree,
    IndexKind::FlatSorted,
];

fn range(start: u64, len: u64) -> AddrRange {
    AddrRange::new(Addr::new(start), Addr::new(start + len))
}

/// Builds one monitor per index kind with an identical region table.
fn monitors(regions: &[(u64, u64)]) -> Vec<RegionMonitor> {
    KINDS
        .iter()
        .map(|&kind| {
            let mut mon = RegionMonitor::new(kind);
            for &(start, len) in regions {
                mon.add_region(range(start, len), RegionKind::Custom, 0);
            }
            mon
        })
        .collect()
}

fn samples(addrs: &[u64]) -> Vec<PcSample> {
    addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| PcSample {
            addr: Addr::new(a),
            cycle: i as u64,
        })
        .collect()
}

/// Serial arena attribution through each kind, owned snapshots compared.
fn attribute_all(mons: &mut [RegionMonitor], s: &[PcSample]) -> Vec<DistributionReport> {
    mons.iter_mut()
        .map(|m| {
            m.attribute(s);
            m.report().to_owned_report()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three kinds agree on arbitrary (overlapping, adjacent,
    /// disjoint) region tables and arbitrary sample streams.
    #[test]
    fn index_kinds_produce_identical_reports(
        regions in prop::collection::vec((0u64..4_000, 4u64..512), 1..32),
        addrs in prop::collection::vec(0u64..5_000, 0..512),
    ) {
        // Align region starts/lengths to instruction granularity so slot
        // arithmetic is meaningful (formation always produces aligned
        // ranges).
        let regions: Vec<(u64, u64)> = regions
            .iter()
            .map(|&(s, l)| (s & !3, (l & !3).max(4)))
            .collect();
        let mut mons = monitors(&regions);
        let s = samples(&addrs);
        let reports = attribute_all(&mut mons, &s);
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
        // The owned snapshot and the borrow-based arena view agree too.
        for (mon, owned) in mons.iter().zip(&reports) {
            let view = mon.report();
            prop_assert_eq!(view.total_samples(), owned.total_samples());
            prop_assert_eq!(view.unattributed_samples(), owned.unattributed_samples());
            prop_assert!((view.ucr_fraction() - owned.ucr_fraction()).abs() == 0.0);
        }
    }

    /// `attribute_parallel` is bit-identical to serial `attribute` for
    /// every kind and thread count (including more threads than samples).
    #[test]
    fn parallel_attribution_is_bit_identical(
        regions in prop::collection::vec((0u64..2_000, 4u64..256), 1..16),
        addrs in prop::collection::vec(0u64..2_600, 0..256),
        threads in 2usize..9,
    ) {
        let regions: Vec<(u64, u64)> = regions
            .iter()
            .map(|&(s, l)| (s & !3, (l & !3).max(4)))
            .collect();
        let s = samples(&addrs);
        for &kind in &KINDS {
            let mut serial = RegionMonitor::new(kind);
            let mut par = RegionMonitor::new(kind);
            for &(start, len) in &regions {
                serial.add_region(range(start, len), RegionKind::Custom, 0);
                par.add_region(range(start, len), RegionKind::Custom, 0);
            }
            serial.attribute(&s);
            par.attribute_parallel(&s, threads);
            prop_assert_eq!(
                serial.report().to_owned_report(),
                par.report().to_owned_report(),
                "kind {:?} threads {}", kind, threads
            );
        }
    }

    /// The batch stab path (with its locality cache) visits exactly the
    /// regions the per-sample stab path reports, sample by sample.
    #[test]
    fn stab_batch_matches_per_sample_stab(
        regions in prop::collection::vec((0u64..1_000, 1u64..200), 0..24),
        addrs in prop::collection::vec(0u64..1_400, 1..200),
    ) {
        use regmon_regions::RegionId;
        for &kind in &KINDS {
            let mut idx = kind.make();
            for (i, &(s, l)) in regions.iter().enumerate() {
                idx.insert(RegionId(i as u64), range(s, l));
            }
            let s = samples(&addrs);
            let mut batched: Vec<(usize, Vec<RegionId>)> = Vec::new();
            idx.stab_batch(&s, &mut |i, ids| {
                let mut ids = ids.to_vec();
                ids.sort();
                batched.push((i, ids));
            });
            prop_assert_eq!(batched.len(), s.len());
            for (pos, (i, ids)) in batched.iter().enumerate() {
                prop_assert_eq!(pos, *i, "{:?} emitted out of order", kind);
                let mut expect = Vec::new();
                idx.stab(s[*i].addr, &mut expect);
                expect.sort();
                prop_assert_eq!(ids, &expect, "{:?} sample {}", kind, i);
            }
        }
    }

    /// Interval-by-interval reuse: the arena's epoch reset never leaks
    /// state between intervals, for any kind, against a fresh monitor
    /// replaying only the final interval.
    #[test]
    fn arena_reuse_equals_fresh_monitor(
        regions in prop::collection::vec((0u64..1_000, 4u64..128), 1..12),
        first in prop::collection::vec(0u64..1_400, 0..160),
        second in prop::collection::vec(0u64..1_400, 0..160),
    ) {
        let regions: Vec<(u64, u64)> = regions
            .iter()
            .map(|&(s, l)| (s & !3, (l & !3).max(4)))
            .collect();
        for &kind in &KINDS {
            let mut reused = RegionMonitor::new(kind);
            let mut fresh = RegionMonitor::new(kind);
            for &(start, len) in &regions {
                reused.add_region(range(start, len), RegionKind::Custom, 0);
                fresh.add_region(range(start, len), RegionKind::Custom, 0);
            }
            reused.attribute(&samples(&first));
            reused.attribute(&samples(&second));
            fresh.attribute(&samples(&second));
            prop_assert_eq!(
                reused.report().to_owned_report(),
                fresh.report().to_owned_report(),
                "kind {:?}", kind
            );
        }
    }
}

/// Deterministic spot check: overlapping + nested regions, a sample on
/// every boundary condition, all kinds and all paths agree.
#[test]
fn boundary_conditions_agree_across_kinds_and_paths() {
    let regions = [(0x100, 0x40), (0x120, 0x80), (0x100, 0x40), (0x300, 0x10)];
    let addrs: Vec<u64> = vec![
        0x0ff, 0x100, 0x11c, 0x120, 0x13c, 0x140, 0x19c, 0x1a0, 0x2ff, 0x300, 0x30c, 0x310, 0xfff,
    ];
    let mut mons = monitors(&regions);
    let s = samples(&addrs);
    let serial = attribute_all(&mut mons, &s);
    assert_eq!(serial[0], serial[1]);
    assert_eq!(serial[0], serial[2]);
    for threads in [2, 3, 5, 64] {
        for (&kind, expect) in KINDS.iter().zip(&serial) {
            let mut mon = RegionMonitor::new(kind);
            for &(start, len) in &regions {
                mon.add_region(range(start, len), RegionKind::Custom, 0);
            }
            mon.attribute_parallel(&s, threads);
            assert_eq!(
                &mon.report().to_owned_report(),
                expect,
                "{kind:?} x{threads}"
            );
        }
    }
    // legacy `distribute` is the same arena pass under the hood.
    let mut mon = RegionMonitor::new(IndexKind::FlatSorted);
    for &(start, len) in &regions {
        mon.add_region(range(start, len), RegionKind::Custom, 0);
    }
    assert_eq!(&mon.distribute(&s), &serial[2]);
}
