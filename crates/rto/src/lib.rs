//! Runtime-optimizer simulator: global vs local phase detection as the
//! gate for deploying (and un-deploying) optimized traces.
//!
//! This reproduces the paper's Figure 17 experiment. The real systems
//! (ADORE on UltraSPARC) patch hot loops with data-prefetching traces;
//! deployed traces are *unpatched* whenever the phase detector reports an
//! unstable phase, so optimizations can be re-evaluated (the paper
//! modified the original RTO to do exactly this for a fair comparison).
//! What Figure 17 measures is therefore *how much optimized-code
//! residency each detector permits*:
//!
//! * **RTO_ORIG** — gated by the global centroid detector: every region is
//!   unpatched while the *whole program's* phase is unstable, even if the
//!   region itself never changed.
//! * **RTO_LPD** — gated per region by local phase detection: a region is
//!   patched while *its own* phase is stable.
//!
//! The optimization itself is simulated by an explicit cost model
//! ([`OptimizationModel`]): a patched region recovers a fraction of its
//! data-cache miss-stall cycles (known analytically from the workload's
//! [`regmon_workload::Workload::window_usage`]), and each patch event
//! costs a fixed overhead. The *self-monitoring* extension (paper §5)
//! detects regions whose "optimization" hurts and blacklists them.
//!
//! # Example
//!
//! ```no_run
//! use regmon_rto::{simulate, RtoConfig, RtoMode};
//! use regmon_workload::suite;
//!
//! let w = suite::by_name("181.mcf").unwrap();
//! let config = RtoConfig::new(1_500_000);
//! let orig = simulate(&w, &config, RtoMode::Global);
//! let lpd = simulate(&w, &config, RtoMode::Local);
//! println!("speedup: {:.2}%", regmon_rto::speedup_percent(&orig, &lpd));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod model;
mod report;
mod self_monitor;
mod sim;

pub use model::OptimizationModel;
pub use report::RtoReport;
pub use self_monitor::{SelfMonitor, SelfMonitorConfig};
pub use sim::{simulate, RtoConfig, RtoMode};

/// Percentage speedup of the local-detection optimizer over the global
/// one: `(T_orig / T_lpd − 1) · 100`.
///
/// # Example
///
/// See the crate-level example.
#[must_use]
pub fn speedup_percent(orig: &RtoReport, lpd: &RtoReport) -> f64 {
    (orig.realized_cycles / lpd.realized_cycles - 1.0) * 100.0
}
