//! The optimization cost model.

use regmon_binary::AddrRange;

/// How much a deployed optimization helps (or hurts) a region.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationModel {
    /// Fraction of a patched region's miss-stall cycles recovered by the
    /// prefetching traces, in `[0, 1]`.
    pub prefetch_efficiency: f64,
    /// One-time cost, in cycles, of building and patching a trace
    /// (runtime codegen, patching, I-cache disturbance).
    pub patch_overhead_cycles: f64,
    /// Ranges where the speculative optimization *backfires*: patched
    /// code there runs `hostile_penalty` × its miss cycles *slower*
    /// (e.g. prefetches that evict useful lines). Used to exercise the
    /// self-monitoring extension.
    pub hostile_ranges: Vec<AddrRange>,
    /// Extra miss cycles (as a fraction of the region's miss cycles)
    /// incurred when a hostile range is patched.
    pub hostile_penalty: f64,
}

impl Default for OptimizationModel {
    fn default() -> Self {
        Self {
            prefetch_efficiency: 0.6,
            patch_overhead_cycles: 2_000_000.0,
            hostile_ranges: Vec::new(),
            hostile_penalty: 0.3,
        }
    }
}

impl OptimizationModel {
    /// Cycles saved (negative: lost) when a patched region covering
    /// `miss_cycles` of miss stalls executes for one interval.
    #[must_use]
    pub fn interval_benefit(&self, range: AddrRange, miss_cycles: f64) -> f64 {
        if self.hostile_ranges.iter().any(|h| h.overlaps(range)) {
            -miss_cycles * self.hostile_penalty
        } else {
            miss_cycles * self.prefetch_efficiency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmon_binary::Addr;

    fn r(start: u64, end: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), Addr::new(end))
    }

    #[test]
    fn default_model_is_beneficial() {
        let m = OptimizationModel::default();
        assert!(m.interval_benefit(r(0, 10), 1000.0) > 0.0);
        assert_eq!(m.interval_benefit(r(0, 10), 1000.0), 600.0);
    }

    #[test]
    fn hostile_range_backfires() {
        let m = OptimizationModel {
            hostile_ranges: vec![r(100, 200)],
            ..OptimizationModel::default()
        };
        assert!(m.interval_benefit(r(120, 180), 1000.0) < 0.0);
        assert_eq!(m.interval_benefit(r(120, 180), 1000.0), -300.0);
        // Non-overlapping ranges are unaffected.
        assert!(m.interval_benefit(r(300, 400), 1000.0) > 0.0);
    }

    #[test]
    fn zero_miss_cycles_zero_benefit() {
        let m = OptimizationModel::default();
        assert_eq!(m.interval_benefit(r(0, 10), 0.0), 0.0);
    }
}
